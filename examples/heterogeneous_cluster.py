#!/usr/bin/env python
"""Per-executor adaptation on a heterogeneous cluster (limitation L4).

The paper's Fig. 3 shows nominally identical DAS-5 nodes with very different
effective I/O performance, and Fig. 6 shows the self-adaptive executors
choosing *different* pool sizes per executor.  This example builds a cluster
where one node's disk is markedly slower and shows the dynamic policy
settling on a smaller pool exactly there -- no operator intervention.

Run:  python examples/heterogeneous_cluster.py
"""

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine import SparkContext
from repro.adaptive import AdaptivePolicy
from repro.harness.report import render_table
from repro.workloads import Terasort


def build_cluster():
    spec = ClusterSpec(num_nodes=4, disk_sigma=0.0, cpu_sigma=0.0)
    cluster = Cluster(spec)
    # Degrade node 3's disk to 45% of nominal (a worn or mis-firmwared
    # drive, as in the Fig. 3 outliers).
    slow = cluster.node(3)
    slow.disk.speed_factor = 0.45
    return cluster


def main():
    cluster = build_cluster()
    ctx = SparkContext(cluster, policy_factory=lambda ex: AdaptivePolicy())
    workload = Terasort(scale=0.25)
    run = workload.run(ctx)

    print("Disk speed factors:",
          [f"node{n.node_id}={n.disk.speed_factor:.2f}" for n in cluster.nodes])
    print(f"\nDynamic Terasort finished in {run.runtime:.0f} s; "
          "per-executor decisions:\n")
    rows = []
    for stage in run.stages:
        sizes = stage.final_pool_sizes()
        rows.append(
            (stage.stage_id, f"{stage.duration:.0f}",
             *[sizes[e] for e in sorted(sizes)])
        )
    print(render_table(
        ["stage", "duration (s)"] + [f"executor {e}" for e in range(4)],
        rows,
    ))
    print(
        "\nExecutor 3 sits on the slow disk.  In the local-disk-dominated "
        "stages (reading\ninput, spilling shuffle output) its MAPE-K loop "
        "observes a higher congestion\nindex and settles on a smaller pool "
        "than its peers -- no per-node configuration.\nStages dominated by "
        "*remote* fetches may legitimately choose differently: the\nloop "
        "tunes against whatever its own sensors see (paper Fig. 6)."
    )


if __name__ == "__main__":
    main()
