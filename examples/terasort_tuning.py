#!/usr/bin/env python
"""Terasort thread-count tuning: the paper's sections 4-5 in one script.

Reproduces the Terasort story at reduced scale (30 GiB by default):

1. sweep the *static solution* over thread counts (Fig. 2a),
2. derive the per-stage *static BestFit* oracle,
3. run the *self-adaptive executors* and compare (Fig. 8a).

Run:  python examples/terasort_tuning.py [scale]
"""

import sys

from repro.harness import derive_bestfit, run_workload, static_sweep
from repro.harness.report import render_table


def main(scale: float = 0.25):
    print(f"Terasort at scale {scale} ({120 * scale:.0f} GiB) on 4 HDD nodes\n")

    print("1. Static solution sweep (paper Fig. 2a):")
    sweep = static_sweep("terasort", workload_kwargs={"scale": scale})
    rows = [
        (threads, run.runtime, *[f"{d:.0f}" for d in run.stage_durations()])
        for threads, run in sorted(sweep.items(), reverse=True)
    ]
    print(render_table(
        ["threads", "total (s)", "stage 0", "stage 1", "stage 2"], rows
    ))

    bestfit_sizes = derive_bestfit(sweep)
    print(f"\n2. Static BestFit (per-stage optima): {bestfit_sizes}")
    bestfit = run_workload("terasort", policy=("bestfit", bestfit_sizes),
                           workload_kwargs={"scale": scale})

    print("\n3. Self-adaptive executors (MAPE-K hill climb per stage):")
    dynamic = run_workload("terasort", policy="dynamic",
                           workload_kwargs={"scale": scale})
    for stage in dynamic.stages:
        sizes = stage.final_pool_sizes()
        print(
            f"  stage {stage.stage_id}: settled at "
            f"{sorted(sizes.values())} threads per executor "
            f"({stage.total_threads_used()}/128 total)"
        )

    default = sweep[32]
    print("\nSummary (paper Fig. 8a: bestfit -47.5%, dynamic -34.4%):")
    print(render_table(
        ["system", "runtime (s)", "vs default"],
        [
            ("default (32 threads)", default.runtime, "--"),
            ("static bestfit", bestfit.runtime,
             f"-{(1 - bestfit.runtime / default.runtime) * 100:.1f}%"),
            ("self-adaptive", dynamic.runtime,
             f"-{(1 - dynamic.runtime / default.runtime) * 100:.1f}%"),
        ],
    ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
