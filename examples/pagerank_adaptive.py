#!/usr/bin/env python
"""PageRank: where the static solution is blind and the dynamic one shines.

PageRank's iteration stages move tens of GiB through the disks via shuffle
spills, but contain no explicit I/O operator -- so the static classification
cannot touch them (the paper's limitation L2).  The MAPE-K executors tune
them anyway, reproducing the paper's headline: static ~16% vs dynamic ~54%.

Run:  python examples/pagerank_adaptive.py [scale]

(Contention scales with data volume: at the default half-scale input the
gap is ~21% vs ~47%; at scale 1.0 it reaches the paper's ~16% vs ~53%.)
"""

import sys

from repro.harness import derive_bestfit, run_workload, static_sweep
from repro.harness.report import render_table


def main(scale: float = 0.5):
    print(f"PageRank at scale {scale} on 4 HDD nodes\n")

    sweep = static_sweep("pagerank", workload_kwargs={"scale": scale})
    bestfit_sizes = derive_bestfit(sweep)
    default = sweep[32]
    bestfit = run_workload("pagerank", policy=("bestfit", bestfit_sizes),
                           workload_kwargs={"scale": scale})
    dynamic = run_workload("pagerank", policy="dynamic",
                           workload_kwargs={"scale": scale})

    print("Stage-by-stage view (I/O-marked = visible to the static solution):")
    rows = []
    for ordinal, stage in enumerate(dynamic.stages):
        rows.append(
            (
                ordinal,
                "yes" if stage.is_io_marked else "NO (L2)",
                bestfit_sizes[ordinal],
                f"{sorted(stage.final_pool_sizes().values())}",
                f"{default.stages[ordinal].duration:.0f}",
                f"{stage.duration:.0f}",
            )
        )
    print(render_table(
        ["stage", "I/O-marked", "static choice", "dynamic choice",
         "default (s)", "dynamic (s)"],
        rows,
    ))

    print("\nTotals (paper Fig. 8b: static -16.3%, dynamic -54.1%):")
    print(render_table(
        ["system", "runtime (s)", "vs default"],
        [
            ("default", default.runtime, "--"),
            ("static bestfit", bestfit.runtime,
             f"-{(1 - bestfit.runtime / default.runtime) * 100:.1f}%"),
            ("self-adaptive", dynamic.runtime,
             f"-{(1 - dynamic.runtime / default.runtime) * 100:.1f}%"),
        ],
    ))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.5)
