#!/usr/bin/env python
"""Quickstart: run a real computation through the simulated Spark engine.

This is the 5-minute tour: build a DAS-5-shaped cluster, load a small real
dataset into the simulated HDFS, run a classic WordCount through the full
engine (DAG scheduler -> task scheduler -> executors -> shuffle), and read
both the *answer* and the *simulated performance profile*.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster, ClusterSpec
from repro.engine import SparkContext

TEXT = """
the self adaptive executor monitors the underlying system resources and
detects contentions this enables the executors to tune their thread pool
size dynamically at runtime in order to achieve the best performance
""".split()


def main():
    # A 4-node cluster shaped like the paper's DAS-5 setup: 32 virtual
    # cores, 56 GB of memory, and one 7'200 rpm HDD per node.
    cluster = Cluster(ClusterSpec(num_nodes=4))
    ctx = SparkContext(cluster)

    # Put a (tiny, materialised) dataset into the simulated HDFS.  Real
    # records flow through the engine, so results are checkable.
    ctx.write_text_file("/quickstart/words", TEXT)

    words = ctx.text_file("/quickstart/words", num_partitions=8)
    counts = (
        words.map(lambda word: (word, 1))
        .reduce_by_key(lambda a, b: a + b, num_partitions=8)
    )
    top = sorted(counts.collect(), key=lambda kv: -kv[1])[:5]

    print("Top words:")
    for word, count in top:
        print(f"  {word:12s} {count}")

    print(f"\nSimulated runtime: {ctx.total_runtime:.3f} s on "
          f"{cluster.num_nodes} nodes / {cluster.total_cores} cores")
    print("Stages:")
    for stage in ctx.recorder.stages:
        marker = "I/O" if stage.is_io_marked else "shuffle"
        print(
            f"  stage {stage.stage_id} [{marker:7s}] "
            f"{stage.num_tasks:3d} tasks, {stage.duration:.3f} s"
        )


if __name__ == "__main__":
    main()
