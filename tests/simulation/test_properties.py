"""Property-based tests on core simulation invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation import CpuResource, FairShareResource, Simulator
from repro.storage.device import HDD_PROFILE, SSD_PROFILE, StorageDevice


class TestWorkConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=1e4),
                       min_size=1, max_size=25),
        capacity=st.floats(min_value=0.5, max_value=1e3),
    )
    def test_all_work_is_served(self, works, capacity):
        sim = Simulator()
        resource = FairShareResource(sim, "r", capacity=capacity)
        jobs = [resource.submit(work) for work in works]
        sim.run()
        assert all(job.event.triggered for job in jobs)
        assert resource.stats.work_done == pytest.approx(sum(works), rel=1e-6)
        assert resource.active_jobs == 0

    @settings(max_examples=40, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=1e4),
                       min_size=1, max_size=25),
        offsets=st.lists(st.floats(min_value=0.0, max_value=100.0),
                         min_size=25, max_size=25),
        capacity=st.floats(min_value=0.5, max_value=1e3),
    )
    def test_staggered_arrivals_conserve_work(self, works, offsets, capacity):
        sim = Simulator()
        resource = FairShareResource(sim, "r", capacity=capacity)
        for work, offset in zip(works, offsets):
            sim.call_at(offset, lambda w=work: resource.submit(w))
        sim.run()
        assert resource.stats.work_done == pytest.approx(sum(works), rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=100.0),
                       min_size=2, max_size=10),
    )
    def test_finish_time_bounded_by_serial_and_parallel(self, works):
        sim = Simulator()
        resource = FairShareResource(sim, "r", capacity=1.0)
        for work in works:
            resource.submit(work)
        sim.run()
        # Total time equals total work at unit capacity (work conservation);
        # no job can finish after that, none before its own service time.
        assert sim.now == pytest.approx(sum(works), rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        cores=st.integers(min_value=1, max_value=32),
        tasks=st.integers(min_value=1, max_value=64),
    )
    def test_cpu_runtime_matches_processor_sharing(self, cores, tasks):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=cores)
        for _ in range(tasks):
            cpu.submit(1.0)
        sim.run()
        # All tasks are identical, so they finish together at
        # max(1, tasks/cores) seconds.
        assert sim.now == pytest.approx(max(1.0, tasks / cores), rel=1e-9)


class TestDeviceInvariants:
    @settings(max_examples=50, deadline=None)
    @given(
        concurrency=st.integers(min_value=1, max_value=512),
        op=st.sampled_from(["read", "write"]),
    )
    def test_efficiency_bounded(self, concurrency, op):
        for profile in (HDD_PROFILE, SSD_PROFILE):
            e = profile.efficiency(op, concurrency)
            assert profile.min_efficiency <= e <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(op=st.sampled_from(["read", "write"]))
    def test_efficiency_monotonically_decreasing(self, op):
        for profile in (HDD_PROFILE, SSD_PROFILE):
            values = [profile.efficiency(op, k) for k in range(1, 200)]
            assert all(a >= b for a, b in zip(values, values[1:]))

    @settings(max_examples=20, deadline=None)
    @given(
        sizes=st.lists(st.floats(min_value=1e3, max_value=1e8),
                       min_size=1, max_size=12),
        ops=st.lists(st.sampled_from(["read", "write"]),
                     min_size=12, max_size=12),
    )
    def test_device_conserves_bytes(self, sizes, ops):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        for size, op in zip(sizes, ops):
            disk.request(size, op)
        sim.run()
        disk.sync()
        assert disk.total_bytes == pytest.approx(sum(sizes), rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(streams=st.integers(min_value=1, max_value=64))
    def test_hdd_aggregate_never_exceeds_peak(self, streams):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        total = 512e6
        for _ in range(streams):
            disk.request(total / streams, "read")
        sim.run()
        aggregate = total / sim.now
        assert aggregate <= HDD_PROFILE.read_rate * 1.001
