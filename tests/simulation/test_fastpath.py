"""Kernel fast-path edge cases: call_in, zero-delay storms, started-flag
interrupts, and the scalar uniform_rate twin of rates().

The contracts under test exist because of the perf work (ISSUE 4): the
optimized paths must be *observably identical* to the general ones --
event-by-event ordering, float-by-float accounting.
"""

import pytest

from repro.network.fabric import NetworkLink
from repro.simulation import (
    CpuResource,
    FairShareResource,
    Interrupt,
    SimulationError,
    Simulator,
)
from repro.storage.device import HDD_PROFILE, StorageDevice


class TestCallIn:
    def test_runs_callback_with_args_after_delay(self):
        sim = Simulator()
        seen = []
        sim.call_in(2.5, seen.append, "hello")
        sim.run()
        assert seen == ["hello"]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-0.1, lambda: None)

    def test_ties_with_timeout_break_by_scheduling_order(self):
        """A call_in and a timeout for the same instant fire in the order
        they were scheduled -- the property that makes replacing a
        one-callback Timeout with call_in log-preserving."""
        sim = Simulator()
        order = []
        sim.timeout(1.0).add_callback(lambda _e: order.append("timeout-first"))
        sim.call_in(1.0, order.append, "call-in-second")
        sim.call_in(1.0, order.append, "call-in-third")
        sim.timeout(1.0).add_callback(lambda _e: order.append("timeout-fourth"))
        sim.run()
        assert order == [
            "timeout-first", "call-in-second", "call-in-third", "timeout-fourth"
        ]

    def test_zero_delay_call_in_storm(self):
        """Thousands of zero-delay callbacks drain in order at t=0."""
        sim = Simulator()
        seen = []
        for index in range(2000):
            sim.call_in(0.0, seen.append, index)
        sim.run()
        assert seen == list(range(2000))
        assert sim.now == 0.0

    def test_call_in_can_chain_recursively(self):
        sim = Simulator()
        ticks = []

        def tick(n):
            ticks.append(sim.now)
            if n > 0:
                sim.call_in(1.0, tick, n - 1)

        sim.call_in(1.0, tick, 4)
        sim.run()
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_events_scheduled_counts_deferred_calls(self):
        sim = Simulator()
        before = sim.events_scheduled
        sim.call_in(0.0, lambda: None)
        sim.timeout(1.0)
        assert sim.events_scheduled == before + 2


class TestZeroDelayStorms:
    def test_zero_delay_event_storm_preserves_order(self):
        """A process spinning on zero-delay timeouts interleaves
        deterministically with freshly scheduled work at the same instant."""
        sim = Simulator()
        order = []

        def spinner(name, spins):
            for index in range(spins):
                order.append((name, index))
                yield sim.timeout(0.0)

        sim.process(spinner("a", 3))
        sim.process(spinner("b", 3))
        sim.run()
        assert sim.now == 0.0
        # Round-robin: both processes resume alternately at t=0.
        assert order == [
            ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
        ]

    def test_succeed_storm_drains_without_time_advancing(self):
        sim = Simulator()
        fired = []
        for index in range(500):
            event = sim.event()
            event.add_callback(lambda _e, i=index: fired.append(i))
            event.succeed(index)
        sim.run()
        assert fired == list(range(500))
        assert sim.now == 0.0


class TestRunUntil:
    def test_run_until_already_triggered_event_is_noop(self):
        """run_until on a triggered event must not drain the queue."""
        sim = Simulator()
        later = []
        sim.call_in(10.0, later.append, "future")
        target = sim.event()
        target.succeed("done")
        sim.run_until(target)
        assert sim.now == 0.0
        assert later == []  # the t=10 work is still pending
        sim.run()
        assert later == ["future"]

    def test_run_until_processed_event_is_noop(self):
        sim = Simulator()
        target = sim.timeout(1.0)
        sim.run()
        assert target.processed
        sim.call_in(5.0, lambda: None)
        sim.run_until(target)
        assert sim.now == 1.0  # queue not drained past the trigger


class TestInterruptBeforeStart:
    def test_interrupt_before_start_cancels_silently(self):
        """The started-flag refactor must keep the cancel-before-start
        semantics: the body never runs, the process event still fires."""
        sim = Simulator()
        ran = []

        def body():
            ran.append("ran")
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.interrupt("early") is True
        sim.run()
        assert ran == []
        assert proc.processed and proc.ok
        assert proc.value is None

    def test_interrupt_after_first_resume_delivers_exception(self):
        sim = Simulator()
        caught = []

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt as exc:
                caught.append(exc.cause)

        proc = sim.process(body())
        # Let the bootstrap run the body up to its first yield.
        sim.call_in(1.0, proc.interrupt, "late")
        sim.run()
        assert caught == ["late"]

    def test_interrupt_terminated_process_returns_false(self):
        sim = Simulator()

        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        sim.run()
        assert proc.interrupt() is False


class TestUniformRate:
    def test_base_uniform_rate_matches_rates_exactly(self):
        sim = Simulator()
        res = FairShareResource(sim, "r", capacity=37.0)
        for _ in range(5):
            res.submit(10.0)
        per_job = res.rates(res._jobs)
        uniform = res.uniform_rate(len(res._jobs))
        assert set(per_job.values()) == {uniform}

    def test_cpu_uniform_rate_matches_rates_exactly(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=4, speed_factor=0.9)
        for _ in range(7):
            cpu.submit(1.0)
        rates = cpu.rates(cpu._jobs)
        uniform = cpu.uniform_rate(len(cpu._jobs))
        assert set(rates.values()) == {uniform}

    def test_device_uniform_rate_single_op(self):
        sim = Simulator()
        disk = StorageDevice(sim, "disk", HDD_PROFILE)
        for _ in range(3):
            disk.submit(1000.0, tag="read", op="read")
        rates = disk.rates(disk._jobs)
        uniform = disk.uniform_rate(len(disk._jobs))
        assert uniform is not None
        assert set(rates.values()) == {uniform}

    def test_device_uniform_rate_mixed_ops_falls_back(self):
        sim = Simulator()
        disk = StorageDevice(sim, "disk", HDD_PROFILE)
        disk.submit(1000.0, tag="read", op="read")
        disk.submit(1000.0, tag="write", op="write")
        assert disk.uniform_rate(len(disk._jobs)) is None

    def test_network_link_inherits_uniform_curve(self):
        sim = Simulator()
        link = NetworkLink(sim, "nic", bandwidth=100.0)
        assert link._uniform_hook is True
        assert link.uniform_rate(4) == 25.0

    def test_custom_rates_override_disables_fast_path(self):
        """A subclass overriding rates() without uniform_rate() must not be
        mispriced by the inherited (equal-share) scalar."""

        class Weighted(FairShareResource):
            def rates(self, jobs):
                total = sum(job.attrs.get("w", 1.0) for job in jobs)
                return {
                    job: self.capacity * job.attrs.get("w", 1.0) / total
                    for job in jobs
                }

        sim = Simulator()
        res = Weighted(sim, "weighted", capacity=10.0)
        assert res._uniform_hook is False
        done = {}
        fast = res.submit(10.0, w=4.0)
        slow = res.submit(10.0, w=1.0)
        fast.event.add_callback(lambda _e: done.setdefault("fast", sim.now))
        slow.event.add_callback(lambda _e: done.setdefault("slow", sim.now))
        sim.run()
        # 4:1 weights -> the heavy job finishes first despite equal work.
        # (An inherited equal-share scalar would finish them together.)
        assert done["fast"] < done["slow"]

    def test_fair_share_completion_times_unchanged(self):
        """Equal-share service through the scalar path: three equal jobs on
        capacity 3 finish together at t=work."""
        sim = Simulator()
        res = FairShareResource(sim, "r", capacity=3.0)
        jobs = [res.submit(9.0) for _ in range(3)]
        sim.run()
        assert all(job.event.processed for job in jobs)
        assert sim.now == pytest.approx(9.0)


class TestSlotsAudit:
    def test_event_hierarchy_defines_slots_everywhere(self):
        """No Event subclass may silently re-introduce a per-instance
        __dict__ (the AnyOf bug this PR fixes)."""
        from repro.simulation import core

        classes = [core.Event]
        seen = set()
        while classes:
            cls = classes.pop()
            if cls in seen:
                continue
            seen.add(cls)
            assert "__slots__" in cls.__dict__, (
                f"{cls.__name__} is missing __slots__"
            )
            classes.extend(cls.__subclasses__())

    def test_anyof_has_no_instance_dict(self):
        sim = Simulator()
        any_of = sim.any_of([sim.timeout(1.0)])
        with pytest.raises(AttributeError):
            any_of.arbitrary_attribute = 1
