"""Tests for fair-share resources and the processor-sharing CPU."""

import pytest

from repro.simulation import CpuResource, FairShareResource, SimulationError, Simulator
from repro.simulation.resources import LatencyChannel


def finish_time(sim, job):
    """Run the simulator and return the time the job's event fired."""
    done = {}
    job.event.add_callback(lambda e: done.setdefault("t", sim.now))
    sim.run()
    return done["t"]


class TestFairShareResource:
    def test_single_job_gets_full_capacity(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=100.0)
        job = res.submit(500.0)
        assert finish_time(sim, job) == pytest.approx(5.0)

    def test_two_equal_jobs_share_capacity(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=100.0)
        a = res.submit(500.0)
        b = res.submit(500.0)
        ta = finish_time(sim, a)
        sim.run()
        assert ta == pytest.approx(10.0)
        assert b.event.triggered

    def test_late_arrival_slows_first_job(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=100.0)
        first = res.submit(1000.0)  # alone: 10s
        sim.run(until=5.0)
        res.submit(1000.0)
        # first has 500 left, now at 50/s -> finishes at t=15
        assert finish_time(sim, first) == pytest.approx(15.0)

    def test_zero_work_completes_immediately(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=10.0)
        job = res.submit(0.0)
        assert job.event.triggered

    def test_negative_work_rejected(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=10.0)
        with pytest.raises(SimulationError):
            res.submit(-1.0)

    def test_nonfinite_work_rejected(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=10.0)
        with pytest.raises(SimulationError):
            res.submit(float("inf"))

    def test_capacity_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            FairShareResource(sim, "disk", capacity=0.0)

    def test_stats_accumulate_work_and_busy_time(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=100.0)
        res.submit(200.0, tag="read")
        res.submit(300.0, tag="write")
        sim.run()
        assert res.stats.work_done == pytest.approx(500.0)
        assert res.stats.jobs_completed == 2
        assert res.stats.work_by_tag["read"] == pytest.approx(200.0)
        assert res.stats.work_by_tag["write"] == pytest.approx(300.0)
        # 200 then 300: share until the smaller one finishes at t=4
        # (each at 50/s -> 200 done at t=4), remainder 100 at t=5.
        assert res.stats.busy_time == pytest.approx(5.0)

    def test_concurrency_integral_tracks_queue_depth(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=100.0)
        res.submit(200.0)
        res.submit(200.0)
        sim.run()
        # Both jobs active for the full 4 seconds -> integral 8.
        assert res.stats.concurrency_integral == pytest.approx(8.0)

    def test_many_staggered_jobs_conserve_work(self):
        sim = Simulator()
        res = FairShareResource(sim, "disk", capacity=37.0)
        total = 0.0
        for i in range(20):
            work = 10.0 + 3.0 * i
            total += work
            sim.call_at(float(i) * 0.37, lambda w=work: res.submit(w))
        sim.run()
        assert res.stats.work_done == pytest.approx(total, rel=1e-6)
        assert res.stats.jobs_completed == 20
        assert res.active_jobs == 0


class TestCpuResource:
    def test_undersubscribed_jobs_run_at_full_speed(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=4)
        jobs = [cpu.submit(2.0) for _ in range(3)]
        sim.run()
        assert sim.now == pytest.approx(2.0)
        assert all(j.event.triggered for j in jobs)

    def test_oversubscribed_jobs_timeshare(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=2)
        for _ in range(4):
            cpu.submit(1.0)
        sim.run()
        # 4 threads on 2 cores run at 0.5x -> 2 seconds.
        assert sim.now == pytest.approx(2.0)

    def test_speed_factor_scales_rate(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=1, speed_factor=2.0)
        cpu.submit(4.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_cores_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            CpuResource(sim, "cpu", cores=0)

    def test_occupancy_counts_occupied_cores(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=4)
        cpu.submit(2.0)
        cpu.submit(2.0)
        sim.run()
        # 2 jobs on 4 cores for 2s -> 4 core-seconds occupied.
        assert cpu.stats.occupancy_integral == pytest.approx(4.0)
        assert cpu.utilization(0.0, elapsed=2.0) == pytest.approx(0.5)

    def test_occupancy_saturates_at_core_count(self):
        sim = Simulator()
        cpu = CpuResource(sim, "cpu", cores=2)
        for _ in range(8):
            cpu.submit(1.0)
        sim.run()
        assert sim.now == pytest.approx(4.0)
        assert cpu.utilization(0.0, elapsed=4.0) == pytest.approx(1.0)


class TestLatencyChannel:
    def test_message_delivered_after_latency(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=0.5)
        inbox = []
        channel.send(lambda m: inbox.append((sim.now, m)), "hello")
        assert inbox == []
        sim.run()
        assert inbox == [(0.5, "hello")]

    def test_messages_counted(self):
        sim = Simulator()
        channel = LatencyChannel(sim, latency=0.0)
        channel.send(lambda m: None, 1)
        channel.send(lambda m: None, 2)
        assert channel.messages_sent == 2

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            LatencyChannel(sim, latency=-0.1)


class TestRandomStreams:
    def test_streams_are_reproducible(self):
        from repro.simulation import RandomStreams

        a = RandomStreams(7).stream("disk")
        b = RandomStreams(7).stream("disk")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_of_creation_order(self):
        from repro.simulation import RandomStreams

        one = RandomStreams(7)
        one.stream("net")
        value_one = one.stream("disk").random()
        two = RandomStreams(7)
        value_two = two.stream("disk").random()
        assert value_one == value_two

    def test_lognormal_factor_median_near_one(self):
        from repro.simulation import RandomStreams

        streams = RandomStreams(3)
        draws = sorted(
            streams.lognormal_factor("node", sigma=0.2) for _ in range(400)
        )
        median = draws[len(draws) // 2]
        assert 0.9 < median < 1.1

    def test_sigma_zero_is_exactly_one(self):
        from repro.simulation import RandomStreams

        assert RandomStreams(1).lognormal_factor("x", 0.0) == 1.0

    def test_negative_sigma_rejected(self):
        from repro.simulation import RandomStreams

        with pytest.raises(ValueError):
            RandomStreams(1).lognormal_factor("x", -0.5)

    def test_fork_produces_distinct_streams(self):
        from repro.simulation import RandomStreams

        parent = RandomStreams(7)
        child = parent.fork("rep-1")
        assert child.stream("disk").random() != parent.stream("disk").random()
