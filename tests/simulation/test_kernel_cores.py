"""Pluggable kernel cores: registry semantics and cross-backend identity.

The vector core's contract is *bit identity* with the python reference:
same event timeline, same floats, same counters.  The golden-log suite
pins two full workload runs; the fuzz storms here attack the kernel
directly with adversarial schedules (zero-delay bursts, zero-work jobs,
interrupts mid-service, ``call_in`` ties, mixed-op device phases that
exercise the grouped-rate path) under both backends and require exact
equality -- ``==`` on floats, never ``approx``.
"""

import random
import warnings

import pytest

from repro.simulation.core import Interrupt, Simulator
from repro.simulation.kernel import (
    CORE_NAMES,
    DEFAULT_CORE,
    ENV_VAR,
    CoreUnavailableError,
    KernelCore,
    core_available,
    default_core_name,
    resolve_core,
)
from repro.simulation.kernel import _instances
from repro.simulation.resources import FairShareResource, Job
from repro.storage.device import HDD_PROFILE, MiB, StorageDevice

needs_vector = pytest.mark.skipif(
    not core_available("vector"), reason="numpy not available"
)


def _without_numpy(monkeypatch):
    """Simulate a numpy-free host: the vector core reports unavailable."""
    from repro.simulation.kernel import vector_core

    monkeypatch.setattr(vector_core, "np", None)
    monkeypatch.delitem(_instances, "vector", raising=False)


class TestRegistry:
    def test_python_always_available(self):
        assert core_available("python")

    def test_unknown_name_not_available(self):
        assert not core_available("fpga")

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_core_name() == DEFAULT_CORE == "python"
        assert resolve_core(None).name == "python"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "python")
        assert default_core_name() == "python"

    def test_instances_are_cached_singletons(self):
        assert resolve_core("python") is resolve_core("python")

    def test_core_instance_passes_through(self):
        core = resolve_core("python")
        assert resolve_core(core) is core

    def test_explicit_unknown_name_raises(self):
        with pytest.raises(CoreUnavailableError, match="unknown kernel core"):
            resolve_core("fpga")

    def test_explicit_unavailable_backend_raises(self, monkeypatch):
        _without_numpy(monkeypatch)
        with pytest.raises(CoreUnavailableError, match="unavailable"):
            resolve_core("vector")

    def test_env_unavailable_backend_warns_and_falls_back(self, monkeypatch):
        _without_numpy(monkeypatch)
        monkeypatch.setenv(ENV_VAR, "vector")
        with pytest.warns(RuntimeWarning, match="falling back"):
            core = resolve_core(None)
        assert core.name == "python"

    def test_env_unknown_name_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "quantum")
        with pytest.warns(RuntimeWarning, match="no known kernel core"):
            core = resolve_core(None)
        assert core.name == "python"

    def test_simulator_carries_resolved_core(self):
        sim = Simulator(core="python")
        assert isinstance(sim.core, KernelCore)
        assert sim.core.name == "python"

    @needs_vector
    def test_vector_metadata_reports_numpy(self):
        meta = resolve_core("vector").metadata()
        assert meta["core"] == "vector"
        assert meta["numpy"]

    def test_core_names_cover_both_backends(self):
        assert CORE_NAMES == ("python", "vector")


# --------------------------------------------------------------------------
# Cross-backend fuzz storms


class _SkewResource(FairShareResource):
    """Unstructured rates: neither uniform nor group-shaped, so both cores
    must take the per-job reference path (and still agree exactly)."""

    _rate_groups = None

    def rates(self, jobs):
        k = len(jobs)
        return {
            job: self.capacity * (1.0 + 0.25 * (job.attrs.get("w", 0) % 3)) / k
            for job in jobs
        }

    def uniform_rate(self, n):
        return None


def _make_plan(seed, actions=240):
    """Pre-generate a deterministic op plan; both backends replay the SAME
    plan object, so any divergence is the kernel's, not the generator's."""
    rng = random.Random(seed)
    plan = []
    for idx in range(actions):
        roll = rng.random()
        if roll < 0.30:
            plan.append(("cpu", rng.uniform(0.1, 4.0), rng.choice(["map", "reduce", ""])))
        elif roll < 0.60:
            # Mixed read/write bursts drive the device's grouped-rate path.
            plan.append(("disk", rng.uniform(1.0, 64.0) * MiB,
                         rng.choice(["read", "read", "write"])))
        elif roll < 0.70:
            plan.append(("skew", rng.uniform(0.1, 2.0), rng.randrange(3)))
        elif roll < 0.75:
            plan.append(("zero", rng.choice(["cpu", "disk"])))
        elif roll < 0.85:
            # Zero-delay bursts: many submissions at one instant, breaking
            # ties purely on scheduling order.
            plan.append(("wait", 0.0))
        elif roll < 0.95:
            plan.append(("wait", rng.uniform(0.001, 0.5)))
        else:
            plan.append(("interrupt", rng.uniform(0.01, 0.3)))
    return plan


def _run_storm(core, plan):
    sim = Simulator(core=core)
    cpu = FairShareResource(sim, "cpu", capacity=8.0)
    disk = StorageDevice(sim, "disk", HDD_PROFILE)
    skew = _SkewResource(sim, "skew", capacity=4.0)
    trace = []

    def note(label, idx):
        return lambda _e: trace.append((sim.now, label, idx))

    def waiter(idx, job):
        try:
            yield job.event
            trace.append((sim.now, "wait-done", idx))
        except Interrupt as exc:
            trace.append((sim.now, "wait-intr", idx, exc.cause))

    def driver():
        for idx, action in enumerate(plan):
            kind = action[0]
            if kind == "cpu":
                _, work, tag = action
                cpu.submit(work, tag=tag).event.add_callback(note("cpu", idx))
            elif kind == "disk":
                _, work, op = action
                disk.submit(work, tag=op, op=op).event.add_callback(
                    note("disk", idx))
            elif kind == "skew":
                _, work, w = action
                skew.submit(work, tag="skew", w=w).event.add_callback(
                    note("skew", idx))
            elif kind == "zero":
                _, where = action
                resource = cpu if where == "cpu" else disk
                resource.submit(0.0, tag="zero").event.add_callback(
                    note("zero", idx))
            elif kind == "wait":
                yield sim.timeout(action[1])
            elif kind == "interrupt":
                job = cpu.submit(5.0, tag="doomed")
                proc = sim.process(waiter(idx, job))
                sim.call_in(action[1], proc.interrupt, "storm")
                # call_in tie: a deferred call landing at the same instant
                # as kernel wake-ups must order identically on both cores.
                sim.call_in(action[1], trace.append, (idx, "tick"))

    sim.process(driver())
    sim.run()
    return {
        "trace": trace,
        "now": sim.now,
        "events": sim.events_scheduled,
        "stats": {
            name: {
                "work_done": r.stats.work_done,
                "busy_time": r.stats.busy_time,
                "jobs_completed": r.stats.jobs_completed,
                "work_by_tag": dict(r.stats.work_by_tag),
            }
            for name, r in (("cpu", cpu), ("disk", disk), ("skew", skew))
        },
    }


@needs_vector
class TestCrossBackendStorms:
    @pytest.mark.parametrize("seed", [1, 7, 42, 1337])
    def test_storm_identical_across_backends(self, seed):
        plan = _make_plan(seed)
        reference = _run_storm("python", plan)
        vectored = _run_storm("vector", plan)
        assert vectored["trace"] == reference["trace"]
        assert vectored["now"] == reference["now"]
        assert vectored["stats"] == reference["stats"]
        # Satellite audit: _schedule and call_in share one sequence
        # counter, so the backends' event totals are directly comparable.
        assert vectored["events"] == reference["events"]

    def test_storm_completes_all_jobs(self):
        # Sanity on the harness itself: the storm must actually finish its
        # work under the reference backend, or identity proves nothing.
        result = _run_storm("python", _make_plan(3))
        stats = result["stats"]
        assert stats["cpu"]["jobs_completed"] > 20
        assert stats["disk"]["jobs_completed"] > 20
        assert stats["skew"]["jobs_completed"] > 0


@needs_vector
class TestVectorDeepChurn:
    def test_wide_single_resource_churn_is_identical(self):
        """Hundreds of concurrent jobs on one resource: forces the vector
        paths (advance/complete well above the scalar cutoff) including
        tombstone compaction, and checks conservation exactly."""

        def run(core):
            sim = Simulator(core=core)
            cpu = FairShareResource(sim, "cpu", capacity=64.0)
            done = []

            def driver():
                for wave in range(3):
                    for i in range(200):
                        work = 1.0 + 0.01 * ((i * 7919) % 97)
                        tag = "spill" if i % 2 else "shuffle"
                        job = cpu.submit(work, tag=tag)
                        job.event.add_callback(
                            lambda _e, i=i: done.append((sim.now, i)))
                        if i % 16 == 0:
                            yield sim.timeout(0.0005)
                    yield sim.timeout(50.0)

            sim.process(driver())
            sim.run()
            return done, sim.now, sim.events_scheduled, {
                "work_done": cpu.stats.work_done,
                "work_by_tag": dict(cpu.stats.work_by_tag),
                "jobs_completed": cpu.stats.jobs_completed,
            }

        assert run("python") == run("vector")

    def test_remaining_visible_through_vector_job(self):
        """job.remaining reads through to the array slot while attached and
        reports 0.0 after completion, matching the reference jobs."""
        sim = Simulator(core="vector")
        cpu = FairShareResource(sim, "cpu", capacity=2.0)
        jobs = [cpu.submit(4.0) for _ in range(40)]
        assert all(isinstance(j, Job) for j in jobs)
        assert all(j.remaining == 4.0 for j in jobs)
        sim.run()
        assert all(j.remaining == 0.0 for j in jobs)
