"""Tests for the discrete-event kernel."""

import pytest

from repro.simulation import AllOf, Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_receives_timeout_value():
    sim = Simulator()
    seen = []

    def proc():
        value = yield sim.timeout(1.0, value="tick")
        seen.append(value)

    sim.process(proc())
    sim.run()
    assert seen == ["tick"]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return 17

    handle = sim.process(proc())
    sim.run()
    assert handle.value == 17
    assert handle.triggered


def test_processes_wait_on_each_other():
    sim = Simulator()
    order = []

    def inner():
        yield sim.timeout(3.0)
        order.append("inner")
        return "payload"

    def outer():
        result = yield sim.process(inner())
        order.append("outer")
        assert result == "payload"

    sim.process(outer())
    sim.run()
    assert order == ["inner", "outer"]
    assert sim.now == 3.0


def test_exception_propagates_into_waiting_process():
    sim = Simulator()
    caught = []

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def waiter():
        try:
            yield sim.process(failing())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.run()
    assert caught == ["boom"]


def test_unobserved_process_failure_raises_from_run():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("unseen")

    sim.process(failing())
    with pytest.raises(ValueError, match="unseen"):
        sim.run()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_collects_values_in_order():
    sim = Simulator()
    results = []

    def proc():
        values = yield sim.all_of([sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")])
        results.append(values)

    sim.process(proc())
    sim.run()
    assert results == [["slow", "fast"]]
    assert sim.now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()
    event = AllOf(sim, [])
    assert event.triggered
    assert event.value == []


def test_any_of_fires_on_first():
    sim = Simulator()
    results = []

    def proc():
        value = yield sim.any_of([sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")])
        results.append((sim.now, value))

    sim.process(proc())
    sim.run(until=10.0)
    assert results == [(1.0, "fast")]


def test_run_until_stops_before_future_events():
    sim = Simulator()
    fired = []
    marker = sim.timeout(10.0)
    marker.add_callback(lambda e: fired.append(sim.now))
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert fired == []
    sim.run()
    assert fired == [10.0]


def test_run_until_sets_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_event_succeed_twice_is_error():
    sim = Simulator()
    event = Event(sim)
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_callback_on_processed_event_still_runs():
    sim = Simulator()
    event = sim.timeout(1.0, value="x")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]


def test_call_at_runs_callback_at_absolute_time():
    sim = Simulator()
    stamps = []
    sim.call_at(4.0, lambda: stamps.append(sim.now))
    sim.run()
    assert stamps == [4.0]


def test_call_at_in_the_past_is_error():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_deterministic_tie_breaking_by_insertion_order():
    sim = Simulator()
    order = []
    for label in ("a", "b", "c"):
        sim.timeout(1.0).add_callback(lambda e, lab=label: order.append(lab))
    sim.run()
    assert order == ["a", "b", "c"]
