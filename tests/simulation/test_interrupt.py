"""Process interruption: the kernel primitive behind task kills."""

import pytest

from repro.simulation.core import Interrupt, Simulator
from repro.simulation.resources import FairShareResource


def make_sim():
    return Simulator()


class TestInterrupt:
    def test_interrupt_raises_inside_process(self):
        sim = make_sim()
        seen = []

        def body():
            try:
                yield sim.timeout(10.0)
                seen.append("finished")
            except Interrupt as exc:
                seen.append(("interrupted", exc.cause))

        proc = sim.process(body())
        sim.timeout(3.0).add_callback(lambda _e: proc.interrupt("killed"))
        sim.run()
        assert seen == [("interrupted", "killed")]
        assert sim.now == pytest.approx(10.0)  # the timeout still drains

    def test_interrupted_process_can_clean_up_and_return(self):
        sim = make_sim()

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                yield sim.timeout(1.0)  # cleanup work in simulated time
                return "cleaned"

        proc = sim.process(body())
        sim.timeout(2.0).add_callback(lambda _e: proc.interrupt())
        sim.run()
        assert proc.ok
        assert proc.value == "cleaned"

    def test_interrupt_after_completion_is_refused(self):
        sim = make_sim()

        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        sim.run()
        assert proc.interrupt() is False

    def test_double_interrupt_delivers_once(self):
        sim = make_sim()
        hits = []

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                hits.append("hit")

        proc = sim.process(body())

        def both(_event):
            assert proc.interrupt("first") is True
            assert proc.interrupt("second") is True  # already in flight

        sim.timeout(1.0).add_callback(both)
        sim.run()
        assert hits == ["hit"]

    def test_interrupt_before_start_cancels_silently(self):
        sim = make_sim()
        ran = []

        def body():
            ran.append(True)
            yield sim.timeout(1.0)

        proc = sim.process(body())
        # The bootstrap event has not been processed yet: the body never ran.
        assert proc.interrupt() is True
        sim.run()
        assert ran == []
        assert proc.ok
        assert proc.value is None

    def test_other_waiters_unaffected(self):
        sim = make_sim()
        order = []
        shared = sim.timeout(5.0)

        def waiter(name):
            yield shared
            order.append(name)

        sim.process(waiter("a"))
        victim = sim.process(waiter("b"))
        sim.process(waiter("c"))
        sim.timeout(1.0).add_callback(lambda _e: victim.interrupt())
        with pytest.raises(Interrupt):
            sim.run()  # b's interrupt is unhandled and propagates
        assert not victim.ok

    def test_unhandled_interrupt_fails_the_process(self):
        sim = make_sim()

        def body():
            yield sim.timeout(10.0)

        proc = sim.process(body())
        sim.timeout(1.0).add_callback(lambda _e: proc.interrupt("boom"))
        with pytest.raises(Interrupt):
            sim.run()
        assert proc.triggered and not proc.ok
        assert isinstance(proc.value, Interrupt)
        assert proc.value.cause == "boom"


class TestRunUntil:
    def test_stops_at_event_without_draining(self):
        sim = make_sim()
        fired = []
        sim.timeout(100.0).add_callback(lambda _e: fired.append("late"))

        def body():
            yield sim.timeout(2.0)

        proc = sim.process(body())
        sim.run_until(proc)
        assert proc.triggered
        assert sim.now == pytest.approx(2.0)
        assert fired == []  # the t=100 event stays queued
        sim.run()
        assert fired == ["late"]
        assert sim.now == pytest.approx(100.0)


class TestNotifyRatesChanged:
    def test_rate_change_replans_in_flight_jobs(self):
        sim = make_sim()
        resource = FairShareResource(sim, "dev", capacity=1.0)
        job = resource.submit(10.0)  # finishes at t=10 at capacity 1.0
        done = []
        job.event.add_callback(lambda e: done.append(sim.now))

        def speed_up():
            resource.sync()  # settle work at the old rate first
            resource.capacity = 5.0
            resource.notify_rates_changed()

        sim.timeout(5.0).add_callback(lambda _e: speed_up())
        sim.run()
        # 5 work units done by t=5, remaining 5 at rate 5 -> one more second.
        assert done == [pytest.approx(6.0)]
