"""Structural checks of the synthetic workloads (cheap, scaled-down runs)."""

import pytest

from repro.workloads import WORKLOADS, Workload, get_workload
from repro.workloads.catalog import (
    TABLE2_WORKLOADS,
    TABLE3_WORKLOADS,
    workload_names,
)
from tests.engine.conftest import make_context

GiB = 1024.0**3


def run_scaled(name, scale=0.02, **kwargs):
    ctx = make_context(num_nodes=2, cores=4)
    workload = get_workload(name, scale=scale, **kwargs)
    return workload, workload.run(ctx)


class TestCatalog:
    def test_registry_contains_all_table2_apps(self):
        for name in TABLE2_WORKLOADS:
            assert name in WORKLOADS

    def test_table3_subset_of_table2(self):
        assert set(TABLE3_WORKLOADS) <= set(TABLE2_WORKLOADS)

    def test_names_sorted(self):
        names = workload_names()
        assert names == sorted(names)

    def test_get_workload_unknown_name(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("mapreduce")

    def test_get_workload_passes_kwargs(self):
        assert get_workload("pagerank", iterations=2).iterations == 2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("terasort", scale=0.0)

    def test_paper_amplification_ratios(self):
        # Table 2's reported ratios, sanity-encoded on the classes.
        assert get_workload("join").paper_amplification == pytest.approx(
            21.06 / 17.87, rel=1e-3
        )
        assert get_workload("nweight").paper_amplification > 30


class TestScaledRuns:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_runs_and_moves_bytes(self, name):
        workload, run = run_scaled(name)
        assert run.runtime > 0
        assert run.num_stages >= 1
        assert run.cluster_io_bytes > workload.scaled_input_size

    def test_terasort_has_three_stages(self):
        _w, run = run_scaled("terasort")
        assert run.num_stages == 3

    def test_pagerank_stage_count_follows_iterations(self):
        ctx = make_context(num_nodes=2, cores=4)
        workload = get_workload("pagerank", scale=0.02, iterations=2)
        run = workload.run(ctx)
        assert run.num_stages == 2 + 2

    def test_aggregation_two_stages(self):
        _w, run = run_scaled("aggregation")
        assert run.num_stages == 2

    def test_join_three_stages(self):
        _w, run = run_scaled("join")
        assert run.num_stages == 3

    def test_amplification_in_paper_band(self):
        # Spot-check two contrasting workloads at small scale.
        for name, lo, hi in (("join", 1.0, 2.2), ("lda", 3.0, 11.0)):
            workload, run = run_scaled(name)
            amplification = run.cluster_io_bytes / workload.scaled_input_size
            assert lo < amplification < hi, (name, amplification)

    def test_scale_changes_input_size(self):
        big = get_workload("terasort", scale=1.0)
        small = get_workload("terasort", scale=0.1)
        assert small.scaled_input_size == pytest.approx(big.scaled_input_size * 0.1)


class TestWorkloadValidation:
    def test_pagerank_requires_iterations(self):
        with pytest.raises(ValueError):
            get_workload("pagerank", iterations=0)

    def test_lda_requires_iterations(self):
        with pytest.raises(ValueError):
            get_workload("lda", iterations=0)

    def test_nweight_requires_hops(self):
        with pytest.raises(ValueError):
            get_workload("nweight", hops=0)

    def test_base_class_requires_overrides(self):
        workload = Workload()
        with pytest.raises(NotImplementedError):
            workload.prepare(None)
        with pytest.raises(NotImplementedError):
            workload.prepare_small(None)
