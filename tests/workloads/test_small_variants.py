"""Additional small-variant and cross-device workload tests."""

import pytest

from repro.workloads import Scan, Terasort, WordCount
from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine import SparkContext
from repro.storage import SSD_PROFILE
from tests.engine.conftest import make_context


class TestScanSmall:
    def test_scan_copies_input(self):
        ctx = make_context()
        workload = Scan(num_partitions=4)
        workload.prepare_small(ctx)
        workload.execute(ctx)
        output = ctx.datasets.describe(workload.output_path)
        assert output.records_available
        assert len(output.data) == 100

    def test_scan_sets_replication(self):
        ctx = make_context()
        workload = Scan(scale=0.02)
        workload.prepare(ctx)
        assert ctx.conf.get("repro.output.replication") == 3


class TestCrossDevice:
    def make_ssd_context(self):
        spec = ClusterSpec(
            num_nodes=2,
            node=NodeSpec(cores=4, disk_profile=SSD_PROFILE),
            disk_sigma=0.0,
            cpu_sigma=0.0,
        )
        return SparkContext(Cluster(spec))

    def test_terasort_faster_on_ssd(self):
        hdd_ctx = make_context(num_nodes=2, cores=4)
        ssd_ctx = self.make_ssd_context()
        hdd = Terasort(scale=0.05, num_partitions=32).run(hdd_ctx)
        ssd = Terasort(scale=0.05, num_partitions=32).run(ssd_ctx)
        assert ssd.runtime < hdd.runtime

    def test_results_identical_across_devices(self):
        """Device models change timing, never semantics."""
        hdd_ctx = make_context(num_nodes=2, cores=4)
        ssd_ctx = self.make_ssd_context()
        counts = []
        for ctx in (hdd_ctx, ssd_ctx):
            workload = WordCount(num_partitions=4)
            counts.append(workload.collect_small_counts(ctx))
        assert counts[0] == counts[1]


class TestWorkloadRunAccessors:
    def test_run_object_accessors(self):
        ctx = make_context(num_nodes=2, cores=4)
        run = WordCount(scale=0.02).run(ctx)
        assert run.num_stages == len(run.stage_durations())
        assert run.runtime == pytest.approx(ctx.total_runtime)
        assert run.cluster_io_bytes > 0

    def test_run_small_returns_result(self):
        ctx = make_context(num_nodes=2, cores=4)
        run = WordCount(num_partitions=2).run_small(ctx)
        assert run.result == "/hibench/wordcount/output"
