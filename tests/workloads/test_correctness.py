"""Semantic correctness of workloads on small materialised inputs.

Terasort really sorts, PageRank really converges, WordCount really counts,
Join really joins -- all through the full engine.
"""

import pytest

from repro.workloads import Aggregation, Join, PageRank, Terasort, WordCount
from tests.engine.conftest import make_context


class TestTerasortSmall:
    def test_output_is_sorted(self):
        ctx = make_context()
        workload = Terasort(num_partitions=4)
        workload.prepare_small(ctx, num_records=200)
        workload.execute(ctx)
        output = ctx.datasets.describe(workload.output_path)
        assert output.records_available
        keys = [line[:10] for line in output.data]
        assert keys == sorted(keys)
        assert len(keys) == 200

    def test_output_preserves_records(self):
        ctx = make_context()
        workload = Terasort(num_partitions=4)
        workload.prepare_small(ctx, num_records=64)
        workload.execute(ctx)
        raw_input = sorted(ctx.datasets.describe(workload.input_path).data)
        # saveAsTextFile stores (key, value) pairs; reassemble the lines.
        output = sorted(k + v for k, v in
                        (pair for pair in
                         ctx.datasets.describe(workload.output_path).data))
        assert output == raw_input

    def test_runs_three_stages(self):
        ctx = make_context()
        workload = Terasort(num_partitions=4)
        workload.run_small(ctx)
        assert len(ctx.recorder.stages) == 3
        assert all(s.is_io_marked for s in ctx.recorder.stages)


class TestPageRankSmall:
    def test_ranks_converge_to_valid_distribution(self):
        ctx = make_context()
        workload = PageRank(iterations=8, num_partitions=4)
        ranks = workload.collect_small_ranks(ctx)
        assert ranks
        assert all(rank > 0 for rank in ranks.values())

    def test_matches_reference_power_iteration(self):
        ctx = make_context()
        workload = PageRank(iterations=12, num_partitions=4)
        ranks = workload.collect_small_ranks(ctx)

        # Reference implementation, straight from the input edge list.
        edges = ctx.datasets.describe(workload.input_path).data
        links = {}
        for line in edges:
            src, dst = line.split()
            links.setdefault(src, []).append(dst)
        # Spark-semantics reference: sources that received no contributions
        # drop out of `ranks`, so they stop contributing on later iterations
        # (the classic example's dangling-source behaviour).
        reference = {page: 1.0 for page in links}
        for _ in range(12):
            contribs = {}
            for src, targets in links.items():
                if src not in reference:
                    continue
                share = reference[src] / len(targets)
                for dst in targets:
                    contribs[dst] = contribs.get(dst, 0.0) + share
            reference = {
                page: 0.15 + 0.85 * total for page, total in contribs.items()
            }
        for page, value in ranks.items():
            assert value == pytest.approx(reference[page], rel=1e-6)

    def test_stage_structure_is_ingest_iterations_save(self):
        ctx = make_context()
        workload = PageRank(iterations=3, num_partitions=4)
        workload.prepare_small(ctx)
        workload.execute(ctx)
        stages = ctx.recorder.stages
        assert len(stages) == 3 + 2  # ingest + iterations + save
        assert stages[0].is_io_marked
        assert stages[-1].is_io_marked
        for middle in stages[1:-1]:
            assert not middle.is_io_marked


class TestWordCountSmall:
    def test_counts_are_exact(self):
        ctx = make_context()
        workload = WordCount(num_partitions=3)
        counts = workload.collect_small_counts(ctx)
        assert counts["the"] == 4
        assert counts["fox"] == 2
        assert counts["jumps"] == 1

    def test_custom_text(self):
        ctx = make_context()
        workload = WordCount(num_partitions=2)
        workload.prepare_small(ctx, text="a b a")
        words = ctx.text_file(workload.input_path, 2)
        counts = dict(
            words.map(lambda w: (w, 1)).reduce_by_key(lambda x, y: x + y, 2).collect()
        )
        assert counts == {"a": 2, "b": 1}


class TestJoinSmall:
    def test_join_matches_keys(self):
        ctx = make_context()
        workload = Join(num_partitions=4)
        workload.prepare_small(ctx)
        workload.execute(ctx)
        output = ctx.datasets.describe(workload.output_path)
        assert output.records_available
        # Every uservisit with url0..url7 matches exactly one ranking row.
        assert len(output.data) == 64

    def test_three_stages(self):
        ctx = make_context()
        workload = Join(num_partitions=4)
        workload.run_small(ctx)
        assert len(ctx.recorder.stages) == 3


class TestAggregationSmall:
    def test_sums_grouped_by_key(self):
        ctx = make_context()
        workload = Aggregation(num_partitions=4)
        workload.prepare_small(ctx)
        workload.execute(ctx)
        output = ctx.datasets.describe(workload.output_path)
        sums = dict(output.data)
        # 240 rows, keys 1.2.3.0-5, values i % 10 cycling.
        assert len(sums) == 6
        assert sum(sums.values()) == pytest.approx(sum(i % 10 for i in range(240)))

    def test_two_stages(self):
        ctx = make_context()
        workload = Aggregation(num_partitions=4)
        workload.run_small(ctx)
        assert len(ctx.recorder.stages) == 2
