"""Arrival plans: determinism, JSON round-trip, and validation."""

import json
from pathlib import Path

import pytest

from repro.workloads.arrivals import (
    ArrivalPlan,
    ArrivalPlanError,
    JobTemplate,
    TenantSpec,
    poisson_plan,
    single_job_plan,
)


def two_tenant_plan(seed=7):
    return ArrivalPlan(
        seed=seed,
        horizon=500.0,
        tenants=(
            TenantSpec(
                name="ads",
                weight=2.0,
                slots=2,
                process=("poisson", 0.05, 0.0, None),
                mix=(
                    JobTemplate(workload="terasort", scale=0.05, weight=3.0),
                    JobTemplate(workload="wordcount", scale=0.05,
                                policy="dynamic"),
                ),
            ),
            TenantSpec(
                name="batch",
                slots=1,
                process=("trace", (0.0, 120.0, 120.0)),
                mix=(JobTemplate(workload="pagerank", scale=0.1,
                                 policy=("static", 8)),),
            ),
        ),
    )


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        first = two_tenant_plan().generate()
        second = two_tenant_plan().generate()
        assert first == second

    def test_different_seed_different_sequence(self):
        first = two_tenant_plan(seed=7).generate()
        second = two_tenant_plan(seed=8).generate()
        # Trace arrivals stay fixed; the Poisson tenant's times must move.
        assert [a.time for a in first if a.tenant == "ads"] != \
               [a.time for a in second if a.tenant == "ads"]

    def test_sequence_is_time_sorted_with_fresh_ids(self):
        arrivals = two_tenant_plan().generate()
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        assert [a.job_id for a in arrivals] == \
               [f"j{i:04d}" for i in range(len(arrivals))]

    def test_tenant_streams_are_independent(self):
        """Removing one tenant does not perturb another's draws."""
        full = two_tenant_plan().generate()
        solo_plan = ArrivalPlan(
            seed=7, horizon=500.0, tenants=(two_tenant_plan().tenants[0],)
        )
        solo = solo_plan.generate()
        assert [(a.time, a.template) for a in full if a.tenant == "ads"] == \
               [(a.time, a.template) for a in solo]

    def test_trace_times_pass_through(self):
        arrivals = two_tenant_plan().generate()
        batch = [a.time for a in arrivals if a.tenant == "batch"]
        assert batch == [0.0, 120.0, 120.0]

    def test_poisson_respects_window(self):
        plan = poisson_plan(tenants=1, rate=0.5, horizon=200.0)
        arrivals = plan.generate()
        assert arrivals  # rate*horizon = 100 expected; zero is astronomically unlikely
        assert all(0.0 < a.time <= 200.0 for a in arrivals)

    def test_mix_draws_follow_weights(self):
        plan = ArrivalPlan(
            seed=1,
            horizon=4000.0,
            tenants=(
                TenantSpec(
                    name="t",
                    process=("poisson", 0.25, 0.0, None),
                    mix=(
                        JobTemplate(workload="terasort", weight=9.0),
                        JobTemplate(workload="wordcount", weight=1.0),
                    ),
                ),
            ),
        )
        arrivals = plan.generate()
        heavy = sum(1 for a in arrivals if a.template.workload == "terasort")
        assert 0.8 < heavy / len(arrivals) < 1.0


class TestRoundTrip:
    def test_json_round_trip_preserves_plan(self):
        plan = two_tenant_plan()
        clone = ArrivalPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.generate() == plan.generate()

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "plan.json")
        plan = poisson_plan(seed=3)
        plan.save(path)
        assert ArrivalPlan.load(path) == plan

    def test_canned_single_round_trips(self):
        plan = single_job_plan(workload="terasort", scale=0.05, slots=4)
        assert ArrivalPlan.from_json(plan.to_json()) == plan
        arrivals = plan.generate()
        assert len(arrivals) == 1
        assert arrivals[0].time == 0.0
        assert arrivals[0].slots == 4

    def test_schema_field_is_emitted(self):
        doc = two_tenant_plan().to_dict()
        assert doc["schema"] == "repro.arrivals/1"


class TestValidation:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ArrivalPlanError, match="schema"):
            ArrivalPlan.from_dict({"schema": "repro.faults/1", "tenants": []})

    def test_rejects_unknown_workload(self):
        with pytest.raises(ArrivalPlanError, match="unknown workload"):
            JobTemplate(workload="nope").validate()

    def test_rejects_bad_policy(self):
        with pytest.raises(ArrivalPlanError, match="policy"):
            JobTemplate.from_dict({"workload": "terasort",
                                   "policy": "bestfit"})

    def test_rejects_duplicate_tenants(self):
        tenant = two_tenant_plan().tenants[1]
        with pytest.raises(ArrivalPlanError, match="duplicate"):
            ArrivalPlan(tenants=(tenant, tenant)).validate()

    def test_rejects_poisson_without_horizon(self):
        tenant = TenantSpec(
            name="t", process=("poisson", 0.1, 0.0, None),
            mix=(JobTemplate(workload="terasort"),),
        )
        with pytest.raises(ArrivalPlanError, match="horizon"):
            ArrivalPlan(tenants=(tenant,), horizon=None).validate()

    def test_rejects_unsorted_trace(self):
        tenant = TenantSpec(
            name="t", process=("trace", (5.0, 1.0)),
            mix=(JobTemplate(workload="terasort"),),
        )
        with pytest.raises(ArrivalPlanError, match="sorted"):
            ArrivalPlan(tenants=(tenant,)).validate()

    def test_rejects_unknown_fields(self):
        doc = two_tenant_plan().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ArrivalPlanError, match="surprise"):
            ArrivalPlan.from_dict(doc)

    def test_rejects_invalid_json(self):
        with pytest.raises(ArrivalPlanError, match="JSON"):
            ArrivalPlan.from_json("{not json")

    def test_rejects_empty_mix(self):
        with pytest.raises(ArrivalPlanError, match="mix"):
            TenantSpec(name="t", mix=()).validate(None)


EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "arrivals"


class TestExamples:
    @pytest.mark.parametrize("name", ["two-tenants", "single-terasort"])
    def test_committed_examples_load(self, name):
        plan = ArrivalPlan.load(str(EXAMPLES / f"{name}.json"))
        assert plan.generate()

    def test_committed_examples_are_canonical_json(self):
        with open(EXAMPLES / "two-tenants.json") as handle:
            text = handle.read()
        doc = json.loads(text)
        assert text == json.dumps(doc, indent=2, sort_keys=True) + "\n"
