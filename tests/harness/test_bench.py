"""Tests for the perf-benchmark engine (repro.harness.bench).

Timing-independent by design: the microbenchmark *programs* are checked
for correctness (event counts, completion accounting) and the regression
gate for its comparison logic, but no test asserts on wall-clock rates --
those belong to ``repro bench`` runs, not the CI test suite.
"""

import pytest

from repro.harness import bench


def _doc(**merits):
    return {
        "schema": bench.BENCH_SCHEMA,
        "benchmarks": {
            name: {"events_per_sec": value} for name, value in merits.items()
        },
    }


class TestCheckRegression:
    def test_equal_docs_pass(self):
        doc = _doc(kernel=100_000.0)
        assert bench.check_regression(doc, doc) == []

    def test_drop_beyond_tolerance_fails(self):
        failures = bench.check_regression(
            _doc(kernel=70_000.0), _doc(kernel=100_000.0), tolerance=0.25
        )
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_drop_within_tolerance_passes(self):
        assert bench.check_regression(
            _doc(kernel=80_000.0), _doc(kernel=100_000.0), tolerance=0.25
        ) == []

    def test_improvement_passes(self):
        assert bench.check_regression(
            _doc(kernel=200_000.0), _doc(kernel=100_000.0)
        ) == []

    def test_new_benchmark_not_gated_retroactively(self):
        assert bench.check_regression(
            _doc(kernel=100_000.0, extra=1.0), _doc(kernel=100_000.0)
        ) == []

    def test_removed_benchmark_ignored(self):
        assert bench.check_regression(
            _doc(kernel=100_000.0), _doc(kernel=100_000.0, gone=999.0)
        ) == []

    def test_runs_per_min_used_when_events_rate_absent(self):
        current = {"benchmarks": {"sweep": {"events_per_sec": None,
                                            "runs_per_min": 10.0}}}
        baseline = {"benchmarks": {"sweep": {"events_per_sec": None,
                                             "runs_per_min": 100.0}}}
        failures = bench.check_regression(current, baseline)
        assert len(failures) == 1 and "sweep" in failures[0]


class TestKernelPrograms:
    def test_terasort_kernel_run_counts_events(self):
        events = bench._terasort_kernel_run(num_nodes=2, tasks_per_node=4,
                                            waves=2)
        # Lower bound: every task needs >= 6 I/O + 1 CPU + 1 message, each
        # at least one queue entry, plus process bootstraps.
        assert events > 2 * 4 * 2 * 8

    def test_terasort_kernel_run_is_deterministic(self):
        first = bench._terasort_kernel_run(2, 4, 2)
        second = bench._terasort_kernel_run(2, 4, 2)
        assert first == second

    def test_storm_run_counts_events(self):
        events = bench._storm_run(processes=10, hops=5)
        # Each hop is one timeout + one resume bookkeeping entry at minimum.
        assert events >= 10 * 5

    def test_timed_returns_best_of_n(self):
        calls = []

        def fake():
            calls.append(1)
            return 42

        events, wall = bench._timed(fake, repeats=3)
        assert events == 42
        assert len(calls) == 3
        assert wall >= 0.0


class TestSuiteShape:
    def test_smoke_suite_document(self):
        doc = bench.run_suite(smoke=True, parallel=1)
        assert doc["schema"] == bench.BENCH_SCHEMA
        assert doc["mode"] == "smoke"
        expected = {"kernel_terasort", "kernel_terasort_vector",
                    "kernel_fairshare", "kernel_fairshare_vector",
                    "kernel_storm", "e2e_terasort", "e2e_pagerank",
                    "profiler_overhead", "sweep", "fork_sweep",
                    "serve_chaos"}
        assert set(doc["benchmarks"]) == expected
        vector_benches = {"kernel_terasort_vector", "kernel_fairshare_vector"}
        from repro.simulation.kernel import core_available
        for name in expected - {"sweep", "profiler_overhead", "fork_sweep"}:
            result = doc["benchmarks"][name]
            if name in vector_benches and not core_available("vector"):
                # Numpy-free host: pinned-core benches skip, never fail.
                assert result["events_per_sec"] is None
                assert result["skipped"]
            else:
                assert result["events_per_sec"] > 0
        # The suite follows the session default (REPRO_CORE env or python).
        from repro.simulation.kernel import resolve_core
        assert doc["cores"]["active"]["core"] == resolve_core(None).name
        assert "python" in doc["cores"]["available"]
        sweep = doc["benchmarks"]["sweep"]
        assert sweep["points"] == 8
        assert sweep["runs_per_min"] > 0
        overhead = doc["benchmarks"]["profiler_overhead"]
        # Not regression-gated (host-dependent walls) but present and sane:
        # a profiled run schedules at least as many events as the baseline.
        assert overhead["events_per_sec"] is None
        assert overhead["events"] >= overhead["baseline_events"] > 0
        fork_sweep = doc["benchmarks"]["fork_sweep"]
        assert fork_sweep["points"] == 8
        if fork_sweep["fork_available"]:
            assert fork_sweep["runs_per_min"] > 0
            assert fork_sweep["speedup"] > 0
        # The suite gates against itself: a doc never regresses vs itself.
        assert bench.check_regression(doc, doc) == []

    def test_only_filters_suite(self):
        doc = bench.run_suite(smoke=True, only=["kernel_storm"])
        assert set(doc["benchmarks"]) == {"kernel_storm"}

    def test_only_preserves_registry_order(self):
        doc = bench.run_suite(smoke=True,
                              only=["kernel_storm", "kernel_terasort"])
        assert list(doc["benchmarks"]) == ["kernel_terasort", "kernel_storm"]

    def test_only_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            bench.run_suite(smoke=True, only=["no_such_bench"])


class TestCheckRetriesOnlyFailing(object):
    """``repro bench --check`` must re-measure just the failing
    benchmark(s): re-running the whole suite gives every passing benchmark
    a fresh chance to flake and costs minutes on a one-benchmark blip."""

    def test_retry_scope(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        calls = {"stable": 0, "flaky": 0}

        def stable(smoke, parallel):
            calls["stable"] += 1
            return {"events_per_sec": 100.0, "wall_s": 0.1}

        def flaky(smoke, parallel):
            # Below baseline on the first measurement, recovered on retry.
            calls["flaky"] += 1
            rate = 10.0 if calls["flaky"] == 1 else 100.0
            return {"events_per_sec": rate, "wall_s": 0.1}

        registry = {"stable": stable, "flaky": flaky,
                    "sweep": lambda smoke, parallel: {
                        "events_per_sec": None, "runs_per_min": 60.0,
                        "points": 1, "workers": 1, "speedup": 1.0,
                        "parallel_wall_s": 0.1}}
        monkeypatch.setattr(bench, "BENCHMARKS", registry)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            '{"benchmarks": {"stable": {"events_per_sec": 100.0}, '
            '"flaky": {"events_per_sec": 100.0}}}'
        )
        code = main(["bench", "--smoke", "--out",
                     str(tmp_path / "out.json"), "--check", str(baseline)])
        capsys.readouterr()
        assert code == 0
        assert calls["flaky"] == 2   # re-measured
        assert calls["stable"] == 1  # NOT re-measured

    def test_persistent_regression_still_fails(self, tmp_path, monkeypatch,
                                               capsys):
        from repro.cli import main

        registry = {"slow": lambda smoke, parallel: {
                        "events_per_sec": 10.0, "wall_s": 0.1},
                    "sweep": lambda smoke, parallel: {
                        "events_per_sec": None, "runs_per_min": 60.0,
                        "points": 1, "workers": 1, "speedup": 1.0,
                        "parallel_wall_s": 0.1}}
        monkeypatch.setattr(bench, "BENCHMARKS", registry)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            '{"benchmarks": {"slow": {"events_per_sec": 100.0}}}'
        )
        code = main(["bench", "--smoke", "--out",
                     str(tmp_path / "out.json"), "--check", str(baseline)])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err
