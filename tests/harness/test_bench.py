"""Tests for the perf-benchmark engine (repro.harness.bench).

Timing-independent by design: the microbenchmark *programs* are checked
for correctness (event counts, completion accounting) and the regression
gate for its comparison logic, but no test asserts on wall-clock rates --
those belong to ``repro bench`` runs, not the CI test suite.
"""

import pytest

from repro.harness import bench


def _doc(**merits):
    return {
        "schema": bench.BENCH_SCHEMA,
        "benchmarks": {
            name: {"events_per_sec": value} for name, value in merits.items()
        },
    }


class TestCheckRegression:
    def test_equal_docs_pass(self):
        doc = _doc(kernel=100_000.0)
        assert bench.check_regression(doc, doc) == []

    def test_drop_beyond_tolerance_fails(self):
        failures = bench.check_regression(
            _doc(kernel=70_000.0), _doc(kernel=100_000.0), tolerance=0.25
        )
        assert len(failures) == 1
        assert "kernel" in failures[0]

    def test_drop_within_tolerance_passes(self):
        assert bench.check_regression(
            _doc(kernel=80_000.0), _doc(kernel=100_000.0), tolerance=0.25
        ) == []

    def test_improvement_passes(self):
        assert bench.check_regression(
            _doc(kernel=200_000.0), _doc(kernel=100_000.0)
        ) == []

    def test_new_benchmark_not_gated_retroactively(self):
        assert bench.check_regression(
            _doc(kernel=100_000.0, extra=1.0), _doc(kernel=100_000.0)
        ) == []

    def test_removed_benchmark_ignored(self):
        assert bench.check_regression(
            _doc(kernel=100_000.0), _doc(kernel=100_000.0, gone=999.0)
        ) == []

    def test_runs_per_min_used_when_events_rate_absent(self):
        current = {"benchmarks": {"sweep": {"events_per_sec": None,
                                            "runs_per_min": 10.0}}}
        baseline = {"benchmarks": {"sweep": {"events_per_sec": None,
                                             "runs_per_min": 100.0}}}
        failures = bench.check_regression(current, baseline)
        assert len(failures) == 1 and "sweep" in failures[0]


class TestKernelPrograms:
    def test_terasort_kernel_run_counts_events(self):
        events = bench._terasort_kernel_run(num_nodes=2, tasks_per_node=4,
                                            waves=2)
        # Lower bound: every task needs >= 6 I/O + 1 CPU + 1 message, each
        # at least one queue entry, plus process bootstraps.
        assert events > 2 * 4 * 2 * 8

    def test_terasort_kernel_run_is_deterministic(self):
        first = bench._terasort_kernel_run(2, 4, 2)
        second = bench._terasort_kernel_run(2, 4, 2)
        assert first == second

    def test_storm_run_counts_events(self):
        events = bench._storm_run(processes=10, hops=5)
        # Each hop is one timeout + one resume bookkeeping entry at minimum.
        assert events >= 10 * 5

    def test_timed_returns_best_of_n(self):
        calls = []

        def fake():
            calls.append(1)
            return 42

        events, wall = bench._timed(fake, repeats=3)
        assert events == 42
        assert len(calls) == 3
        assert wall >= 0.0


class TestSuiteShape:
    def test_smoke_suite_document(self):
        doc = bench.run_suite(smoke=True, parallel=1)
        assert doc["schema"] == bench.BENCH_SCHEMA
        assert doc["mode"] == "smoke"
        expected = {"kernel_terasort", "kernel_storm", "e2e_terasort",
                    "e2e_pagerank", "profiler_overhead", "sweep"}
        assert set(doc["benchmarks"]) == expected
        for name in expected - {"sweep", "profiler_overhead"}:
            assert doc["benchmarks"][name]["events_per_sec"] > 0
        sweep = doc["benchmarks"]["sweep"]
        assert sweep["points"] == 8
        assert sweep["runs_per_min"] > 0
        overhead = doc["benchmarks"]["profiler_overhead"]
        # Not regression-gated (host-dependent walls) but present and sane:
        # a profiled run schedules at least as many events as the baseline.
        assert overhead["events_per_sec"] is None
        assert overhead["events"] >= overhead["baseline_events"] > 0
        # The suite gates against itself: a doc never regresses vs itself.
        assert bench.check_regression(doc, doc) == []
