"""Tests for the parallel run harness (repro.harness.parallel).

The load-bearing property: a parallel sweep must be *indistinguishable*
from a sequential one -- same runtimes, same stage records, same ordering
-- because each run is an independent seeded simulation.
"""

import os

import pytest

from repro.harness.parallel import (
    RunConfig,
    RunSummary,
    execute_run_config,
    map_runs,
    resolve_parallel,
)
from repro.harness.runner import derive_bestfit, static_sweep

FAST = {"workload_kwargs": {"scale": 0.02}, "cluster_kwargs": {"num_nodes": 2}}


def _config(key, threads, **overrides):
    merged = {**FAST, **overrides}
    return RunConfig(
        workload="wordcount",
        policy=("static", threads),
        key=key,
        **merged,
    )


class TestResolveParallel:
    def test_zero_means_all_cores(self):
        assert resolve_parallel(0) == (os.cpu_count() or 1)

    def test_none_means_all_cores(self):
        assert resolve_parallel(None) == (os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_parallel(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_parallel(-1)


class TestRunConfig:
    def test_callable_policy_rejected(self):
        with pytest.raises(ValueError, match="callable"):
            RunConfig(workload="wordcount", policy=lambda: None)

    def test_is_picklable(self):
        import pickle

        config = _config("a", 4)
        assert pickle.loads(pickle.dumps(config)) == config


class TestExecuteRunConfig:
    def test_returns_summary_with_recorder(self):
        summary = execute_run_config(_config("label", 4))
        assert isinstance(summary, RunSummary)
        assert summary.key == "label"
        assert summary.runtime > 0
        assert summary.num_stages == len(summary.stages) > 0
        assert summary.stage_durations() == [
            stage.duration for stage in summary.stages
        ]
        # ctx duck-types the recorder access the monitoring analyses use.
        assert summary.ctx.recorder is summary.recorder

    def test_events_path_writes_log(self, tmp_path):
        out = tmp_path / "events.jsonl"
        execute_run_config(_config("traced", 4, events_path=str(out)))
        lines = out.read_text().strip().splitlines()
        assert len(lines) > 0

    def test_summary_is_picklable(self):
        import pickle

        summary = execute_run_config(_config("p", 2))
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.runtime == summary.runtime
        assert clone.stage_durations() == summary.stage_durations()

    def test_profile_path_writes_profile_and_fills_summary(self, tmp_path):
        import json

        out = tmp_path / "profile.json"
        summary = execute_run_config(
            _config("profiled", 4, profile_path=str(out))
        )
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.profile/1"
        assert summary.demand_profile == doc
        # Profiles survive the pool boundary and the journal codec.
        import pickle

        from repro.harness.parallel import summary_from_doc, summary_to_doc

        clone = pickle.loads(pickle.dumps(summary))
        assert clone.demand_profile == doc
        assert summary_from_doc(
            summary_to_doc(summary)
        ).demand_profile == doc

    def test_no_profile_path_leaves_summary_empty(self):
        summary = execute_run_config(_config("plain", 4))
        assert summary.demand_profile is None


class TestMapRuns:
    def test_parallel_matches_sequential(self):
        configs = [_config(threads, threads) for threads in (4, 2)]
        sequential = map_runs(configs, parallel=1)
        parallel = map_runs(configs, parallel=2)
        assert [s.key for s in sequential] == [s.key for s in parallel] == [4, 2]
        for seq, par in zip(sequential, parallel):
            assert seq.runtime == par.runtime
            assert seq.stage_durations() == par.stage_durations()
            assert seq.cluster_io_bytes == par.cluster_io_bytes

    def test_empty_config_list(self):
        assert map_runs([], parallel=4) == []


class TestStaticSweepParallel:
    def test_parallel_sweep_matches_sequential(self):
        kwargs = dict(
            thread_counts=(4, 2),
            workload_kwargs={"scale": 0.02},
            num_nodes=2,
        )
        sequential = static_sweep("wordcount", **kwargs)
        parallel = static_sweep("wordcount", parallel=2, **kwargs)
        assert sorted(sequential) == sorted(parallel)
        for threads in sequential:
            assert sequential[threads].runtime == parallel[threads].runtime

    def test_derive_bestfit_accepts_summaries(self):
        sweep = static_sweep(
            "wordcount",
            thread_counts=(4, 2),
            workload_kwargs={"scale": 0.02},
            num_nodes=2,
            parallel=2,
        )
        sizes = derive_bestfit(sweep, default_threads=4)
        reference = next(iter(sweep.values()))
        assert sorted(sizes) == list(range(reference.num_stages))
        assert all(threads in (4, 2) for threads in sizes.values())

    def test_tracer_factory_incompatible_with_parallel(self):
        with pytest.raises(ValueError, match="tracer_factory"):
            static_sweep(
                "wordcount",
                thread_counts=(2,),
                tracer_factory=lambda threads: None,
                parallel=2,
            )

    def test_workload_object_incompatible_with_parallel(self):
        from repro.workloads import get_workload

        with pytest.raises(ValueError, match="workload name"):
            static_sweep(
                get_workload("wordcount", scale=0.02),
                thread_counts=(2,),
                parallel=2,
            )


class TestPoolContext:
    def test_fork_pinned_where_available(self):
        import multiprocessing

        from repro.harness.parallel import pool_context

        context = pool_context()
        if "fork" in multiprocessing.get_all_start_methods():
            assert context.get_start_method() == "fork"
        else:
            assert context.get_start_method() == "spawn"

    def test_spawn_fallback_warns(self, monkeypatch):
        import multiprocessing

        from repro.harness import parallel

        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return real_get_context(method)

        monkeypatch.setattr(parallel.multiprocessing, "get_context", no_fork)
        with pytest.warns(RuntimeWarning, match="falling back to 'spawn'"):
            context = parallel.pool_context()
        assert context.get_start_method() == "spawn"
