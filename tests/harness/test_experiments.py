"""Tests for the per-figure experiment protocols (at reduced scale)."""

import pytest

from repro.harness.experiments import (
    _hill_climb_selection,
    fig1_cpu_iowait,
    fig2_static_sweep,
    fig3_node_variability,
    fig7_from_runs,
    fig8_end_to_end,
    table1_parameters,
    table2_io_activity,
)
from repro.harness.runner import run_workload

SCALE = 0.05


class TestTableExperiments:
    def test_table1_matches_conf_registry(self):
        counts = table1_parameters()
        assert sum(counts.values()) == 117

    def test_table2_rows_complete(self):
        rows = table2_io_activity(scale=0.02)
        assert len(rows) == 9
        for row in rows:
            assert row["measured_amplification"] > 0
            assert row["paper_amplification"] > 1.0


class TestFigureProtocols:
    def test_fig1_covers_four_workloads(self):
        results = fig1_cpu_iowait(scale=SCALE)
        assert set(results) == {"aggregation", "join", "pagerank", "terasort"}
        for stages in results.values():
            for stage in stages:
                assert 0.0 <= stage["cpu_usage"] <= 1.0
                assert 0.0 <= stage["io_wait"] <= 1.0

    def test_fig2_sweep_structure(self):
        result = fig2_static_sweep("terasort", scale=SCALE)
        assert set(result["runs"]) == {32, 16, 8, 4, 2}
        assert len(result["bestfit_sizes"]) == 3
        assert result["bestfit"]["total"] > 0

    def test_fig3_shapes(self):
        rows = fig3_node_variability(num_nodes=6, gib=1.0)
        assert len(rows) == 6
        assert all(r["read_time"] > 0 and r["write_time"] > 0 for r in rows)

    def test_fig7_from_runs_reuses_runs(self):
        runs = {
            t: run_workload("terasort", policy=("fixed", t),
                            workload_kwargs={"scale": SCALE})
            for t in (2, 4, 8)
        }
        rows = fig7_from_runs(runs)
        assert len(rows) == 3
        for row in rows:
            assert set(row["series"]) == {2, 4, 8}
            assert row["selected"] in (2, 4, 8)

    def test_fig8_reductions_consistent(self):
        result = fig8_end_to_end("terasort", scale=SCALE)
        default_total = result["default"]["total"]
        assert result["reduction_dynamic"] == pytest.approx(
            1.0 - result["dynamic"]["total"] / default_total
        )
        assert result["reduction_bestfit"] == pytest.approx(
            1.0 - result["static_bestfit"]["total"] / default_total
        )


class TestHillClimbSelection:
    def series(self, zetas):
        return {t: {"congestion": z} for t, z in zetas.items()}

    def test_monotone_improvement_reaches_max(self):
        selection = _hill_climb_selection(
            self.series({2: 1.0, 4: 0.5, 8: 0.4, 16: 0.3, 32: 0.2})
        )
        assert selection == 32

    def test_blowup_rolls_back(self):
        selection = _hill_climb_selection(
            self.series({2: 1.0, 4: 0.5, 8: 0.6, 16: 6.0, 32: 20.0})
        )
        assert selection == 8

    def test_tolerance_permits_mild_growth(self):
        selection = _hill_climb_selection(
            self.series({2: 1.0, 4: 1.5, 8: 2.5}), tolerance=2.0
        )
        assert selection == 8

    def test_immediate_blowup_stays_at_cmin(self):
        selection = _hill_climb_selection(
            self.series({2: 1.0, 4: 5.0, 8: 0.1})
        )
        assert selection == 2


class TestSeedRobustness:
    """The dynamic solution's win must not hinge on one RNG draw."""

    @pytest.mark.parametrize("seed", [1, 17, 4242])
    def test_dynamic_beats_default_across_seeds(self, seed):
        default = run_workload("terasort", policy="default", seed=seed,
                               workload_kwargs={"scale": 0.1})
        dynamic = run_workload("terasort", policy="dynamic", seed=seed,
                               workload_kwargs={"scale": 0.1})
        assert dynamic.runtime < default.runtime * 0.9, seed
