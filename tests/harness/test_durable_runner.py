"""The crash-safe sweep runner: resume, retry, watchdog, quarantine."""

import multiprocessing
import os
import time

import pytest

import repro.harness.parallel as parallel_mod
from repro.engine.metrics import RunRecorder
from repro.harness.journal import SweepJournal, config_fingerprint
from repro.harness.parallel import (
    QuarantinedConfigError,
    RunConfig,
    RunSummary,
    SweepInterrupted,
    map_runs_durable,
    summary_to_doc,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker tests monkeypatch state inherited through fork",
)


def _configs(n=3):
    return [
        RunConfig(workload="wordcount", policy=("static", 2 ** i),
                  key=2 ** i, workload_kwargs={"scale": 0.02},
                  cluster_kwargs={"num_nodes": 2, "seed": 42})
        for i in range(n)
    ]


def _fake_summary(config):
    return RunSummary(workload=config.workload, key=config.key,
                      runtime=float(config.key), recorder=RunRecorder(),
                      cluster_io_bytes=1.5 * config.key)


class TestInProcessPath:
    def test_matches_map_runs(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "execute_run_config",
                            _fake_summary)
        configs = _configs()
        durable = map_runs_durable(configs)
        assert [summary_to_doc(s) for s in durable] == [
            summary_to_doc(_fake_summary(c)) for c in configs
        ]

    def test_stop_after_interrupts_with_progress_journaled(
            self, monkeypatch, tmp_path):
        monkeypatch.setattr(parallel_mod, "execute_run_config",
                            _fake_summary)
        configs = _configs()
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        with pytest.raises(SweepInterrupted) as info:
            map_runs_durable(configs, journal=journal, stop_after=2)
        assert info.value.completed == 2
        assert "--resume" in str(info.value)
        assert len(SweepJournal(journal.path)) == 2

    def test_resume_skips_journaled_points_identically(
            self, monkeypatch, tmp_path):
        calls = []

        def counting(config):
            calls.append(config.key)
            return _fake_summary(config)

        monkeypatch.setattr(parallel_mod, "execute_run_config", counting)
        configs = _configs()
        path = str(tmp_path / "sweep.journal")
        with pytest.raises(SweepInterrupted):
            map_runs_durable(configs, journal=SweepJournal(path),
                             stop_after=2)
        assert calls == [configs[0].key, configs[1].key]

        resumed = map_runs_durable(configs, journal=SweepJournal(path),
                                   resume=True)
        assert calls[2:] == [configs[2].key]  # only the missing point ran
        uninterrupted = [_fake_summary(c) for c in configs]
        assert ([summary_to_doc(s) for s in resumed]
                == [summary_to_doc(s) for s in uninterrupted])

    def test_transient_failure_retried_then_succeeds(self, monkeypatch):
        attempts = []

        def flaky(config):
            attempts.append(config.key)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return _fake_summary(config)

        monkeypatch.setattr(parallel_mod, "execute_run_config", flaky)
        [summary] = map_runs_durable(_configs(1), backoff=0.0)
        assert summary.key == 1
        assert len(attempts) == 2

    def test_persistent_failure_quarantines(self, monkeypatch, tmp_path):
        def broken(config):
            raise RuntimeError("always broken")

        monkeypatch.setattr(parallel_mod, "execute_run_config", broken)
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        with pytest.raises(QuarantinedConfigError) as info:
            map_runs_durable(_configs(1), journal=journal, max_attempts=2,
                             backoff=0.0)
        assert info.value.attempts == 2
        assert "always broken" in info.value.reason
        entry = journal.get_quarantine(config_fingerprint(_configs(1)[0]))
        assert entry["attempts"] == 2

    def test_allow_quarantine_leaves_a_none_slot(self, monkeypatch):
        def broken(config):
            raise RuntimeError("nope")

        monkeypatch.setattr(parallel_mod, "execute_run_config", broken)
        results = map_runs_durable(_configs(2), max_attempts=1, backoff=0.0,
                                   allow_quarantine=True)
        assert results == [None, None]

    def test_resume_refuses_quarantined_config(self, tmp_path):
        configs = _configs(1)
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        journal.record_quarantine(config_fingerprint(configs[0]),
                                  attempts=3, reason="kept hanging")
        with pytest.raises(QuarantinedConfigError):
            map_runs_durable(configs, journal=journal, resume=True)
        results = map_runs_durable(configs, journal=journal, resume=True,
                                   allow_quarantine=True)
        assert results == [None]

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            map_runs_durable(_configs(1), max_attempts=0)


@fork_only
class TestWorkerPool:
    """Forked workers inherit the monkeypatched module state, so a flag
    file lets the first attempt misbehave and the retry succeed."""

    def test_crashed_worker_is_retried(self, monkeypatch, tmp_path):
        flag = tmp_path / "crashed-once"

        def crash_once(config):
            if not flag.exists():
                flag.touch()
                os._exit(3)  # simulate a hard crash, no exception raised
            return _fake_summary(config)

        monkeypatch.setattr(parallel_mod, "execute_run_config", crash_once)
        [summary] = map_runs_durable(_configs(1), parallel=2, backoff=0.0)
        assert summary.key == 1
        assert flag.exists()

    def test_hung_worker_is_killed_and_retried(self, monkeypatch, tmp_path):
        flag = tmp_path / "hung-once"

        def hang_once(config):
            if not flag.exists():
                flag.touch()
                time.sleep(60.0)
            return _fake_summary(config)

        monkeypatch.setattr(parallel_mod, "execute_run_config", hang_once)
        start = time.monotonic()
        [summary] = map_runs_durable(_configs(1), parallel=1, timeout=1.0,
                                     backoff=0.0)
        assert summary.key == 1
        assert time.monotonic() - start < 30.0  # watchdog fired, not sleep

    def test_repeated_crash_quarantines(self, monkeypatch, tmp_path):
        def always_crash(config):
            os._exit(7)

        monkeypatch.setattr(parallel_mod, "execute_run_config",
                            always_crash)
        journal = SweepJournal(str(tmp_path / "sweep.journal"))
        with pytest.raises(QuarantinedConfigError) as info:
            map_runs_durable(_configs(1), parallel=2, journal=journal,
                             max_attempts=2, backoff=0.0)
        assert "exit code 7" in info.value.reason

    def test_pool_results_identical_to_in_process(self):
        configs = _configs(2)
        pooled = map_runs_durable(configs, parallel=2)
        sequential = map_runs_durable(configs)
        assert ([summary_to_doc(s) for s in pooled]
                == [summary_to_doc(s) for s in sequential])
