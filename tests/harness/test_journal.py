"""Sweep journal: atomic persistence, tolerant loading, exact resume."""

import json
import os

import pytest

from repro.atomicio import atomic_write_json, atomic_write_text
from repro.harness.journal import (
    JOURNAL_SCHEMA,
    JournalError,
    SweepJournal,
    config_fingerprint,
)
from repro.harness.parallel import (
    RunConfig,
    execute_run_config,
    summary_from_doc,
    summary_to_doc,
)

CONFIG = RunConfig(workload="wordcount", policy=("static", 4), key=4,
                   workload_kwargs={"scale": 0.02},
                   cluster_kwargs={"num_nodes": 2, "seed": 42})


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1})
        atomic_write_json(path, {"a": 2})
        with open(path) as handle:
            assert json.load(handle) == {"a": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "doc.txt")
        atomic_write_text(path, "hello\n")
        assert os.listdir(tmp_path) == ["doc.txt"]

    def test_failed_serialisation_leaves_target_untouched(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"a": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        with open(path) as handle:
            assert json.load(handle) == {"a": 1}
        assert os.listdir(tmp_path) == ["doc.json"]


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        other = RunConfig(workload="wordcount", policy=("static", 4), key=4,
                          workload_kwargs={"scale": 0.02},
                          cluster_kwargs={"num_nodes": 2, "seed": 42})
        assert config_fingerprint(CONFIG) == config_fingerprint(other)

    @pytest.mark.parametrize("field,value", [
        ("policy", ("static", 8)),
        ("workload_kwargs", {"scale": 0.05}),
        ("cluster_kwargs", {"num_nodes": 2, "seed": 43}),
        ("conf_overrides", {"spark.task.maxFailures": 2}),
        ("fault_plan_doc", {"schema": "repro.faults/1", "seed": 0}),
    ])
    def test_any_config_change_changes_the_fingerprint(self, field, value):
        import dataclasses

        changed = dataclasses.replace(CONFIG, **{field: value})
        assert config_fingerprint(changed) != config_fingerprint(CONFIG)


class TestSweepJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path)
        journal.record_run("f1", {"workload": "w", "key": 4})
        journal.record_quarantine("f2", attempts=3, reason="kept crashing")
        reloaded = SweepJournal(path)
        assert reloaded.get_run("f1") == {"workload": "w", "key": 4}
        assert reloaded.get_quarantine("f2")["attempts"] == 3
        assert len(reloaded) == 1

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "absent.journal"))
        assert len(journal) == 0

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path)
        journal.record_run("f1", {"key": 4})
        with open(path, "a") as handle:
            handle.write('{"kind": "run", "fingerprint": "f2", "summ')
        reloaded = SweepJournal(path)
        assert reloaded.get_run("f1") == {"key": 4}
        assert reloaded.get_run("f2") is None

    def test_corrupt_interior_line_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        lines = [
            json.dumps({"kind": "meta", "schema": JOURNAL_SCHEMA}),
            "not json at all",
            json.dumps({"kind": "run", "fingerprint": "f", "summary": {}}),
        ]
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            SweepJournal(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "meta", "schema": "other/9"}))
            handle.write("\n")
        with pytest.raises(JournalError):
            SweepJournal(path)

    def test_quarantine_cleared_by_later_success(self, tmp_path):
        path = str(tmp_path / "sweep.journal")
        journal = SweepJournal(path)
        journal.record_quarantine("f1", attempts=3, reason="flaky")
        journal.record_run("f1", {"key": 4})
        reloaded = SweepJournal(path)
        assert reloaded.get_quarantine("f1") is None
        assert reloaded.get_run("f1") == {"key": 4}


class TestSummarySerialisation:
    def test_summary_round_trips_exactly(self):
        summary = execute_run_config(CONFIG)
        doc = json.loads(json.dumps(summary_to_doc(summary)))
        rebuilt = summary_from_doc(doc)
        assert rebuilt.workload == summary.workload
        assert rebuilt.key == summary.key
        assert rebuilt.runtime == summary.runtime  # exact float round-trip
        assert rebuilt.stage_durations() == summary.stage_durations()
        assert rebuilt.cluster_io_bytes == summary.cluster_io_bytes
        assert (rebuilt.recorder.summary_dict()
                == summary.recorder.summary_dict())
