"""Service harness: runtime oracle, report assembly, and determinism."""

import json

import pytest

from repro.harness.service import (
    REPORT_SCHEMA,
    compute_runtimes,
    run_service,
    validate_report,
)
from repro.workloads.arrivals import (
    ArrivalPlan,
    JobTemplate,
    TenantSpec,
    poisson_plan,
    single_job_plan,
)


def small_plan(seed=0):
    """~10 jobs, one distinct template, sub-second to run."""
    return ArrivalPlan(
        seed=seed,
        horizon=400.0,
        tenants=(
            TenantSpec(
                name="a",
                process=("poisson", 0.02, 0.0, None),
                mix=(JobTemplate(workload="wordcount", scale=0.02),),
            ),
            TenantSpec(
                name="b",
                process=("trace", (0.0, 50.0, 100.0)),
                mix=(JobTemplate(workload="wordcount", scale=0.02),),
            ),
        ),
    )


class TestOracle:
    def test_replicas_share_one_engine_run(self):
        arrivals = small_plan().generate()
        assert len(arrivals) > 3
        runtimes, distinct = compute_runtimes(arrivals, cores=8, device="hdd")
        assert distinct == 1  # one template -> one inner run
        assert len(set(runtimes.values())) == 1
        assert all(value > 0 for value in runtimes.values())

    def test_distinct_templates_get_distinct_runs(self):
        plan = ArrivalPlan(
            tenants=(
                TenantSpec(
                    name="t",
                    process=("trace", (0.0, 1.0)),
                    mix=(JobTemplate(workload="wordcount", scale=0.02),),
                ),
                TenantSpec(
                    name="u",
                    process=("trace", (0.0,)),
                    mix=(JobTemplate(workload="wordcount", scale=0.04),),
                ),
            ),
        )
        arrivals = plan.generate()
        runtimes, distinct = compute_runtimes(arrivals, cores=8, device="hdd")
        assert distinct == 2
        assert len(set(runtimes.values())) == 2

    def test_per_job_events_suffix_paths(self, tmp_path):
        plan = ArrivalPlan(
            tenants=(
                TenantSpec(
                    name="t",
                    process=("trace", (0.0, 1.0)),
                    mix=(JobTemplate(workload="wordcount", scale=0.02),),
                ),
            ),
        )
        events = str(tmp_path / "out.jsonl")
        run_service(plan, total_nodes=2, cores=8, events_path=events)
        assert (tmp_path / "out.j0000.jsonl").exists()
        assert (tmp_path / "out.j0001.jsonl").exists()

    def test_single_job_events_use_exact_path(self, tmp_path):
        plan = single_job_plan(workload="wordcount", scale=0.02, slots=2)
        events = str(tmp_path / "out.jsonl")
        run_service(plan, total_nodes=2, cores=8, events_path=events)
        assert (tmp_path / "out.jsonl").exists()


class TestReport:
    def test_report_validates_and_conserves_jobs(self):
        report = run_service(small_plan(), total_nodes=2, cores=8,
                             discipline="fair")
        doc = report.to_dict()
        validate_report(doc)
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["totals"]["submitted"] == len(doc["jobs"])
        assert doc["totals"]["completed"] == len(doc["jobs"])
        assert 0.0 < doc["utilization"] <= 1.0
        assert doc["latency"]["job_latency"]["p99"] > 0

    def test_seed_override_changes_arrivals(self):
        base = run_service(small_plan(), total_nodes=2, cores=8).to_dict()
        reseeded = run_service(small_plan(), total_nodes=2, cores=8,
                               seed=99).to_dict()
        assert reseeded["seed"] == 99
        assert base["jobs"] != reseeded["jobs"]

    def test_report_save_round_trips(self, tmp_path):
        report = run_service(small_plan(), total_nodes=2, cores=8)
        path = tmp_path / "report.json"
        report.save(str(path))
        doc = json.loads(path.read_text())
        validate_report(doc)
        assert doc == json.loads(
            json.dumps(report.to_dict(), sort_keys=True))

    def test_validate_report_catches_violations(self):
        doc = run_service(small_plan(), total_nodes=2, cores=8).to_dict()
        broken = dict(doc)
        broken["totals"] = dict(doc["totals"], completed=0)
        with pytest.raises(ValueError, match="conservation"):
            validate_report(broken)
        with pytest.raises(ValueError, match="schema"):
            validate_report({"schema": "repro.trace/1"})


class TestDeterminism:
    def test_thousand_job_scenario_is_byte_identical(self, tmp_path):
        """The acceptance gate: >=1000 seeded jobs, fair scheduler, two
        full runs, byte-identical repro.service/1 reports (cheap because
        the oracle runs the engine once per distinct template)."""
        plan = poisson_plan(tenants=4, rate=0.7, horizon=400.0,
                            workloads=("wordcount", "terasort"), scale=0.02)

        def produce(path):
            report = run_service(plan, total_nodes=8, cores=8,
                                 discipline="fair")
            report.save(str(path))
            return report

        first = produce(tmp_path / "a.json")
        produce(tmp_path / "b.json")
        assert first.to_dict()["totals"]["submitted"] >= 1000
        assert (tmp_path / "a.json").read_bytes() == \
               (tmp_path / "b.json").read_bytes()

    def test_parallel_oracle_matches_sequential(self):
        plan = small_plan()
        sequential = run_service(plan, total_nodes=2, cores=8).to_dict()
        parallel = run_service(plan, total_nodes=2, cores=8,
                               parallel=2).to_dict()
        assert sequential == parallel
