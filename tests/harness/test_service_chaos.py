"""Service-layer chaos: report byte-identity, surges, recovery, validation.

End-to-end over :func:`run_service`: a cluster-scope fault plan must (a)
leave chaos-free reports and inner-engine event logs byte-identical to a
faultless serve, (b) produce byte-identical reports across re-runs at a
fixed seed, (c) draw its backoff/surge randomness from fault-plan streams
that never perturb the arrival plan's own draws, and (d) show recovery
after node loss with clean conservation, surfaced through the report's
``resilience`` section and the offline validator.
"""

import json

import pytest

from repro.faults.plan import (
    ClusterFaults,
    FaultPlan,
    NodeChurn,
    ProtectionConfig,
    node_churn_plan,
    surge_plan,
)
from repro.harness.service import run_service, validate_report
from repro.validation import ClusterInvariantMonitor, validate_service_report
from repro.workloads.arrivals import ArrivalPlan, JobTemplate, TenantSpec


def small_plan(seed=42, horizon=400.0, rate=0.05, tenants=2):
    return ArrivalPlan(
        tenants=tuple(
            TenantSpec(
                name=f"t{index}",
                mix=(JobTemplate(workload="terasort", scale=0.01),),
                process=("poisson", rate, 0.0, None),
                slots=1,
                weight=1.0,
            )
            for index in range(tenants)
        ),
        seed=seed,
        horizon=horizon,
    )


def dump(doc):
    return json.dumps(doc, indent=2, sort_keys=True)


class TestByteIdentity:
    def test_chaos_free_report_has_no_resilience_keys(self):
        doc = run_service(small_plan(), total_nodes=4).doc
        assert "resilience" not in doc
        assert "retries" not in doc["jobs"][0]

    def test_cluster_only_plan_leaves_report_shape_with_resilience(self):
        fault = node_churn_plan(node_id=3, at=1e6)  # never fires in-horizon
        doc = run_service(small_plan(), total_nodes=4,
                          fault_plan_doc=fault.to_dict()).doc
        base = run_service(small_plan(), total_nodes=4).doc
        assert "resilience" in doc
        # The schedule itself is untouched by a chaos plan that never fires.
        assert dump(doc["tenants"]) == dump(base["tenants"])
        assert doc["makespan_s"] == base["makespan_s"]

    def test_seeded_chaos_report_is_byte_identical_across_runs(self):
        fault = node_churn_plan(node_id=0, at=30.0, duration=60.0, seed=9)
        first = run_service(small_plan(), total_nodes=2, discipline="fair",
                            fault_plan_doc=fault.to_dict()).doc
        second = run_service(small_plan(), total_nodes=2, discipline="fair",
                             fault_plan_doc=fault.to_dict()).doc
        assert dump(first) == dump(second)

    def test_chaos_free_event_log_unchanged_by_cluster_plan(self, tmp_path):
        # A cluster-only fault plan must never reach the inner engine:
        # the per-job event log is byte-identical with and without it.
        plan = ArrivalPlan(
            tenants=(TenantSpec(
                name="t0",
                mix=(JobTemplate(workload="terasort", scale=0.01),),
                process=("trace", (0.0,)),
                slots=1, weight=1.0),),
            seed=1,
        )
        plain = tmp_path / "plain.jsonl"
        chaotic = tmp_path / "chaos.jsonl"
        run_service(plan, total_nodes=2, events_path=str(plain))
        fault = node_churn_plan(node_id=1, at=5.0, duration=10.0)
        run_service(plan, total_nodes=2, events_path=str(chaotic),
                    fault_plan_doc=fault.to_dict())
        assert plain.read_bytes() == chaotic.read_bytes()


class TestSurges:
    def test_surge_adds_arrivals_inside_window(self):
        base = run_service(small_plan(), total_nodes=8).doc
        fault = surge_plan(at=50.0, duration=200.0, factor=4.0, seed=2)
        surged = run_service(small_plan(), total_nodes=8,
                             fault_plan_doc=fault.to_dict()).doc
        assert surged["totals"]["submitted"] > base["totals"]["submitted"]

    def test_thinning_surge_removes_arrivals(self):
        base = run_service(small_plan(), total_nodes=8).doc
        fault = surge_plan(at=0.0, duration=400.0, factor=0.2, seed=2)
        thinned = run_service(small_plan(), total_nodes=8,
                              fault_plan_doc=fault.to_dict()).doc
        assert thinned["totals"]["submitted"] < base["totals"]["submitted"]

    def test_surge_draws_never_perturb_base_arrivals(self):
        # The surge's extra arrivals come from fault-plan streams; the
        # base arrivals (ids reassigned, same times) must be the subset
        # drawn by the arrival plan alone.
        plan = small_plan()
        base_times = sorted((a.time, a.tenant) for a in plan.generate())
        fault = surge_plan(at=100.0, duration=100.0, factor=3.0, seed=5)
        doc = run_service(plan, total_nodes=8,
                          fault_plan_doc=fault.to_dict()).doc
        surged_times = sorted(
            (row["arrival"], row["tenant"]) for row in doc["jobs"])
        for pair in base_times:
            assert pair in surged_times

    def test_chaos_seed_changes_surge_but_not_base(self):
        plan = small_plan()
        docs = []
        for chaos_seed in (1, 2):
            fault = surge_plan(at=100.0, duration=100.0, factor=3.0,
                               seed=chaos_seed)
            docs.append(run_service(plan, total_nodes=8,
                                    fault_plan_doc=fault.to_dict()).doc)
        base_times = {(a.time, a.tenant) for a in plan.generate()}
        for doc in docs:
            times = {(row["arrival"], row["tenant"]) for row in doc["jobs"]}
            assert base_times <= times
        assert (docs[0]["totals"]["submitted"]
                != docs[1]["totals"]["submitted"]) or (
            dump(docs[0]["jobs"]) != dump(docs[1]["jobs"]))


class TestRecovery:
    def test_node_loss_recovery_and_conservation(self):
        fault = FaultPlan(
            seed=3,
            cluster=ClusterFaults(
                node_churn=(NodeChurn(node_id=0, down_at=20.0,
                                      duration=120.0),),
                protection=ProtectionConfig(max_retries=3),
            ),
        )
        monitor = ClusterInvariantMonitor(mode="raise")
        report = run_service(small_plan(rate=0.1, horizon=300.0),
                             total_nodes=2, discipline="fair",
                             fault_plan_doc=fault.to_dict(),
                             monitor=monitor)
        doc = report.doc
        validate_report(doc)
        offline = validate_service_report(doc)
        assert offline.ok, offline.summary()
        totals = doc["totals"]
        resilience = doc["resilience"]
        # Recovery: every non-shed, non-aborted job completed.
        assert totals["completed"] == (totals["submitted"]
                                       - totals["rejected"]
                                       - resilience["aborted"])
        assert resilience["node_downtime_s"] == pytest.approx(120.0)
        assert set(resilience["availability"]) == {"t0", "t1"}
        assert monitor.report.checks_run > 0

    def test_mttr_recorded_when_victims_recover(self):
        # A dense single-slot scenario guarantees the downed node holds a
        # job; MTTR covers down -> victim terminal.
        plan = small_plan(rate=0.2, horizon=200.0, tenants=1)
        fault = FaultPlan(
            seed=4,
            cluster=ClusterFaults(
                node_churn=(NodeChurn(node_id=0, down_at=30.0,
                                      duration=60.0),),
                protection=ProtectionConfig(max_retries=5),
            ),
        )
        doc = run_service(plan, total_nodes=1,
                          fault_plan_doc=fault.to_dict()).doc
        resilience = doc["resilience"]
        assert resilience["retries"] >= 1
        episodes = resilience["mttr"]["episodes"]
        assert episodes and episodes[0]["mttr_s"] > 0
        assert resilience["mttr"]["summary"]["count"] == len(episodes)
        assert resilience["wasted_fault_slot_seconds"] > 0


class TestDegradedOracle:
    def test_degradation_prices_shrunken_grants_via_oracle(self):
        plan = ArrivalPlan(
            tenants=(TenantSpec(
                name="t0",
                mix=(JobTemplate(workload="terasort", scale=0.01),),
                process=("poisson", 0.2, 0.0, None),
                slots=2, weight=1.0),),
            seed=6,
            horizon=150.0,
        )
        fault = FaultPlan(
            seed=6,
            cluster=ClusterFaults(
                protection=ProtectionConfig(degrade_queue=2,
                                            degrade_factor=0.5),
            ),
        )
        doc = run_service(plan, total_nodes=2,
                          fault_plan_doc=fault.to_dict()).doc
        # Two oracle prices: full grant (2 slots) and degraded (1 slot).
        assert doc["totals"]["distinct_engine_runs"] == 2
        if doc["resilience"]["degraded_grants"]:
            degraded = [row for row in doc["jobs"]
                        if row["granted"] == 1 and row["end"] is not None]
            assert degraded


class TestReportValidation:
    def test_validate_report_rejects_bad_conservation(self):
        doc = run_service(small_plan(), total_nodes=4).doc
        doc["totals"]["completed"] += 1
        with pytest.raises(ValueError, match="conservation"):
            validate_report(doc)

    def test_validate_report_rejects_shed_mismatch(self):
        fault = node_churn_plan(node_id=0, at=30.0, duration=60.0)
        doc = run_service(small_plan(), total_nodes=2,
                          fault_plan_doc=fault.to_dict()).doc
        doc["resilience"]["shed"] = {"queue": 99}
        with pytest.raises(ValueError, match="shed"):
            validate_report(doc)
