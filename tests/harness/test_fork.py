"""Copy-on-write fork engine: determinism, divergences, and babysitting.

The contract under test (see ``repro.harness.fork``):

* forked children produce results **byte-identical** to from-scratch runs
  (the golden-log suite additionally diffs the event-log bytes);
* the what-if fork path and its sequential fallback are interchangeable;
* crashed / hung / silently-dying children are retried and quarantined
  with the same semantics as the durable runner.
"""

import os

import pytest

from repro.harness.fork import (
    CONTINUE,
    Alternative,
    AlternativeError,
    ForkBarrierNotReached,
    fork_available,
    fork_map,
    fork_map_runs,
    parse_alternative,
    run_whatif,
)
from repro.harness.parallel import (
    QuarantinedConfigError,
    RunConfig,
    map_runs,
)
from repro.simulation.randomness import RandomStreams

needs_fork = pytest.mark.skipif(not fork_available(),
                                reason="os.fork unavailable")

SCALE = 0.02
WK = {"scale": SCALE}


class _Item:
    def __init__(self, key):
        self.key = key


@needs_fork
class TestForkMap:
    def test_results_in_item_order(self):
        items = [_Item(i) for i in range(5)]
        results = fork_map(lambda item: item.key * 10, items)
        assert results == [0, 10, 20, 30, 40]

    def test_parallel_children(self):
        items = [_Item(i) for i in range(4)]
        results = fork_map(lambda item: item.key + 1, items, parallel=4)
        assert results == [1, 2, 3, 4]

    def test_large_payload_crosses_pipe(self):
        # Bigger than any pipe buffer: exercises the concurrent-drain
        # parent loop (a naive read-after-wait would deadlock here).
        blob = "x" * (4 << 20)
        [result] = fork_map(lambda item: blob, [_Item("big")])
        assert result == blob

    def test_crashing_child_quarantined(self):
        def child(item):
            raise RuntimeError("boom")

        with pytest.raises(QuarantinedConfigError, match="boom"):
            fork_map(child, [_Item("bad")], max_attempts=2, backoff=0.01)

    def test_allow_quarantine_yields_none_slot(self):
        def child(item):
            if item.key == 1:
                raise RuntimeError("boom")
            return item.key

        results = fork_map(child, [_Item(0), _Item(1), _Item(2)],
                           max_attempts=2, backoff=0.01,
                           allow_quarantine=True)
        assert results == [0, None, 2]

    def test_silent_death_counts_as_failure(self):
        def child(item):
            os._exit(3)  # dies without reporting a result

        with pytest.raises(QuarantinedConfigError, match="exit code 3"):
            fork_map(child, [_Item("dead")], max_attempts=2, backoff=0.01)

    def test_hung_child_killed_by_watchdog(self):
        import time

        def child(item):
            time.sleep(60)

        [result] = fork_map(child, [_Item("hung")], timeout=0.2,
                            max_attempts=1, allow_quarantine=True)
        assert result is None

    def test_retry_succeeds_after_transient_crash(self, tmp_path):
        # Deterministic "fails once, then works": the first attempt sees
        # no marker file, creates it, and dies; the retry sees it.
        marker = tmp_path / "attempted"

        def child(item):
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient")
            return "recovered"

        [result] = fork_map(child, [_Item("flaky")], max_attempts=3,
                            backoff=0.01)
        assert result == "recovered"


@needs_fork
class TestForkMapRuns:
    def _configs(self, **common):
        return [
            RunConfig(workload="terasort", policy=("static", threads),
                      key=threads, workload_kwargs=WK, **common)
            for threads in (32, 8, 2)
        ]

    def test_matches_map_runs_exactly(self):
        configs = self._configs()
        sequential = map_runs(configs, 1)
        forked = fork_map_runs(configs)
        for seq, fork in zip(sequential, forked):
            assert seq.key == fork.key
            assert seq.runtime == fork.runtime
            assert seq.recorder.to_dict() == fork.recorder.to_dict()

    def test_fault_divergence_matches(self):
        from repro.faults.plan import node_loss_plan

        doc = node_loss_plan(node_id=1, at=20.0).to_dict()
        configs = [
            RunConfig(workload="terasort", policy=("static", threads),
                      key=threads, workload_kwargs=WK, fault_plan_doc=doc)
            for threads in (32, 8)
        ]
        for seq, fork in zip(map_runs(configs, 1), fork_map_runs(configs)):
            assert seq.runtime == fork.runtime
            assert seq.recorder.to_dict() == fork.recorder.to_dict()

    def test_heterogeneous_prefix_rejected(self):
        configs = [
            RunConfig(workload="terasort", key=1, workload_kwargs=WK),
            RunConfig(workload="terasort", key=2,
                      workload_kwargs={"scale": SCALE * 2}),
        ]
        with pytest.raises(ValueError, match="share the run prefix"):
            fork_map_runs(configs)

    def test_child_writes_event_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configs = [RunConfig(workload="terasort", key="t", workload_kwargs=WK,
                             events_path=str(path))]
        fork_map_runs(configs)
        assert path.exists() and path.stat().st_size > 0


class TestParseAlternative:
    def test_specs(self):
        assert parse_alternative("continue").kind == "continue"
        alt = parse_alternative("pool=8")
        assert (alt.kind, alt.value) == ("pool", 8)
        alt = parse_alternative("policy=dynamic")
        assert (alt.kind, alt.value) == ("policy", "dynamic")
        alt = parse_alternative("policy=fixed:4")
        assert (alt.kind, alt.value) == ("policy", ("fixed", 4))
        alt = parse_alternative("conf:spark.reducer.maxSizeInFlight=16m")
        assert alt.kind == "conf"
        assert alt.value == {"spark.reducer.maxSizeInFlight": "16m"}
        assert parse_alternative("reseed").value is None
        assert parse_alternative("reseed=a").value == "a"

    @pytest.mark.parametrize("spec", ["pool=abc", "policy=fixed:x",
                                      "conf:noequals", "bogus", "pool"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(AlternativeError):
            parse_alternative(spec)


class TestWhatIf:
    ALTS = [
        Alternative(key="continue", kind="continue"),
        Alternative(key="pool=8", kind="pool", value=8),
        Alternative(key="policy=dynamic", kind="policy", value="dynamic"),
        Alternative(key="reseed", kind="reseed"),
    ]

    def test_sequential_baseline_matches_plain_run(self):
        from repro.harness.runner import run_workload

        report = run_whatif("terasort", at=15.0, alternatives=self.ALTS,
                            use_fork=False, workload_kwargs=WK)
        assert not report.forked
        plain = run_workload("terasort", workload_kwargs=WK)
        assert report.baseline.runtime == plain.runtime

    @needs_fork
    def test_forked_matches_sequential_exactly(self):
        forked = run_whatif("terasort", at=15.0, alternatives=self.ALTS,
                            use_fork=True, workload_kwargs=WK)
        sequential = run_whatif("terasort", at=15.0, alternatives=self.ALTS,
                                use_fork=False, workload_kwargs=WK)
        assert forked.forked and not sequential.forked
        for fork, seq in zip(forked.summaries, sequential.summaries):
            assert fork.key == seq.key
            assert fork.runtime == seq.runtime
            assert fork.recorder.to_dict() == seq.recorder.to_dict()

    def test_barrier_beyond_run_end_raises(self):
        with pytest.raises(ForkBarrierNotReached, match="beyond the end"):
            run_whatif("terasort", at=1e6, alternatives=self.ALTS[:1],
                       use_fork=False, workload_kwargs=WK)

    def test_reseed_decorrelates_futures(self):
        alts = [Alternative(key="continue", kind="continue"),
                Alternative(key="reseed=a", kind="reseed", value="a"),
                Alternative(key="reseed=b", kind="reseed", value="b")]
        report = run_whatif("terasort", at=15.0, alternatives=alts,
                            use_fork=False, workload_kwargs=WK)
        cont, a, b = report.summaries
        assert a.runtime != cont.runtime
        assert a.runtime != b.runtime

    def test_report_dict_shape(self):
        report = run_whatif("terasort", at=15.0, alternatives=self.ALTS[:2],
                            use_fork=False, workload_kwargs=WK)
        doc = report.to_dict()
        assert doc["schema"] == "repro.whatif/1"
        assert doc["at"] == 15.0
        keys = [row["key"] for row in doc["alternatives"]]
        assert keys == ["continue", "pool=8"]
        assert "vs_continue" in doc["alternatives"][1]


class TestPostForkReseeding:
    def test_same_key_reproducible(self):
        one, two = RandomStreams(7), RandomStreams(7)
        one.stream("disk").random()  # consume mid-sequence state
        two.stream("disk").random()
        one.reseed_for_fork("child")
        two.reseed_for_fork("child")
        assert one.stream("disk").random() == two.stream("disk").random()
        assert one.stream("net").random() == two.stream("net").random()

    def test_different_keys_decorrelate(self):
        one, two = RandomStreams(7), RandomStreams(7)
        one.reseed_for_fork("a")
        two.reseed_for_fork("b")
        assert one.stream("disk").random() != two.stream("disk").random()

    def test_no_reseed_continues_parent_sequence(self):
        parent, reference = RandomStreams(7), RandomStreams(7)
        draws = [parent.stream("disk").random() for _ in range(3)]
        expected = [reference.stream("disk").random() for _ in range(6)]
        assert draws == expected[:3]
        # A forked child that does NOT reseed just keeps drawing the
        # parent's sequence -- the property byte-identity relies on.
        assert [parent.stream("disk").random() for _ in range(3)] \
            == expected[3:]


class TestForkBarrier:
    def test_advances_clock_to_barrier(self):
        from repro.simulation.core import Simulator

        sim = Simulator()
        fired = []
        sim.call_at(5.0, lambda: fired.append(5))
        sim.call_at(20.0, lambda: fired.append(20))
        assert sim.fork_barrier(10.0)
        assert sim.now == 10.0
        assert fired == [5]
        sim.run()
        assert fired == [5, 20]

    def test_rejects_past_barrier(self):
        from repro.simulation.core import Simulator, SimulationError

        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="past"):
            sim.fork_barrier(1.0)

    def test_after_fork_runs_hooks(self):
        from repro.simulation.core import Simulator

        sim = Simulator()
        seen = []
        sim.on_fork(seen.append)
        sim.after_fork("child-1")
        assert seen == ["child-1"]
        assert sim.forked_from == "child-1"


class TestWhatIfCli:
    def test_table_and_report_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "whatif.json"
        code = main(["whatif", "terasort", "--at", "15", "--scale",
                     str(SCALE), "--alt", "pool=8", "--no-fork",
                     "--out", str(out)])
        assert code == 0
        shown = capsys.readouterr().out
        assert "continue" in shown and "pool=8" in shown
        assert out.exists()

    @needs_fork
    def test_json_output(self, capsys):
        import json

        from repro.cli import main

        code = main(["whatif", "terasort", "--at", "15", "--scale",
                     str(SCALE), "--alt", "policy=dynamic", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["forked"] is fork_available()
        assert [row["key"] for row in doc["alternatives"]] \
            == ["continue", "policy=dynamic"]

    def test_bad_alternative_exits_cleanly(self, capsys):
        from repro.cli import main

        code = main(["whatif", "terasort", "--at", "15", "--scale",
                     str(SCALE), "--alt", "bogus-spec"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_barrier_past_end_exits_cleanly(self, capsys):
        from repro.cli import main

        code = main(["whatif", "terasort", "--at", "999999", "--scale",
                     str(SCALE), "--no-fork"])
        assert code == 1
        assert "beyond the end" in capsys.readouterr().err
