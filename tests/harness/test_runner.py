"""Tests for the experiment runner and reporting helpers."""

import os

import pytest

from repro.adaptive import AdaptivePolicy, BestFitPolicy, StaticIOPolicy
from repro.engine.policy import DefaultPolicy, FixedPolicy
from repro.harness import (
    build_cluster,
    build_context,
    derive_bestfit,
    make_policy_factory,
    render_series,
    render_table,
    run_workload,
    static_sweep,
    write_result,
)


class TestPolicyFactory:
    def test_default(self):
        assert isinstance(make_policy_factory("default")(None), DefaultPolicy)

    def test_dynamic(self):
        assert isinstance(make_policy_factory("dynamic")(None), AdaptivePolicy)

    def test_fixed(self):
        policy = make_policy_factory(("fixed", 4))(None)
        assert isinstance(policy, FixedPolicy)
        assert policy.size == 4

    def test_static(self):
        policy = make_policy_factory(("static", 8))(None)
        assert isinstance(policy, StaticIOPolicy)

    def test_bestfit(self):
        policy = make_policy_factory(("bestfit", {0: 4}))(None)
        assert isinstance(policy, BestFitPolicy)
        assert policy.stage_sizes == {0: 4}

    def test_dynamic_with_kwargs(self):
        policy = make_policy_factory(("dynamic", {"cmin": 4}))(None)
        assert isinstance(policy, AdaptivePolicy)

    def test_callable_spec(self):
        policy = make_policy_factory(lambda: FixedPolicy(2))(None)
        assert isinstance(policy, FixedPolicy)

    def test_factories_produce_fresh_instances(self):
        factory = make_policy_factory("dynamic")
        assert factory(None) is not factory(None)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            make_policy_factory("turbo")
        with pytest.raises(ValueError):
            make_policy_factory(("fixed", 1, 2))


class TestClusterBuilding:
    def test_das5_defaults(self):
        cluster = build_cluster()
        assert cluster.num_nodes == 4
        assert cluster.total_cores == 128
        assert cluster.nodes[0].disk.profile.name == "hdd"

    def test_ssd_device(self):
        cluster = build_cluster(device="ssd", num_nodes=2)
        assert cluster.nodes[0].disk.profile.name == "ssd"

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            build_cluster(device="tape")

    def test_context_and_cluster_kwargs_exclusive(self):
        cluster = build_cluster(num_nodes=2)
        with pytest.raises(ValueError):
            build_context(cluster=cluster, num_nodes=4)


class TestRunWorkload:
    def test_runs_by_name_with_scale(self):
        run = run_workload("wordcount", policy="default", num_nodes=2,
                           cores=4, workload_kwargs={"scale": 0.02})
        assert run.workload == "wordcount"
        assert run.runtime > 0

    def test_conf_overrides_applied(self):
        run = run_workload(
            "wordcount",
            policy="default",
            num_nodes=2,
            cores=4,
            workload_kwargs={"scale": 0.02},
            conf_overrides={"repro.output.replication": 2},
        )
        assert run.ctx.conf.get("repro.output.replication") == 2


class TestSweepAndBestfit:
    @pytest.fixture(scope="class")
    def sweep(self):
        return static_sweep(
            "terasort",
            thread_counts=(4, 2),
            num_nodes=2,
            cores=4,
            workload_kwargs={"scale": 0.02},
        )

    def test_sweep_runs_each_setting(self, sweep):
        assert set(sweep) == {4, 2}
        for run in sweep.values():
            assert run.num_stages == 3

    def test_derive_bestfit_chooses_minimum(self, sweep):
        sizes = derive_bestfit(sweep, default_threads=4)
        for ordinal, threads in sizes.items():
            durations = {t: sweep[t].stages[ordinal].duration for t in sweep}
            assert threads == min(durations, key=durations.get)

    def test_tie_break_prefers_smaller_pool(self):
        class FakeStage:
            def __init__(self, duration, io=True):
                self.duration = duration
                self.is_io_marked = io

        class FakeRun:
            def __init__(self, *durations):
                self.stages = [FakeStage(d) for d in durations]

        # All counts tie on stage 0; stage 1 has a strict winner.  Insertion
        # order is deliberately scrambled: the tie-break must depend on the
        # thread counts, not on whichever entry was inserted first.
        sweep = {8: FakeRun(5.0, 9.0), 2: FakeRun(5.0, 7.0),
                 4: FakeRun(5.0, 3.0)}
        sizes = derive_bestfit(sweep, default_threads=8)
        assert sizes == {0: 2, 1: 4}

    def test_non_io_stages_pinned_to_default(self):
        sweep = static_sweep(
            "pagerank",
            thread_counts=(4, 2),
            num_nodes=2,
            cores=4,
            workload_kwargs={"scale": 0.02, "iterations": 2},
        )
        sizes = derive_bestfit(sweep, default_threads=4)
        # Iteration stages are not I/O-marked: static BestFit cannot tune
        # them (the paper's L2), so they stay at the default.
        for middle in range(1, len(sizes) - 1):
            assert sizes[middle] == 4


class TestReporting:
    def test_render_table_alignment(self):
        table = render_table(["a", "long header"], [[1, 2.5], ["xy", 10000.0]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines[1:])) <= 2

    def test_render_table_with_title(self):
        table = render_table(["x"], [[1]], title="My Title")
        assert table.startswith("My Title")

    def test_render_series_sparkline(self):
        series = render_series("tp", [(0, 1.0), (1, 5.0), (2, 10.0)])
        assert "tp" in series
        assert "max=10" in series

    def test_render_series_empty_values(self):
        assert "empty" in render_series("x", [])

    def test_write_result_creates_file(self, tmp_path):
        path = write_result("unit", "content", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "content\n"
