"""Integration tests for the three pool-size policies on the live engine."""

import pytest

from repro.adaptive import AdaptivePolicy, BestFitPolicy, StaticIOPolicy
from repro.engine import SparkConf
from tests.engine.conftest import make_context

MB = 1024.0**2


def shuffle_job(ctx, partitions=8):
    """textFile -> shuffle -> save: one I/O stage, one shuffle+save stage."""
    rdd = ctx.text_file("/in", partitions).map(lambda x: (x, 1)).reduce_by_key(
        lambda a, b: a + b, partitions
    )
    rdd.save_as_text_file("/out")
    return ctx


def make_ctx(policy_factory, conf=None, cores=8):
    ctx = make_context(num_nodes=2, cores=cores, conf=conf,
                       policy_factory=policy_factory)
    ctx.register_synthetic_file("/in", 256 * MB, num_records=2e5)
    return ctx


class TestStaticIOPolicy:
    def test_io_stages_get_configured_threads(self):
        ctx = make_ctx(lambda ex: StaticIOPolicy(2))
        shuffle_job(ctx, 16)
        read_stage, save_stage = ctx.recorder.stages
        assert read_stage.is_io_marked
        assert save_stage.is_io_marked  # saveAsTextFile marks it
        assert all(m.pool_size_at_launch == 2 for m in read_stage.tasks)
        assert all(m.pool_size_at_launch == 2 for m in save_stage.tasks)

    def test_non_io_stages_keep_default(self):
        ctx = make_ctx(lambda ex: StaticIOPolicy(2))
        # shuffle -> count: the reduce stage has no explicit I/O markers.
        rdd = ctx.text_file("/in", 8).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 8
        )
        rdd.count()
        reduce_stage = ctx.recorder.stages[1]
        assert not reduce_stage.is_io_marked
        assert all(m.pool_size_at_launch == 8 for m in reduce_stage.tasks)

    def test_threads_default_from_conf(self):
        conf = SparkConf({"repro.static.io.threads": 4})
        ctx = make_ctx(lambda ex: StaticIOPolicy(), conf=conf)
        shuffle_job(ctx)
        read_stage = ctx.recorder.stages[0]
        assert all(m.pool_size_at_launch == 4 for m in read_stage.tasks)

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            StaticIOPolicy(0)


class TestBestFitPolicy:
    def test_per_stage_ordinal_sizes(self):
        ctx = make_ctx(lambda ex: BestFitPolicy({0: 2, 1: 4}))
        shuffle_job(ctx, 16)
        first, second = ctx.recorder.stages
        assert all(m.pool_size_at_launch == 2 for m in first.tasks)
        assert all(m.pool_size_at_launch == 4 for m in second.tasks)

    def test_unmapped_stage_uses_default(self):
        ctx = make_ctx(lambda ex: BestFitPolicy({0: 2}), cores=8)
        shuffle_job(ctx, 16)
        second = ctx.recorder.stages[1]
        assert all(m.pool_size_at_launch == 8 for m in second.tasks)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BestFitPolicy({0: -1})


class TestAdaptivePolicy:
    def test_starts_at_cmin(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy(cmin=2))
        shuffle_job(ctx, 64)
        first_stage = ctx.recorder.stages[0]
        start_events = [e for e in first_stage.pool_events
                        if e.reason == "stage-start"]
        assert all(e.pool_size == 2 for e in start_events)

    def test_climbs_beyond_cmin(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy())
        shuffle_job(ctx, 64)
        stage = ctx.recorder.stages[0]
        assert max(e.pool_size for e in stage.pool_events) > 2

    def test_intervals_recorded_with_sensor_data(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy())
        shuffle_job(ctx, 64)
        stage = ctx.recorder.stages[0]
        assert stage.intervals
        for interval in stage.intervals:
            assert interval.threads >= 2
            assert interval.duration > 0
            assert interval.decision in ("climb", "rollback", "reached-cmax")

    def test_interval_thread_sequence_doubles(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy())
        shuffle_job(ctx, 64)
        stage = ctx.recorder.stages[0]
        for executor_id in (0, 1):
            threads = [iv.threads for iv in stage.intervals
                       if iv.executor_id == executor_id]
            for previous, current in zip(threads, threads[1:]):
                assert current == previous * 2

    def test_respects_cmax(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy(cmin=2, cmax=4))
        shuffle_job(ctx, 64)
        for stage in ctx.recorder.stages:
            assert all(e.pool_size <= 4 for e in stage.pool_events)

    def test_each_stage_restarts_the_climb(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy())
        shuffle_job(ctx, 64)
        for stage in ctx.recorder.stages:
            starts = [e for e in stage.pool_events if e.reason == "stage-start"]
            assert all(e.pool_size == 2 for e in starts)

    def test_driver_view_follows_resizes(self):
        ctx = make_ctx(lambda ex: AdaptivePolicy())
        shuffle_job(ctx, 64)
        for ex in ctx.executors:
            assert (
                ctx.scheduler.registered_pool_size(ex.executor_id)
                == ex.pool_size
            )

    def test_invalid_bounds_rejected(self):
        from repro.adaptive.mapek import AdaptiveControlLoop

        ctx = make_ctx(lambda ex: AdaptivePolicy())
        with pytest.raises(ValueError):
            AdaptiveControlLoop(ctx.executors[0], object(), cmin=0, cmax=4)
        with pytest.raises(ValueError):
            AdaptiveControlLoop(ctx.executors[0], object(), cmin=8, cmax=4)

    def test_conf_controls_bounds(self):
        conf = SparkConf({"repro.adaptive.cmin": 4, "repro.adaptive.cmax": 4})
        ctx = make_ctx(lambda ex: AdaptivePolicy(), conf=conf)
        shuffle_job(ctx, 64)
        stage = ctx.recorder.stages[0]
        assert all(e.pool_size == 4 for e in stage.pool_events)
