"""Unit tests for the MAPE-K roles (paper section 5)."""

import pytest

from repro.adaptive.mapek import (
    Analyzer,
    Decision,
    IntervalResult,
    KnowledgeBase,
    Phase,
    Planner,
    congestion_index,
)
from repro.monitoring.strace import EpollReading


def reading(wait, io_bytes, tasks=4, elapsed=10.0):
    return EpollReading(
        epoll_wait_seconds=wait, io_bytes=io_bytes,
        tasks_completed=tasks, elapsed=elapsed,
    )


class TestCongestionIndex:
    def test_zeta_is_mean_wait_over_throughput(self):
        r = reading(wait=8.0, io_bytes=100.0, tasks=4, elapsed=10.0)
        # mean wait 2.0s, throughput 10 B/s -> zeta 0.2
        assert congestion_index(r) == pytest.approx(0.2)

    def test_zero_io_means_zero_congestion(self):
        assert congestion_index(reading(wait=0.0, io_bytes=0.0)) == 0.0

    def test_wait_without_throughput_is_infinite(self):
        assert congestion_index(reading(wait=5.0, io_bytes=0.0)) == float("inf")

    def test_more_wait_same_throughput_is_worse(self):
        low = congestion_index(reading(wait=1.0, io_bytes=100.0))
        high = congestion_index(reading(wait=9.0, io_bytes=100.0))
        assert high > low

    def test_more_throughput_same_wait_is_better(self):
        slow = congestion_index(reading(wait=4.0, io_bytes=50.0))
        fast = congestion_index(reading(wait=4.0, io_bytes=500.0))
        assert fast < slow


class TestKnowledgeBase:
    def test_history_records(self):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=2)
        assert kb.previous is None
        kb.record(IntervalResult(2, reading(1, 10), 0.5))
        assert kb.previous.threads == 2


class TestAnalyzer:
    def make(self, tolerance=2.0):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=2)
        return kb, Analyzer(kb, tolerance=tolerance)

    def test_first_interval_always_climbs(self):
        kb, analyzer = self.make()
        decision = analyzer.analyze(reading(1.0, 100.0, tasks=2))
        assert decision == Decision(4, settled=False, reason="climb")

    def test_doubling_until_cmax(self):
        kb, analyzer = self.make()
        for expected in (4, 8, 16, 32):
            decision = analyzer.analyze(
                reading(0.1, 1000.0, tasks=kb.current_threads)
            )
            assert decision.threads == expected
            kb.current_threads = decision.threads
        final = analyzer.analyze(reading(0.1, 1000.0, tasks=32))
        assert final.settled
        assert final.reason == "reached-cmax"
        assert final.threads == 32

    def test_rollback_on_congestion_blowup(self):
        kb, analyzer = self.make(tolerance=2.0)
        analyzer.analyze(reading(1.0, 100.0, tasks=2))   # zeta = 0.05
        kb.current_threads = 4
        decision = analyzer.analyze(reading(8.0, 150.0, tasks=4))  # zeta ~ 0.13
        assert decision.settled
        assert decision.reason == "rollback"
        assert decision.threads == 2  # back to the previous interval's size

    def test_tolerance_permits_mild_growth(self):
        kb, analyzer = self.make(tolerance=2.0)
        analyzer.analyze(reading(1.0, 100.0, tasks=2))      # zeta = 0.05
        kb.current_threads = 4
        decision = analyzer.analyze(reading(3.0, 100.0, tasks=4))  # zeta 0.075
        assert not decision.settled
        assert decision.threads == 8

    def test_tolerance_below_one_rejected(self):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=2)
        with pytest.raises(ValueError):
            Analyzer(kb, tolerance=0.5)

    def test_cmax_not_exceeded_by_doubling(self):
        kb = KnowledgeBase(cmin=2, cmax=12, current_threads=8)
        analyzer = Analyzer(kb)
        decision = analyzer.analyze(reading(0.1, 1000.0, tasks=8))
        assert decision.threads == 12


class TestPlanner:
    def test_resize_plan_notifies_scheduler(self):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=2)
        planner = Planner(kb)
        plan = planner.plan(Decision(4, settled=False, reason="climb"))
        assert plan.resize_to == 4
        assert plan.notify_scheduler

    def test_no_change_no_notification(self):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=32)
        planner = Planner(kb)
        plan = planner.plan(Decision(32, settled=True, reason="reached-cmax"))
        assert plan.resize_to is None
        assert not plan.notify_scheduler
        assert kb.phase is Phase.SETTLED

    def test_settling_freezes_phase(self):
        kb = KnowledgeBase(cmin=2, cmax=32, current_threads=8)
        planner = Planner(kb)
        planner.plan(Decision(4, settled=True, reason="rollback"))
        assert kb.phase is Phase.SETTLED
