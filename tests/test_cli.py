"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _suffix_path, _thread_counts, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "terasort"])
        assert args.policy == "default"
        assert args.nodes == 4
        assert args.device == "hdd"
        assert args.scale == 1.0

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "pagerank", "--policy", "dynamic", "--scale", "0.1",
             "--nodes", "2", "--device", "ssd"]
        )
        assert args.policy == "dynamic"
        assert args.scale == 0.1
        assert args.nodes == 2
        assert args.device == "ssd"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "hive"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("terasort", "pagerank", "aggregation", "join", "svm"):
            assert name in out

    def test_run_small_workload(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated seconds" in out
        assert "stage" in out

    def test_run_with_fixed_policy(self, capsys):
        code = main(
            ["run", "wordcount", "--scale", "0.02", "--nodes", "2",
             "--policy", "fixed", "--threads", "2"]
        )
        assert code == 0
        assert "2" in capsys.readouterr().out

    def test_sweep_outputs_bestfit(self, capsys):
        code = main(["sweep", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BestFit" in out
        assert "threads" in out

    def test_compare_outputs_three_systems(self, capsys):
        code = main(["compare", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "default" in out
        assert "static bestfit" in out
        assert "self-adaptive" in out

    def test_compare_respects_cores(self, capsys):
        # The baseline is the sweep's top count, not a hardcoded 32.
        code = main(["compare", "wordcount", "--scale", "0.02",
                     "--nodes", "2", "--cores", "8", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cores"] == 8
        assert doc["systems"]["default"]["reduction_vs_default"] is None


class TestHelpers:
    def test_thread_counts_halve_down_to_two(self):
        assert _thread_counts(32) == (32, 16, 8, 4, 2)
        assert _thread_counts(8) == (8, 4, 2)
        assert _thread_counts(6) == (6, 3)

    def test_thread_counts_single_core(self):
        assert _thread_counts(1) == (1,)

    def test_thread_counts_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            _thread_counts(0)

    def test_suffix_path(self):
        assert _suffix_path("out.jsonl", "t8") == "out.t8.jsonl"
        assert _suffix_path("trace", "dynamic") == "trace.dynamic"


class TestJsonMode:
    def test_run_json_round_trips(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["command"] == "run"
        assert doc["workload"] == "wordcount"
        assert doc["runtime"] > 0
        for stage in doc["stages"]:
            assert stage["duration"] >= 0
            assert stage["final_pool_sizes"]
        # Round trip: serialising again yields the same document.
        assert json.loads(json.dumps(doc)) == doc

    def test_sweep_json(self, capsys):
        code = main(["sweep", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--cores", "4", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["thread_counts"] == [4, 2]
        assert set(doc["runs"]) == {"4", "2"}
        assert doc["bestfit"]


class TestTracingFlags:
    def test_run_writes_event_log_and_chrome_trace(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        trace = tmp_path / "run.trace.json"
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events), "--trace", str(trace)])
        assert code == 0
        assert events.exists() and trace.exists()
        first = json.loads(events.read_text().splitlines()[0])
        assert first["kind"] == "meta"
        chrome = json.loads(trace.read_text())
        assert chrome["traceEvents"]

    def test_sweep_writes_per_run_logs(self, tmp_path, capsys):
        events = tmp_path / "sweep.jsonl"
        code = main(["sweep", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--cores", "4", "--events", str(events)])
        assert code == 0
        assert (tmp_path / "sweep.t4.jsonl").exists()
        assert (tmp_path / "sweep.t2.jsonl").exists()

    def test_compare_writes_labelled_logs(self, tmp_path, capsys):
        events = tmp_path / "cmp.jsonl"
        code = main(["compare", "wordcount", "--scale", "0.02",
                     "--nodes", "2", "--cores", "4",
                     "--events", str(events)])
        assert code == 0
        for suffix in ("t4", "t2", "bestfit", "dynamic"):
            assert (tmp_path / f"cmp.{suffix}.jsonl").exists()


class TestHistoryCommand:
    def test_history_matches_live_run(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--policy", "dynamic", "--events", str(events),
                     "--json"]) == 0
        live = json.loads(capsys.readouterr().out)
        assert main(["history", str(events), "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["total_runtime"] == live["runtime"]
        assert [s["duration"] for s in replayed["stages"]] == [
            s["duration"] for s in live["stages"]
        ]
        assert [s["final_pool_sizes"] for s in replayed["stages"]] == [
            s["final_pool_sizes"] for s in live["stages"]
        ]

    def test_history_table_output(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events)]) == 0
        capsys.readouterr()
        assert main(["history", str(events)]) == 0
        out = capsys.readouterr().out
        assert "total runtime" in out
        assert "stage" in out

    def test_history_missing_file_errors(self, tmp_path, capsys):
        code = main(["history", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_history_wrong_format_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "not-a-log.json"
        path.write_text('{"traceEvents": []}\n')
        code = main(["history", str(path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_history_tolerates_truncated_log(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events)]) == 0
        capsys.readouterr()
        lines = events.read_text().splitlines(keepends=True)
        # Chop mid-run, leaving a torn final line: a crashed writer's log.
        truncated = tmp_path / "crashed.jsonl"
        truncated.write_text("".join(lines[:len(lines) // 2]) + '{"ts": 9')
        assert main(["history", str(truncated)]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err
        assert "never ended" in captured.err
        assert "total runtime" in captured.out


class TestProfileCommand:
    def test_offline_profile_matches_live(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        live = tmp_path / "live.json"
        offline = tmp_path / "offline.json"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events), "--profile", str(live)]) == 0
        capsys.readouterr()
        assert main(["profile", str(events), "--out", str(offline)]) == 0
        assert live.read_bytes() == offline.read_bytes()
        doc = json.loads(live.read_text())
        assert doc["schema"] == "repro.profile/1"
        assert doc["stages"] and doc["nodes"]

    def test_profile_text_report(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events), "--profile",
                     str(tmp_path / "p.json")]) == 0
        capsys.readouterr()
        assert main(["profile", str(events)]) == 0
        out = capsys.readouterr().out
        assert "demand profile" in out
        assert "distributions" in out
        assert "executors" in out

    def test_profile_json_mode(self, tmp_path, capsys):
        events = tmp_path / "run.jsonl"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events)]) == 0
        capsys.readouterr()
        assert main(["profile", str(events), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.profile/1"
        # Recorded without profiling: spans still profile, no node series.
        assert doc["stages"] and doc["nodes"] == []

    def test_profile_writes_counter_tracks(self, tmp_path, capsys):
        from repro.observability.chrome import validate_chrome_trace

        events = tmp_path / "run.jsonl"
        tracks = tmp_path / "tracks.json"
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", str(events), "--profile",
                     str(tmp_path / "p.json")]) == 0
        assert main(["profile", str(events), "--trace", str(tracks)]) == 0
        assert validate_chrome_trace(str(tracks)) > 0

    def test_profile_missing_file_errors(self, tmp_path, capsys):
        code = main(["profile", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_sweep_profile_one_file_per_point(self, tmp_path, capsys):
        profile = tmp_path / "sweep.json"
        assert main(["sweep", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--cores", "4", "--profile", str(profile)]) == 0
        for threads in (4, 2):
            path = tmp_path / f"sweep.t{threads}.json"
            assert path.exists()
            assert json.loads(path.read_text())["schema"] == "repro.profile/1"


class TestBadInputs:
    def test_cores_zero_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "wordcount", "--cores", "0"])

    def test_unwritable_events_path_errors_cleanly(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--events", "/no/such/dir/x.jsonl"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestServe:
    def _plan(self, tmp_path, extra=()):
        path = str(tmp_path / "plan.json")
        assert main(["arrivals", "generate", "poisson", "--tenants", "2",
                     "--rate", "0.01", "--horizon", "500",
                     "--workload", "wordcount", "--scale", "0.02",
                     "--out", path, *extra]) == 0
        return path

    def test_arrivals_generate_and_show(self, tmp_path, capsys):
        path = self._plan(tmp_path)
        capsys.readouterr()
        assert main(["arrivals", "show", path]) == 0
        out = capsys.readouterr().out
        assert "valid arrival plan" in out
        assert "tenant0" in out

    def test_arrivals_generate_stdout_is_valid_plan(self, capsys):
        from repro.workloads.arrivals import ArrivalPlan

        assert main(["arrivals", "generate", "single",
                     "--workload", "wordcount", "--scale", "0.02"]) == 0
        plan = ArrivalPlan.from_json(capsys.readouterr().out)
        assert len(plan.generate()) == 1

    def test_arrivals_show_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["arrivals", "show", str(tmp_path / "no.json")]) == 2
        assert "invalid arrival plan" in capsys.readouterr().err

    def test_serve_text_report(self, tmp_path, capsys):
        path = self._plan(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--plan", path, "--scheduler", "fair",
                     "--nodes", "2", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "serve:" in out
        assert "makespan" in out
        assert "tenant0" in out

    def test_serve_json_and_out_agree(self, tmp_path, capsys):
        path = self._plan(tmp_path)
        report = tmp_path / "report.json"
        capsys.readouterr()
        assert main(["serve", "--plan", path, "--nodes", "2", "--cores", "8",
                     "--json", "--out", str(report)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.service/1"
        assert json.loads(report.read_text()) == doc

    def test_serve_seed_override_is_deterministic(self, tmp_path, capsys):
        path = self._plan(tmp_path)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            assert main(["serve", "--plan", path, "--nodes", "2",
                         "--cores", "8", "--seed", "7",
                         "--out", str(out)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        assert json.loads(a.read_text())["seed"] == 7

    def test_serve_max_queue_rejects(self, tmp_path, capsys):
        path = self._plan(tmp_path)
        capsys.readouterr()
        assert main(["serve", "--plan", path, "--nodes", "2", "--cores", "8",
                     "--max-queue", "0", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["rejected"] == doc["totals"]["submitted"]

    def test_serve_missing_plan_exits_2(self, tmp_path, capsys):
        assert main(["serve", "--plan", str(tmp_path / "no.json")]) == 2
        assert "invalid arrival plan" in capsys.readouterr().err

    def test_serve_bad_plan_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.arrivals/1", "tenants": []}')
        assert main(["serve", "--plan", str(bad)]) == 2
        assert "invalid arrival plan" in capsys.readouterr().err

    def test_serve_single_job_events_match_repro_run(self, tmp_path, capsys):
        """The degenerate single-tenant serve is exactly `repro run`."""
        plan = str(tmp_path / "single.json")
        assert main(["arrivals", "generate", "single",
                     "--workload", "wordcount", "--scale", "0.02",
                     "--slots", "2", "--out", plan]) == 0
        serve_log = tmp_path / "serve.jsonl"
        run_log = tmp_path / "run.jsonl"
        assert main(["serve", "--plan", plan, "--nodes", "2", "--cores", "8",
                     "--events", str(serve_log)]) == 0
        assert main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--cores", "8", "--events", str(run_log)]) == 0
        capsys.readouterr()
        assert serve_log.read_bytes() == run_log.read_bytes()


class TestChaosCommand:
    def _plan(self, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(["arrivals", "generate", "poisson", "--tenants", "2",
                     "--rate", "0.02", "--horizon", "400",
                     "--workload", "wordcount", "--scale", "0.02",
                     "--out", path]) == 0
        return path

    def test_chaos_generate_stdout_is_valid_v2_plan(self, capsys):
        from repro.faults.plan import PLAN_SCHEMA_V2, FaultPlan

        assert main(["chaos", "generate", "node-churn", "--node", "1",
                     "--at", "50", "--duration", "100"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == PLAN_SCHEMA_V2
        plan = FaultPlan.from_dict(doc)
        assert plan.cluster.node_churn[0].node_id == 1

    def test_chaos_generate_protection_overrides(self, capsys):
        assert main(["chaos", "generate", "overload", "--retries", "5",
                     "--deadline", "90", "--max-queue", "7"]) == 0
        doc = json.loads(capsys.readouterr().out)
        protection = doc["cluster"]["protection"]
        assert protection["max_retries"] == 5
        assert protection["deadline"] == 90.0
        assert protection["max_queue"] == 7

    def test_chaos_show_summarises_cluster_scope(self, tmp_path, capsys):
        path = str(tmp_path / "chaos.json")
        assert main(["chaos", "generate", "overload", "--out", path]) == 0
        capsys.readouterr()
        assert main(["chaos", "show", path]) == 0
        out = capsys.readouterr().out
        assert "node-churn" in out
        assert "surge" in out
        assert "protection" in out

    def test_chaos_show_engine_only_plan(self, tmp_path, capsys):
        path = str(tmp_path / "engine.json")
        assert main(["faults", "generate", "node-loss", "--out", path]) == 0
        capsys.readouterr()
        assert main(["chaos", "show", path]) == 0
        assert "no cluster scope" in capsys.readouterr().out

    def test_chaos_show_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["chaos", "show", str(tmp_path / "no.json")]) == 2
        assert "invalid fault plan" in capsys.readouterr().err

    def test_faults_show_mentions_cluster_section(self, tmp_path, capsys):
        path = str(tmp_path / "chaos.json")
        assert main(["chaos", "generate", "node-churn", "--out", path]) == 0
        capsys.readouterr()
        assert main(["faults", "show", path]) == 0
        assert "cluster:" in capsys.readouterr().out

    def test_serve_with_chaos_plan_reports_resilience(self, tmp_path,
                                                      capsys):
        plan = self._plan(tmp_path)
        chaos = str(tmp_path / "chaos.json")
        assert main(["chaos", "generate", "node-churn", "--node", "0",
                     "--at", "20", "--duration", "100",
                     "--out", chaos]) == 0
        out_path = str(tmp_path / "report.json")
        capsys.readouterr()
        assert main(["serve", "--plan", plan, "--nodes", "2", "--cores", "8",
                     "--faults", chaos, "--validate",
                     "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "availability:" in out
        doc = json.loads(open(out_path).read())
        assert "resilience" in doc
        # The saved report round-trips through `repro validate`.
        assert main(["validate", out_path]) == 0

    def test_serve_max_wait_flag_sheds(self, tmp_path, capsys):
        plan = str(tmp_path / "plan.json")
        assert main(["arrivals", "generate", "poisson", "--tenants", "2",
                     "--rate", "0.2", "--horizon", "200",
                     "--workload", "wordcount", "--scale", "0.02",
                     "--out", plan]) == 0
        capsys.readouterr()
        assert main(["serve", "--plan", plan, "--nodes", "1", "--cores", "8",
                     "--max-wait", "10", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["totals"]["rejected"] > 0


class TestCoreFlag:
    def test_parser_accepts_core_on_every_subcommand(self):
        parser = build_parser()
        for argv in (
            ["run", "wordcount", "--core", "vector"],
            ["sweep", "wordcount", "--core", "vector"],
            ["compare", "wordcount", "--core", "vector"],
            ["whatif", "wordcount", "--at", "5", "--core", "vector"],
            ["serve", "--plan", "x.json", "--core", "vector"],
            ["bench", "--core", "vector"],
        ):
            assert parser.parse_args(argv).core == "vector"

    def test_parser_rejects_unknown_core(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "wordcount", "--core", "fpga"])

    def test_unavailable_core_exits_2(self, monkeypatch, capsys):
        from repro.simulation.kernel import _instances, vector_core

        monkeypatch.setattr(vector_core, "np", None)
        monkeypatch.delitem(_instances, "vector", raising=False)
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--cores", "4", "--core", "vector"])
        assert code == 2
        assert "unavailable" in capsys.readouterr().err

    def test_run_results_identical_across_cores(self, capsys):
        pytest.importorskip("numpy")
        docs = {}
        for core in ("python", "vector"):
            assert main(["run", "terasort", "--scale", "0.02", "--nodes", "2",
                         "--cores", "4", "--core", core, "--json"]) == 0
            docs[core] = capsys.readouterr().out
        assert docs["python"] == docs["vector"]


class TestBenchJson:
    def test_bench_json_emits_doc_with_cores_metadata(self, capsys):
        assert main(["bench", "--smoke", "--only", "kernel_fairshare",
                     "--core", "python"]) == 0
        capsys.readouterr()
        assert main(["bench", "--smoke", "--only", "kernel_fairshare",
                     "--core", "python", "--json"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)
        assert "kernel_fairshare" in doc["benchmarks"]
        assert doc["cores"]["active"]["core"] == "python"
        assert "available" in doc["cores"]

    def test_bench_core_flag_pins_backend(self, capsys):
        pytest.importorskip("numpy")
        assert main(["bench", "--smoke", "--only", "kernel_fairshare",
                     "--core", "vector", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["cores"]["active"]["core"] == "vector"
