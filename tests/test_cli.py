"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "terasort"])
        assert args.policy == "default"
        assert args.nodes == 4
        assert args.device == "hdd"
        assert args.scale == 1.0

    def test_run_with_options(self):
        args = build_parser().parse_args(
            ["run", "pagerank", "--policy", "dynamic", "--scale", "0.1",
             "--nodes", "2", "--device", "ssd"]
        )
        assert args.policy == "dynamic"
        assert args.scale == 0.1
        assert args.nodes == 2
        assert args.device == "ssd"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "hive"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_prints_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("terasort", "pagerank", "aggregation", "join", "svm"):
            assert name in out

    def test_run_small_workload(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated seconds" in out
        assert "stage" in out

    def test_run_with_fixed_policy(self, capsys):
        code = main(
            ["run", "wordcount", "--scale", "0.02", "--nodes", "2",
             "--policy", "fixed", "--threads", "2"]
        )
        assert code == 0
        assert "2" in capsys.readouterr().out

    def test_sweep_outputs_bestfit(self, capsys):
        code = main(["sweep", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "BestFit" in out
        assert "threads" in out

    def test_compare_outputs_three_systems(self, capsys):
        code = main(["compare", "wordcount", "--scale", "0.02", "--nodes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "default" in out
        assert "static bestfit" in out
        assert "self-adaptive" in out
