"""Tests for the cluster and node models."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.storage import SSD_PROFILE


class TestNodeSpec:
    def test_das5_defaults(self):
        spec = NodeSpec()
        assert spec.cores == 32
        assert spec.memory_bytes == pytest.approx(56.0 * 1024**3)
        assert spec.disk_profile.name == "hdd"

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(cores=0)

    def test_invalid_speed_factor_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(disk_speed_factor=-1.0)


class TestCluster:
    def test_four_node_das5_shape(self):
        cluster = Cluster(ClusterSpec(num_nodes=4))
        assert cluster.num_nodes == 4
        assert cluster.total_cores == 128
        assert cluster.node_ids == [0, 1, 2, 3]

    def test_das5_node_names(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        assert [n.name for n in cluster.nodes] == ["node300", "node301"]

    def test_nodes_have_resources(self):
        cluster = Cluster(ClusterSpec(num_nodes=2))
        node = cluster.node(0)
        assert node.cpu.cores == 32
        assert node.disk.profile.name == "hdd"
        assert node.egress is cluster.fabric.egress(0)
        assert node.ingress is cluster.fabric.ingress(0)

    def test_variability_spreads_disk_speed(self):
        cluster = Cluster(ClusterSpec(num_nodes=16, disk_sigma=0.15))
        factors = [n.spec.disk_speed_factor for n in cluster.nodes]
        assert max(factors) > min(factors)

    def test_zero_sigma_gives_identical_nodes(self):
        cluster = Cluster(ClusterSpec(num_nodes=4, disk_sigma=0.0, cpu_sigma=0.0))
        assert all(n.spec.disk_speed_factor == 1.0 for n in cluster.nodes)
        assert all(n.spec.cpu_speed_factor == 1.0 for n in cluster.nodes)

    def test_same_seed_reproduces_cluster(self):
        a = Cluster(ClusterSpec(num_nodes=4, seed=7))
        b = Cluster(ClusterSpec(num_nodes=4, seed=7))
        assert [n.spec.disk_speed_factor for n in a.nodes] == [
            n.spec.disk_speed_factor for n in b.nodes
        ]

    def test_different_seed_changes_cluster(self):
        a = Cluster(ClusterSpec(num_nodes=4, seed=7))
        b = Cluster(ClusterSpec(num_nodes=4, seed=8))
        assert [n.spec.disk_speed_factor for n in a.nodes] != [
            n.spec.disk_speed_factor for n in b.nodes
        ]

    def test_ssd_cluster(self):
        cluster = Cluster(ClusterSpec(num_nodes=2, node=NodeSpec(disk_profile=SSD_PROFILE)))
        assert all(n.disk.profile.name == "ssd" for n in cluster.nodes)

    def test_invalid_num_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)

    def test_total_disk_bytes_starts_at_zero(self):
        cluster = Cluster(ClusterSpec(num_nodes=3))
        assert cluster.total_disk_bytes() == 0.0
