"""Cluster scheduler: FIFO/FAIR/WFAIR invariants on synthetic job streams.

These tests drive :class:`ClusterScheduler` directly with hand-built
:class:`ServiceJob` lists (no inner engine runs), so the queueing logic is
exercised in isolation: conservation of submitted jobs, starvation
freedom, discipline ordering, hooks, and fairness accounting.
"""

import pytest

from repro.cluster.scheduler import (
    ClusterScheduler,
    ServiceJob,
    jobs_from_arrivals,
    max_queue_admission,
)
from repro.workloads.arrivals import ArrivalPlanError


def make_jobs(count, tenants=("a", "b"), slots=1, runtime=10.0, gap=1.0,
              weights=None):
    """``count`` jobs round-robined over ``tenants``, arriving every ``gap``."""
    jobs = []
    for index in range(count):
        tenant = tenants[index % len(tenants)]
        jobs.append(
            ServiceJob(
                job_id=f"j{index:04d}",
                tenant=tenant,
                workload="synthetic",
                arrival=index * gap,
                slots=slots,
                runtime=runtime,
                tenant_weight=(weights or {}).get(tenant, 1.0),
            )
        )
    return jobs


def run(jobs, total_slots=4, discipline="fifo", **kwargs):
    return ClusterScheduler(total_slots=total_slots, discipline=discipline,
                            **kwargs).run(jobs)


class TestConservation:
    """Submitted jobs are never lost: submitted == completed + rejected."""

    @pytest.mark.parametrize("discipline", ["fifo", "fair", "wfair"])
    def test_50_jobs_all_complete(self, discipline):
        result = run(make_jobs(50), discipline=discipline)
        assert result.submitted == 50
        assert result.completed == 50
        assert result.rejected == 0
        assert all(job.end is not None for job in result.jobs)

    @pytest.mark.parametrize("discipline", ["fifo", "fair"])
    def test_conservation_with_admission_control(self, discipline):
        result = run(make_jobs(50, gap=0.1), discipline=discipline,
                     admission=max_queue_admission(3))
        assert result.submitted == 50
        assert result.completed + result.rejected == 50
        assert result.rejected > 0  # gap 0.1 floods a 4-slot cluster
        for job in result.jobs:
            assert (job.end is not None) != job.rejected

    def test_service_accounting_matches_runtimes(self):
        result = run(make_jobs(50))
        total = sum(job.runtime * job.slots
                    for job in result.jobs if job.end is not None)
        assert sum(result.slot_seconds.values()) == pytest.approx(total)


class TestNoStarvation:
    @pytest.mark.parametrize("discipline", ["fifo", "fair"])
    def test_wide_job_is_not_starved_by_narrow_stream(self, discipline):
        """Head-of-line blocking: a 4-slot job queued behind a continuous
        1-slot stream must still run (a greedy backfiller would starve it
        forever)."""
        narrow = make_jobs(48, tenants=("small",), slots=1, runtime=10.0,
                           gap=2.0)
        wide = ServiceJob(job_id="wide", tenant="big", workload="synthetic",
                          arrival=1.0, slots=4, runtime=5.0)
        result = run(narrow + [wide], total_slots=4, discipline=discipline)
        wide_job = next(j for j in result.jobs if j.job_id == "wide")
        assert wide_job.end is not None
        # It must not be pushed to the very end of the schedule.
        assert wide_job.end < result.makespan

    @pytest.mark.parametrize("discipline", ["fifo", "fair", "wfair"])
    def test_every_job_starts_within_bounded_delay(self, discipline):
        jobs = make_jobs(50, runtime=8.0, gap=1.0)
        result = run(jobs, discipline=discipline)
        worst = max(job.queue_delay for job in result.jobs)
        # 50 jobs x 8s over 4 slots arriving 1/s: backlog is bounded by
        # total work, so no job can wait longer than the whole schedule.
        assert worst <= result.makespan


class TestDisciplines:
    def test_fifo_starts_in_arrival_order(self):
        result = run(make_jobs(50), discipline="fifo")
        starts = [job.start for job in
                  sorted(result.jobs, key=lambda j: j.arrival)]
        assert starts == sorted(starts)

    def test_fair_beats_fifo_for_light_tenant_behind_burst(self):
        """Tenant b's single job arrives behind a's burst: FAIR serves it
        as soon as slots free; FIFO makes it drain the whole burst."""

        def jobs():
            burst = make_jobs(20, tenants=("a",), runtime=10.0, gap=0.0)
            burst.append(
                ServiceJob(job_id="late", tenant="b", workload="synthetic",
                           arrival=0.5, slots=1, runtime=10.0)
            )
            return burst

        fifo = run(jobs(), total_slots=2, discipline="fifo")
        fair = run(jobs(), total_slots=2, discipline="fair")
        fifo_late = next(j for j in fifo.jobs if j.job_id == "late")
        fair_late = next(j for j in fair.jobs if j.job_id == "late")
        assert fair_late.end < fifo_late.end

    def test_wfair_gives_heavy_tenant_more_slots(self):
        jobs = make_jobs(50, tenants=("heavy", "light"), runtime=10.0,
                         gap=0.0, weights={"heavy": 3.0, "light": 1.0})
        result = run(jobs, total_slots=4, discipline="wfair")
        heavy = [j for j in result.jobs if j.tenant == "heavy"]
        light = [j for j in result.jobs if j.tenant == "light"]
        assert (sum(j.queue_delay for j in heavy) / len(heavy)
                < sum(j.queue_delay for j in light) / len(light))

    def test_fair_fairness_index_beats_fifo_under_asymmetric_load(self):
        """One tenant floods, one trickles: FAIR splits service more evenly
        over the contended window."""
        def jobs():
            flood = make_jobs(30, tenants=("a",), runtime=10.0, gap=0.0)
            flood.extend(
                ServiceJob(job_id=f"t{i}", tenant="b", workload="synthetic",
                           arrival=float(i), slots=1, runtime=10.0)
                for i in range(10)
            )
            return flood

        fair = run(jobs(), total_slots=2, discipline="fair")
        fifo = run(jobs(), total_slots=2, discipline="fifo")
        # FIFO serves the flood first, so tenant b's jobs all finish late;
        # FAIR interleaves.  Average b latency shows the difference.
        fair_b = [j.latency for j in fair.jobs if j.tenant == "b"]
        fifo_b = [j.latency for j in fifo.jobs if j.tenant == "b"]
        assert sum(fair_b) < sum(fifo_b)


class TestDeterminism:
    @pytest.mark.parametrize("discipline", ["fifo", "fair", "wfair"])
    def test_rerun_is_identical(self, discipline):
        def snapshot():
            result = run(make_jobs(50, gap=0.5), discipline=discipline)
            return [(j.job_id, j.start, j.end) for j in result.jobs]

        assert snapshot() == snapshot()


class TestHooks:
    def test_preemption_requeues_and_restarts(self):
        """Evict the running job when a second tenant shows up; the victim
        restarts from scratch and its lost work is accounted."""
        first = ServiceJob(job_id="v", tenant="a", workload="synthetic",
                           arrival=0.0, slots=4, runtime=10.0)
        second = ServiceJob(job_id="p", tenant="b", workload="synthetic",
                            arrival=4.0, slots=4, runtime=2.0)
        fired = []

        def preempt(state):
            if not fired and any(j.tenant == "b" for j in state.queued):
                fired.append(True)
                return [j for j in state.running if j.tenant == "a"]
            return []

        result = run([first, second], total_slots=4, discipline="fifo",
                     preemption=preempt)
        victim = next(j for j in result.jobs if j.job_id == "v")
        assert result.completed == 2
        assert result.preempted == 1
        assert victim.preemptions == 1
        # 4s of work on 4 slots was thrown away...
        assert result.wasted_slot_seconds == pytest.approx(16.0)
        # ...and the victim requeues at its *arrival* position, so under
        # FIFO it restarts immediately (a full re-run: 4 + 10) while the
        # preemptor waits behind it.
        assert victim.end == pytest.approx(4.0 + 10.0)
        preemptor = next(j for j in result.jobs if j.job_id == "p")
        assert preemptor.end == pytest.approx(14.0 + 2.0)
        assert victim.queue_delay == pytest.approx(
            victim.latency - victim.served)

    def test_admission_limit_zero_rejects_everything(self):
        result = run(make_jobs(10, gap=0.0), total_slots=1,
                     admission=max_queue_admission(0))
        assert result.completed == 0
        assert result.rejected == 10
        assert all(job.start is None for job in result.jobs)


class TestValidationErrors:
    def test_oversized_job_is_rejected_upfront(self):
        job = ServiceJob(job_id="x", tenant="a", workload="synthetic",
                         arrival=0.0, slots=8, runtime=1.0)
        with pytest.raises(ArrivalPlanError, match="slots"):
            run([job], total_slots=4)

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            ClusterScheduler(total_slots=4, discipline="lifo")

    def test_jobs_from_arrivals_requires_runtimes(self):
        with pytest.raises(KeyError):
            jobs_from_arrivals(
                [type("A", (), {"job_id": "j0"})()], {}
            )
