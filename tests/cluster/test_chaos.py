"""Chaos-era scheduler behaviour: churn, retries, breakers, protection.

These tests drive :class:`ClusterScheduler` with synthetic jobs and
hand-built :class:`ClusterFaults` (no inner engine, no report layer), so
every resilience mechanism is pinned at the event-loop level: node-loss
kill/requeue/backoff, conservation across terminal states under every
discipline, deadline aborts, admission shedding, the circuit-breaker
state machine, graceful degradation, and the single-admission-path
regression (preempted jobs must not bypass ``max_queue_admission``).
"""

import pytest

from repro.cluster.chaos import CircuitBreaker, backoff_delay
from repro.cluster.scheduler import (
    ClusterScheduler,
    ServiceJob,
    max_queue_admission,
    max_wait_admission,
)
from repro.faults.plan import (
    ClusterFaults,
    NodeChurn,
    ProtectionConfig,
    SlotFlap,
    TenantPoison,
)
from repro.simulation.randomness import RandomStreams


def make_jobs(count, tenants=("a", "b"), slots=1, runtime=10.0, gap=1.0):
    return [
        ServiceJob(
            job_id=f"j{index:04d}",
            tenant=tenants[index % len(tenants)],
            workload="synthetic",
            arrival=index * gap,
            slots=slots,
            runtime=runtime,
        )
        for index in range(count)
    ]


def run(jobs, total_slots=4, discipline="fifo", **kwargs):
    return ClusterScheduler(total_slots=total_slots, discipline=discipline,
                            **kwargs).run(jobs)


class TestRequeueAdmissionRegression:
    """Preempted jobs must pass the same admission path as arrivals."""

    def test_preempted_requeue_respects_max_queue(self):
        # One wide victim, then a stream of arrivals that fills the queue
        # to the limit; when the preemptor fires, the victim's requeue
        # must be shed by max_queue_admission, not silently enqueued.
        victim = ServiceJob(job_id="v", tenant="a", workload="synthetic",
                            arrival=0.0, slots=4, runtime=100.0)
        fillers = [
            ServiceJob(job_id=f"f{index}", tenant="a", workload="synthetic",
                       arrival=1.0 + index * 0.1, slots=1, runtime=5.0)
            for index in range(2)
        ]
        preemptor = ServiceJob(job_id="p", tenant="b", workload="synthetic",
                               arrival=2.0, slots=4, runtime=1.0)
        fired = []

        def preempt(state):
            if not fired and any(j.tenant == "b" for j in state.queued):
                fired.append(True)
                return [j for j in state.running if j.job_id == "v"]
            return []

        result = run([victim] + fillers + [preemptor], total_slots=4,
                     admission=max_queue_admission(3), preemption=preempt)
        out = {job.job_id: job for job in result.jobs}
        # The queue already held 3 jobs (2 fillers + preemptor) when the
        # victim was evicted, so its requeue is rejected.
        assert out["v"].rejected
        assert out["v"].shed_reason == "admission"
        assert result.preempted == 1
        assert result.submitted == result.completed + result.rejected

    def test_preempted_requeue_admitted_when_queue_has_room(self):
        # No admission hook: the pre-chaos behaviour is unchanged.
        victim = ServiceJob(job_id="v", tenant="a", workload="synthetic",
                            arrival=0.0, slots=4, runtime=10.0)
        preemptor = ServiceJob(job_id="p", tenant="b", workload="synthetic",
                               arrival=4.0, slots=4, runtime=2.0)
        fired = []

        def preempt(state):
            if not fired and any(j.tenant == "b" for j in state.queued):
                fired.append(True)
                return [j for j in state.running if j.tenant == "a"]
            return []

        result = run([victim, preemptor], total_slots=4, preemption=preempt)
        assert result.completed == 2
        out = {job.job_id: job for job in result.jobs}
        assert out["v"].end == pytest.approx(14.0)


class TestNodeChurn:
    @pytest.mark.parametrize("discipline", ["fifo", "fair", "wfair"])
    def test_conservation_under_churn(self, discipline):
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=5.0, duration=30.0),
                        NodeChurn(node_id=1, down_at=12.0, duration=20.0)),
            protection=ProtectionConfig(max_retries=3),
        )
        result = run(make_jobs(30, gap=2.0), discipline=discipline,
                     chaos=chaos, chaos_seed=11)
        assert result.submitted == 30
        assert (result.completed + result.rejected + result.aborted
                == result.submitted)
        for job in result.jobs:
            terminal = [job.end is not None, job.rejected, job.aborted]
            assert sum(terminal) == 1, job.job_id

    def test_victim_requeues_with_backoff_and_recovers(self):
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=5.0, duration=10.0),),
            protection=ProtectionConfig(max_retries=3, backoff_base=2.0,
                                        backoff_jitter=0.0),
        )
        job = ServiceJob(job_id="j0", tenant="a", workload="synthetic",
                         arrival=0.0, slots=1, runtime=20.0)
        result = run([job], total_slots=1, chaos=chaos, chaos_seed=1)
        assert result.completed == 1
        assert result.retried == 1
        assert job.retries == 1
        # Killed at t=5 (5s wasted), retried at t=7 (base backoff 2s, no
        # jitter) but the node is down until t=15, so the retry queues and
        # the full 20s re-run starts at 15.
        assert job.end == pytest.approx(35.0)
        assert result.wasted_fault_slot_seconds == pytest.approx(5.0)
        assert result.mttr and result.mttr[0]["mttr_s"] == pytest.approx(30.0)
        assert result.node_downtime == pytest.approx(10.0)

    def test_retry_budget_exhaustion_aborts(self):
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=1.0, duration=None),),
            protection=ProtectionConfig(max_retries=0),
        )
        job = ServiceJob(job_id="j0", tenant="a", workload="synthetic",
                         arrival=0.0, slots=1, runtime=20.0)
        result = run([job], total_slots=1, chaos=chaos, chaos_seed=1)
        assert result.aborted == 1
        assert job.aborted and job.abort_reason == "node-loss"

    def test_permanent_loss_aborts_queued_jobs(self):
        # The only node never comes back: queued work cannot drain, so the
        # scheduler aborts it (reason "capacity") instead of stalling.
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=1.0, duration=None),),
            protection=ProtectionConfig(max_retries=1),
        )
        result = run(make_jobs(3, runtime=20.0), total_slots=1, chaos=chaos,
                     chaos_seed=1)
        assert result.completed == 0
        assert result.aborted == 3
        assert result.submitted == result.aborted

    def test_chaos_plan_must_fit_cluster(self):
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=9, down_at=1.0),))
        with pytest.raises(ValueError, match="node 9"):
            ClusterScheduler(4, chaos=chaos)


class TestSlotFlaps:
    def test_flap_drains_without_killing(self):
        # Node 0 flaps while the job runs: the job finishes undisturbed,
        # but the next job cannot be granted the flapped node.
        chaos = ClusterFaults(
            slot_flaps=(SlotFlap(node_id=0, at=2.0, duration=20.0),))
        jobs = make_jobs(2, runtime=10.0, gap=11.0)
        result = run(jobs, total_slots=1, chaos=chaos, chaos_seed=1)
        assert result.completed == 2
        assert result.retried == 0
        first, second = result.jobs
        assert first.end == pytest.approx(10.0)
        # Second arrives at 11 but the slot is drained until 22.
        assert second.start == pytest.approx(22.0)


class TestDeadlines:
    def test_queued_job_aborts_at_deadline_without_starting(self):
        # One slot, three simultaneous arrivals, one shared deadline at
        # t=5.  FIFO runs "b" (killed at its deadline); "l1" and "l2" are
        # still queued when the same instant expires their deadlines, so
        # they abort without ever receiving service.
        chaos = ClusterFaults(
            protection=ProtectionConfig(deadline=5.0, max_retries=0))
        blocker = ServiceJob(job_id="b", tenant="a", workload="synthetic",
                             arrival=0.0, slots=1, runtime=50.0)
        late1 = ServiceJob(job_id="l1", tenant="a", workload="synthetic",
                           arrival=0.0, slots=1, runtime=50.0)
        late2 = ServiceJob(job_id="l2", tenant="a", workload="synthetic",
                           arrival=0.0, slots=1, runtime=50.0)
        result = run([blocker, late1, late2], total_slots=1, chaos=chaos,
                     chaos_seed=1)
        for job in (late1, late2):
            assert job.aborted and job.abort_reason == "deadline"
            assert job.start is None and job.served == 0.0
        assert blocker.served == pytest.approx(5.0)
        assert result.slo_violations == 3
        assert result.aborted == 3

    def test_running_job_killed_at_deadline(self):
        chaos = ClusterFaults(protection=ProtectionConfig(deadline=5.0))
        job = ServiceJob(job_id="j0", tenant="a", workload="synthetic",
                         arrival=0.0, slots=1, runtime=50.0)
        result = run([job], total_slots=1, chaos=chaos, chaos_seed=1)
        assert job.aborted
        assert result.wasted_fault_slot_seconds == pytest.approx(5.0)


class TestOverloadProtection:
    def test_max_queue_sheds_with_reason(self):
        chaos = ClusterFaults(
            protection=ProtectionConfig(max_queue=2))
        result = run(make_jobs(10, gap=0.1, runtime=50.0), total_slots=1,
                     chaos=chaos, chaos_seed=1)
        assert result.shed.get("queue", 0) > 0
        assert sum(result.shed.values()) == result.rejected

    def test_max_wait_sheds_on_estimated_wait(self):
        chaos = ClusterFaults(
            protection=ProtectionConfig(max_wait=30.0))
        result = run(make_jobs(10, gap=0.1, runtime=50.0), total_slots=1,
                     chaos=chaos, chaos_seed=1)
        assert result.shed.get("wait", 0) > 0

    def test_max_wait_admission_hook(self):
        result = run(make_jobs(10, gap=0.1, runtime=50.0), total_slots=1,
                     admission=max_wait_admission(30.0))
        assert result.rejected > 0
        assert result.submitted == result.completed + result.rejected

    def test_degradation_shrinks_grants_under_pressure(self):
        chaos = ClusterFaults(
            protection=ProtectionConfig(degrade_queue=2, degrade_factor=0.5))
        jobs = [
            ServiceJob(job_id=f"j{index:02d}", tenant="a",
                       workload="synthetic", arrival=index * 0.1, slots=2,
                       runtime=10.0, runtime_by_slots={1: 18.0})
            for index in range(8)
        ]
        result = run(jobs, total_slots=2, chaos=chaos, chaos_seed=1)
        assert result.completed == 8
        assert result.degraded_grants > 0
        degraded = [job for job in jobs if job.degraded]
        assert degraded and all(job.granted == 1 for job in degraded)


class TestPoisonAndBreaker:
    def test_poison_failures_trip_and_recover_breaker(self):
        chaos = ClusterFaults(
            poison=(TenantPoison(tenant="a", probability=1.0,
                                 max_poisoned=4),),
            protection=ProtectionConfig(max_retries=0, breaker_failures=2,
                                        breaker_cooldown=5.0,
                                        breaker_jitter=0.0),
        )
        result = run(make_jobs(12, tenants=("a",), gap=4.0, runtime=2.0),
                     total_slots=1, chaos=chaos, chaos_seed=3)
        breaker = result.breakers["a"]
        states = [state for _at, state in breaker["transitions"]]
        assert states[:2] == ["open", "half_open"]
        assert breaker["opens"] >= 1
        assert breaker["state"] == "closed"
        assert result.shed.get("breaker", 0) > 0
        assert (result.completed + result.rejected + result.aborted
                == result.submitted)

    def test_breaker_state_machine_unit(self):
        protection = ProtectionConfig(breaker_failures=2,
                                      breaker_cooldown=10.0,
                                      breaker_jitter=0.0)
        breaker = CircuitBreaker("t", protection, RandomStreams(0))
        assert breaker.allow("j1")
        assert breaker.record_failure(1.0, "j1") is None
        probe_at = breaker.record_failure(2.0, "j2")
        assert breaker.state == "open"
        assert probe_at == pytest.approx(12.0)
        assert not breaker.allow("j3")
        breaker.half_open(probe_at)
        assert breaker.state == "half_open"
        assert breaker.allow("j4")       # the probe
        assert not breaker.allow("j5")   # only one probe
        breaker.record_success(13.0, "j4")
        assert breaker.state == "closed"

    def test_breaker_reopens_on_probe_failure(self):
        protection = ProtectionConfig(breaker_failures=1,
                                      breaker_cooldown=10.0,
                                      breaker_jitter=0.0)
        breaker = CircuitBreaker("t", protection, RandomStreams(0))
        assert breaker.record_failure(0.0, "j1") is not None
        breaker.half_open(10.0)
        assert breaker.allow("j2")
        assert breaker.record_failure(11.0, "j2") is not None
        assert breaker.state == "open"
        assert breaker.opens == 2


class TestBackoffStreams:
    def test_backoff_doubles_and_caps(self):
        protection = ProtectionConfig(backoff_base=2.0, backoff_cap=10.0,
                                      backoff_jitter=0.0)
        streams = RandomStreams(0)
        delays = [backoff_delay(protection, streams, "j", attempt)
                  for attempt in (1, 2, 3, 4, 5)]
        assert delays == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_jitter_is_keyed_per_job_and_attempt(self):
        protection = ProtectionConfig(backoff_base=2.0, backoff_jitter=0.5)
        streams = RandomStreams(7)
        a1 = backoff_delay(protection, streams, "ja", 1)
        b1 = backoff_delay(protection, streams, "jb", 1)
        a2 = backoff_delay(protection, streams, "ja", 2)
        assert a1 != b1
        # Re-derived streams reproduce the same draws in any order.
        again = RandomStreams(7)
        assert backoff_delay(protection, again, "ja", 2) == a2
        assert backoff_delay(protection, again, "ja", 1) == a1


class TestChaosDeterminism:
    def test_same_seed_same_schedule(self):
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=5.0, duration=20.0),),
            poison=(TenantPoison(tenant="*", probability=0.3),),
            protection=ProtectionConfig(max_retries=2, breaker_failures=3),
        )

        def snapshot():
            result = run(make_jobs(20, gap=1.5), chaos=chaos, chaos_seed=5)
            return [(job.job_id, job.start, job.end, job.retries,
                     job.rejected, job.aborted) for job in result.jobs]

        assert snapshot() == snapshot()

    def test_chaos_free_matches_pre_chaos_scheduler(self):
        plain = run(make_jobs(25, gap=0.5))
        again = run(make_jobs(25, gap=0.5), chaos=None)
        assert ([(j.job_id, j.start, j.end) for j in plain.jobs]
                == [(j.job_id, j.start, j.end) for j in again.jobs])
        assert plain.wasted_fault_slot_seconds == 0.0
        assert plain.shed == {}
        assert plain.breakers == {}
