"""Recovery machinery end-to-end: retries, lineage recomputation, loss.

All scenarios run the materialised 200-record terasort (stages at roughly
0-0.036, 0.036-0.103 and 0.103-0.199 simulated seconds under the empty
plan) so fault times can be placed inside a specific stage, and every
scenario must still produce the correct sorted output.
"""

import pytest

from repro.engine.scheduler import JobAbortedError
from repro.faults import (
    ExecutorLoss,
    FaultPlan,
    NodeLoss,
    TaskCrash,
    TaskCrashRate,
)
from repro.observability.sinks import MemorySink
from repro.observability.tracer import Tracer
from tests.faults.conftest import run_small_terasort, sorted_output_keys


def baseline_runtime():
    ctx, _wl = run_small_terasort(FaultPlan())
    return ctx.total_runtime


class TestTaskRetry:
    def test_single_crash_is_retried_and_output_correct(self):
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=1, partition=0, attempt=0, at_fraction=0.5)
        ])
        ctx, wl = run_small_terasort(plan)
        keys = sorted_output_keys(ctx, wl)
        assert keys == sorted(keys) and len(keys) == 200
        assert ctx.metrics.counter("scheduler.task_failures").value == 1
        assert ctx.metrics.counter("scheduler.retries").value == 1
        assert ctx.total_runtime > baseline_runtime()

    def test_retry_emits_trace_events(self):
        sink = MemorySink()
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=1, partition=0, attempt=0)
        ])
        run_small_terasort(plan, tracer=Tracer(sinks=[sink]))
        names = {e.name for e in sink.events}
        assert "task-crash" in names or "retry-scheduled" in names
        assert "retry-scheduled" in names

    def test_crash_rate_budget_is_exact(self):
        plan = FaultPlan(crash_rate=TaskCrashRate(probability=1.0,
                                                  max_crashes=2))
        ctx, wl = run_small_terasort(plan)
        keys = sorted_output_keys(ctx, wl)
        assert keys == sorted(keys) and len(keys) == 200
        assert ctx.metrics.counter("scheduler.task_failures").value == 2

    def test_max_failures_aborts_the_job(self):
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=1, partition=0, attempt=a)
            for a in range(4)  # spark.task.maxFailures defaults to 4
        ])
        with pytest.raises(JobAbortedError):
            run_small_terasort(plan)

    def test_abort_counts_in_metrics(self):
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=1, partition=0, attempt=a)
            for a in range(4)
        ])
        from tests.faults.conftest import make_fault_context
        from repro.workloads import Terasort

        ctx = make_fault_context(plan)
        workload = Terasort(num_partitions=4)
        workload.prepare_small(ctx, num_records=200)
        with pytest.raises(JobAbortedError):
            workload.execute(ctx)
        assert ctx.metrics.counter("scheduler.jobs_aborted").value == 1


class TestExecutorLoss:
    def test_job_completes_correctly_and_slower(self):
        plan = FaultPlan(executor_losses=[ExecutorLoss(executor_id=1, at=0.15)])
        ctx, wl = run_small_terasort(plan)
        keys = sorted_output_keys(ctx, wl)
        assert keys == sorted(keys) and len(keys) == 200
        assert ctx.metrics.counter("faults.executor_losses").value == 1
        # Lost shuffle outputs force lineage recomputation, so the run is
        # strictly slower than the empty-plan baseline.
        assert ctx.metrics.counter("faults.recomputed_partitions").value > 0
        assert ctx.total_runtime > baseline_runtime()

    def test_loss_emits_recovery_spans(self):
        sink = MemorySink()
        plan = FaultPlan(executor_losses=[ExecutorLoss(executor_id=1, at=0.15)])
        run_small_terasort(plan, tracer=Tracer(sinks=[sink]))
        names = {e.name for e in sink.events}
        assert "executor-loss" in names
        assert "shuffle-recomputation" in names

    def test_loss_before_job_starts_is_survivable(self):
        # The whole job runs on the surviving executor.
        plan = FaultPlan(executor_losses=[ExecutorLoss(executor_id=1, at=0.0)])
        ctx, wl = run_small_terasort(plan)
        keys = sorted_output_keys(ctx, wl)
        assert keys == sorted(keys) and len(keys) == 200


class TestNodeLoss:
    def test_job_completes_from_surviving_replicas(self):
        plan = FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.11)])
        ctx, wl = run_small_terasort(plan)
        keys = sorted_output_keys(ctx, wl)
        assert keys == sorted(keys) and len(keys) == 200
        assert ctx.metrics.counter("faults.node_losses").value == 1
        assert not ctx.cluster.node(1).alive
        assert ctx.total_runtime > baseline_runtime()

    def test_node_loss_emits_fault_events(self):
        sink = MemorySink()
        plan = FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.11)])
        run_small_terasort(plan, tracer=Tracer(sinks=[sink]))
        names = {e.name for e in sink.events}
        assert "node-loss" in names
        assert "executor-loss" in names  # the machine's executor dies with it

    def test_lost_replicas_leave_dfs_readable(self):
        plan = FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.11)])
        ctx, wl = run_small_terasort(plan)
        # The input file must still resolve to live replicas.
        assert ctx.dfs.locations(wl.input_path)
        assert all(node != 1 for node in ctx.dfs.locations(wl.input_path))
