"""Cluster-scope fault vocabulary: schema v2, validation, canned builders.

``repro.faults/2`` adds a ``cluster`` section to the fault-plan wire
format.  These tests pin the version gating (a /1 plan never grows the
section; a /2 plan with cluster faults round-trips byte-for-byte), the
strict validation of every cluster dataclass, and the engine/cluster plan
split (:meth:`FaultPlan.engine_dict`) the service layer relies on for
byte-identical inner runs.
"""

import json

import pytest

from repro.faults.plan import (
    CANNED_CHAOS,
    PLAN_SCHEMA,
    PLAN_SCHEMA_V2,
    ClusterFaults,
    DemandSurge,
    FaultPlan,
    FaultPlanError,
    NodeChurn,
    NodeLoss,
    ProtectionConfig,
    SlotFlap,
    TenantPoison,
    node_churn_plan,
    overload_plan,
    poison_tenant_plan,
    slot_flap_plan,
    surge_plan,
)


def cluster_plan(**kwargs) -> FaultPlan:
    return FaultPlan(seed=7, cluster=ClusterFaults(**kwargs))


class TestSchemaGating:
    def test_engine_only_plan_stays_v1(self):
        plan = FaultPlan(node_losses=(NodeLoss(node_id=1, at=5.0),))
        doc = plan.to_dict()
        assert doc["schema"] == PLAN_SCHEMA
        assert "cluster" not in doc

    def test_cluster_plan_emits_v2(self):
        plan = cluster_plan(node_churn=(NodeChurn(node_id=0, down_at=1.0),))
        doc = plan.to_dict()
        assert doc["schema"] == PLAN_SCHEMA_V2
        assert "cluster" in doc

    def test_cluster_key_rejected_under_v1(self):
        doc = cluster_plan(
            node_churn=(NodeChurn(node_id=0, down_at=1.0),)).to_dict()
        doc["schema"] = PLAN_SCHEMA
        with pytest.raises(FaultPlanError, match="repro.faults/2"):
            FaultPlan.from_dict(doc)

    def test_round_trip_is_byte_identical(self):
        plan = overload_plan(node_id=1, at=50.0, duration=100.0, factor=2.5,
                             seed=3)
        text = plan.to_json()
        again = FaultPlan.from_dict(json.loads(text)).to_json()
        assert text == again

    def test_unknown_cluster_key_rejected(self):
        doc = cluster_plan(
            node_churn=(NodeChurn(node_id=0, down_at=1.0),)).to_dict()
        doc["cluster"]["mystery"] = True
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict(doc)

    def test_cluster_only_plan_is_not_empty(self):
        plan = cluster_plan(node_churn=(NodeChurn(node_id=0, down_at=1.0),))
        assert not plan.is_empty


class TestEnginePlanSplit:
    def test_cluster_only_plan_has_no_engine_dict(self):
        plan = node_churn_plan()
        assert plan.engine_dict() is None
        assert plan.engine_plan().cluster is None

    def test_mixed_plan_keeps_engine_faults(self):
        plan = FaultPlan(
            seed=7,
            node_losses=(NodeLoss(node_id=1, at=5.0),),
            cluster=ClusterFaults(
                node_churn=(NodeChurn(node_id=0, down_at=1.0),)),
        )
        doc = plan.engine_dict()
        assert doc is not None
        assert doc["schema"] == PLAN_SCHEMA
        assert "cluster" not in doc
        assert len(doc["node_losses"]) == 1


class TestValidation:
    def test_churn_rejects_negative_time(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(
                node_churn=(NodeChurn(node_id=0, down_at=-1.0),)).validate()

    def test_churn_rejects_nonpositive_duration(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(node_churn=(
                NodeChurn(node_id=0, down_at=1.0, duration=0.0),)).validate()

    def test_flap_requires_duration(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(slot_flaps=(
                SlotFlap(node_id=0, at=1.0, duration=-2.0),)).validate()

    def test_poison_probability_range(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(poison=(
                TenantPoison(tenant="a", probability=1.5),)).validate()

    def test_surge_factor_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(surges=(
                DemandSurge(at=0.0, duration=10.0, factor=0.0),)).validate()

    def test_protection_degrade_factor_range(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(protection=ProtectionConfig(
                degrade_queue=4, degrade_factor=1.0)).validate()

    def test_protection_rejects_negative_retries(self):
        with pytest.raises(FaultPlanError):
            cluster_plan(
                protection=ProtectionConfig(max_retries=-1)).validate()


class TestCannedChaos:
    @pytest.mark.parametrize("kind", sorted(CANNED_CHAOS))
    def test_every_canned_plan_validates(self, kind):
        plan = CANNED_CHAOS[kind]()
        plan.validate()
        assert plan.cluster is not None
        assert plan.to_dict()["schema"] == PLAN_SCHEMA_V2

    def test_node_churn_episodes_repeat(self):
        plan = node_churn_plan(node_id=2, at=10.0, duration=5.0, count=3,
                               every=50.0)
        churn = plan.cluster.node_churn
        assert [episode.down_at for episode in churn] == [10.0, 60.0, 110.0]
        assert all(episode.node_id == 2 for episode in churn)

    def test_slot_flap_episodes_repeat(self):
        plan = slot_flap_plan(node_id=1, at=5.0, duration=2.0, count=2,
                              every=20.0)
        assert [flap.at for flap in plan.cluster.slot_flaps] == [5.0, 25.0]

    def test_poison_plan_arms_breaker(self):
        plan = poison_tenant_plan(tenant="t0", probability=0.5)
        assert plan.cluster.protection.breaker_failures is not None
        assert plan.cluster.poison[0].tenant == "t0"

    def test_surge_plan_scopes_tenant(self):
        plan = surge_plan(at=10.0, duration=20.0, factor=2.0, tenant="t1")
        assert plan.cluster.surges[0].tenant == "t1"

    def test_overload_plan_composes_churn_and_surge(self):
        plan = overload_plan()
        assert plan.cluster.node_churn and plan.cluster.surges
        protection = plan.cluster.protection
        assert protection.max_queue is not None
        assert protection.degrade_queue is not None
