"""FaultInjector: seeded crash decisions, ordinals, wiring."""

import pytest

from repro.engine import SparkConf
from repro.faults import (
    FaultPlan,
    SpeculationConfig,
    TaskCrash,
    TaskCrashRate,
    hash01,
)
from tests.faults.conftest import make_fault_context


class TestHash01:
    def test_deterministic(self):
        assert hash01(7, "crash", 0, 3, 1) == hash01(7, "crash", 0, 3, 1)

    def test_in_unit_interval(self):
        for i in range(100):
            assert 0.0 <= hash01("x", i) < 1.0

    def test_sensitive_to_every_part(self):
        base = hash01(1, "crash", 0, 0, 0)
        assert hash01(2, "crash", 0, 0, 0) != base
        assert hash01(1, "crash", 1, 0, 0) != base
        assert hash01(1, "crash", 0, 1, 0) != base
        assert hash01(1, "crash", 0, 0, 1) != base


class TestCrashPoint:
    def test_explicit_crash_wins(self):
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=0, partition=3, attempt=0, at_fraction=0.25)
        ])
        ctx = make_fault_context(plan)
        injector = ctx.faults

        class FakeStage:
            stage_id = 17

        injector.on_stage_start(FakeStage)
        assert injector.crash_point(17, 3, 0) == 0.25
        assert injector.crash_point(17, 3, 1) is None  # retry survives
        assert injector.crash_point(17, 2, 0) is None

    def test_unknown_stage_never_crashes(self):
        plan = FaultPlan(crash_rate=TaskCrashRate(probability=1.0))
        ctx = make_fault_context(plan)
        assert ctx.faults.crash_point(999, 0, 0) is None

    def test_rate_respects_budget(self):
        plan = FaultPlan(crash_rate=TaskCrashRate(probability=1.0,
                                                  max_crashes=3))
        ctx = make_fault_context(plan)
        injector = ctx.faults

        class FakeStage:
            stage_id = 0

        injector.on_stage_start(FakeStage)
        crashed = [injector.crash_point(0, p, 0) for p in range(10)]
        assert sum(1 for c in crashed if c is not None) == 3
        # The first three consulted attempts used up the budget.
        assert all(c is not None for c in crashed[:3])
        assert all(0.0 <= c < 1.0 for c in crashed[:3])

    def test_rate_decisions_independent_of_consult_order(self):
        plan = FaultPlan(seed=5,
                         crash_rate=TaskCrashRate(probability=0.5,
                                                  max_crashes=100))

        class FakeStage:
            stage_id = 0

        def decisions(order):
            ctx = make_fault_context(plan)
            ctx.faults.on_stage_start(FakeStage)
            return {p: ctx.faults.crash_point(0, p, 0) is not None
                    for p in order}

        forward = decisions(range(8))
        backward = decisions(reversed(range(8)))
        assert forward == backward


class TestOrdinals:
    def test_first_seen_order(self):
        ctx = make_fault_context(FaultPlan())

        class S:
            def __init__(self, stage_id):
                self.stage_id = stage_id

        for stage_id in (40, 12, 40, 7):
            ctx.faults.on_stage_start(S(stage_id))
        assert ctx.faults._ordinals == {40: 0, 12: 1, 7: 2}


class TestWiring:
    def test_speculation_overrides_conf(self):
        plan = FaultPlan(speculation=SpeculationConfig(
            enabled=True, multiplier=1.5, quantile=0.5))
        ctx = make_fault_context(plan, conf=SparkConf())
        assert ctx.conf.get("spark.speculation") is True
        assert ctx.conf.get("spark.speculation.multiplier") == 1.5
        assert ctx.conf.get("spark.speculation.quantile") == 0.5

    def test_no_plan_means_no_injector(self):
        from tests.engine.conftest import make_context

        assert make_context().faults is None

    def test_bad_executor_id_raises(self):
        from repro.faults import ExecutorLoss

        plan = FaultPlan(executor_losses=[ExecutorLoss(executor_id=99, at=1.0)])
        ctx = make_fault_context(plan)  # 2 nodes -> executors 0..1
        with pytest.raises(ValueError, match="executor 99"):
            ctx.sim.run()
