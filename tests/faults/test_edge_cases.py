"""Fault-injector edge cases: boundary times, duplicate faults, total
crash rates, and overlapping fault kinds.

Each scenario must either finish with correct sorted output or abort
cleanly -- and the ones that finish must also replay invariant-clean
through the offline validator, since weird fault interleavings are
exactly where engine bookkeeping rots."""

import pytest

from repro.engine.scheduler import JobAbortedError
from repro.faults import (
    DiskDegrade,
    ExecutorLoss,
    FaultPlan,
    NodeLoss,
    TaskCrashRate,
)
from repro.observability.history import load_events
from repro.observability.sinks import JsonLinesSink
from repro.observability.tracer import Tracer
from repro.validation import validate_events
from tests.faults.conftest import run_small_terasort, sorted_output_keys


def _assert_sorted_output(ctx, workload):
    keys = sorted_output_keys(ctx, workload)
    assert keys == sorted(keys) and len(keys) == 200


class TestFaultAtTimeZero:
    def test_node_loss_at_t0_still_completes(self):
        plan = FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.0)])
        ctx, workload = run_small_terasort(plan)
        _assert_sorted_output(ctx, workload)
        assert ctx.metrics.counter("faults.node_losses").value == 1
        # The whole job ran on the surviving node's executor.
        assert ctx.executors[1].alive is False

    def test_executor_loss_at_t0_still_completes(self):
        plan = FaultPlan(executor_losses=[ExecutorLoss(executor_id=1, at=0.0)])
        ctx, workload = run_small_terasort(plan)
        _assert_sorted_output(ctx, workload)
        assert ctx.metrics.counter("faults.executor_losses").value == 1


class TestDuplicateNodeLoss:
    def test_second_loss_of_same_node_is_a_noop(self):
        plan = FaultPlan(node_losses=[
            NodeLoss(node_id=1, at=0.10),
            NodeLoss(node_id=1, at=0.12),
        ])
        ctx, workload = run_small_terasort(plan)
        _assert_sorted_output(ctx, workload)
        # Only the first loss takes effect; the dead node stays dead.
        assert ctx.metrics.counter("faults.node_losses").value == 1

    def test_duplicate_loss_timeline_matches_single_loss(self):
        single = FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.10)])
        double = FaultPlan(node_losses=[
            NodeLoss(node_id=1, at=0.10),
            NodeLoss(node_id=1, at=0.12),
        ])
        ctx_single, _ = run_small_terasort(single)
        ctx_double, _ = run_small_terasort(double)
        assert ctx_single.total_runtime == ctx_double.total_runtime


class TestTotalCrashRate:
    def test_crash_rate_one_exhausts_max_failures_and_aborts(self):
        # probability=1.0 with an uncapped budget crashes every attempt,
        # including retries, so some partition must hit maxFailures.
        plan = FaultPlan(crash_rate=TaskCrashRate(probability=1.0,
                                                  max_crashes=10_000))
        with pytest.raises(JobAbortedError) as info:
            run_small_terasort(plan)
        assert "maxFailures" in str(info.value)

    def test_abort_is_counted_and_mentions_the_budget(self):
        from repro.workloads import Terasort
        from tests.faults.conftest import make_fault_context

        plan = FaultPlan(crash_rate=TaskCrashRate(probability=1.0,
                                                  max_crashes=10_000))
        ctx = make_fault_context(plan)
        workload = Terasort(num_partitions=4)
        workload.prepare_small(ctx, num_records=200)
        with pytest.raises(JobAbortedError):
            workload.execute(ctx)
        assert ctx.metrics.counter("scheduler.jobs_aborted").value == 1
        assert ctx.metrics.counter("scheduler.task_failures").value >= 4


class TestOverlappingFaults:
    def test_disk_degrade_overlapping_node_loss(self):
        # The degraded node dies mid-episode; the episode's end event then
        # fires against a dead node and must be a clean no-op.
        plan = FaultPlan(
            disk_degradations=[
                DiskDegrade(node_id=1, at=0.05, duration=0.20, factor=0.25)
            ],
            node_losses=[NodeLoss(node_id=1, at=0.10)],
        )
        ctx, workload = run_small_terasort(plan)
        _assert_sorted_output(ctx, workload)
        assert ctx.metrics.counter("faults.disk-degrades").value == 1
        assert ctx.metrics.counter("faults.node_losses").value == 1
        # The reciprocal end-of-episode scaling was skipped: the dead
        # node's disk still carries the degraded factor.
        assert ctx.cluster.node(1).disk.speed_factor == pytest.approx(0.25)

    def test_degrade_starting_after_node_loss_is_a_noop(self):
        plan = FaultPlan(
            node_losses=[NodeLoss(node_id=1, at=0.05)],
            disk_degradations=[
                DiskDegrade(node_id=1, at=0.10, duration=0.05, factor=0.25)
            ],
        )
        ctx, workload = run_small_terasort(plan)
        _assert_sorted_output(ctx, workload)
        assert ctx.metrics.counter("faults.disk-degrades").value == 0
        assert ctx.cluster.node(1).disk.speed_factor == pytest.approx(1.0)


class TestEdgeCasesStayInvariantClean:
    @pytest.mark.parametrize("plan", [
        FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.0)]),
        FaultPlan(node_losses=[NodeLoss(node_id=1, at=0.10),
                               NodeLoss(node_id=1, at=0.12)]),
        FaultPlan(disk_degradations=[
            DiskDegrade(node_id=1, at=0.05, duration=0.20, factor=0.25)],
            node_losses=[NodeLoss(node_id=1, at=0.10)]),
    ], ids=["t0-node-loss", "duplicate-node-loss", "degrade-over-loss"])
    def test_event_log_replays_clean(self, plan, tmp_path):
        log_path = str(tmp_path / "events.jsonl")
        tracer = Tracer(sinks=[JsonLinesSink(log_path)])
        run_small_terasort(plan, tracer=tracer)
        tracer.close()
        report = validate_events(load_events(log_path), max_failures=4)
        assert report.ok, report.summary()
        assert not report.strict  # fault events relax to tolerant mode
