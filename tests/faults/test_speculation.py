"""Speculative execution: faster under stragglers, never changes results."""

import pytest

from repro.faults import FaultPlan, SpeculationConfig, Straggler
from repro.faults.plan import straggler_plan
from repro.harness.runner import run_workload
from tests.faults.conftest import run_small_terasort, sorted_output_keys


def small_straggler_plan(speculation: bool) -> FaultPlan:
    return FaultPlan(
        stragglers=[Straggler(node_id=1, at=0.05, duration=1.0,
                              cpu_factor=0.2, disk_factor=0.2)],
        speculation=SpeculationConfig(enabled=speculation),
    )


class TestResultsUnchanged:
    def test_speculation_preserves_sorted_output(self):
        ctx_off, wl_off = run_small_terasort(small_straggler_plan(False))
        ctx_on, wl_on = run_small_terasort(small_straggler_plan(True))
        keys_off = sorted_output_keys(ctx_off, wl_off)
        keys_on = sorted_output_keys(ctx_on, wl_on)
        assert keys_on == keys_off
        assert keys_on == sorted(keys_on)
        assert len(keys_on) == 200


class TestRuntimeWin:
    @pytest.fixture(scope="class")
    def straggler_runs(self):
        # Small static pools make tasks run in waves; a last-wave task on
        # the slow node then has a 4x-faster twin worth launching.  (With
        # oversubscribed pools every task starts at t=0 and the whole slow
        # node finishes at once -- nothing left to speculate against.)
        kwargs = dict(workload_kwargs={"scale": 0.05}, num_nodes=2,
                      policy=("static", 4))
        off = run_workload(
            "terasort",
            fault_plan=straggler_plan(node_id=1, at=10.0, duration=400.0,
                                      factor=0.25, speculation=False),
            **kwargs,
        )
        on = run_workload(
            "terasort",
            fault_plan=straggler_plan(node_id=1, at=10.0, duration=400.0,
                                      factor=0.25, speculation=True),
            **kwargs,
        )
        return off, on

    def test_speculation_reduces_runtime(self, straggler_runs):
        off, on = straggler_runs
        assert on.runtime < off.runtime

    def test_speculative_copies_win_at_least_once(self, straggler_runs):
        _off, on = straggler_runs
        assert on.ctx.metrics.counter("speculation.launched").value >= 1
        assert on.ctx.metrics.counter("speculation.wins").value >= 1

    def test_no_speculation_without_enablement(self, straggler_runs):
        off, _on = straggler_runs
        assert off.ctx.metrics.counter("speculation.launched").value == 0
