"""Determinism guarantees: same plan + seed => bit-identical event logs."""

import io

from repro.faults import ExecutorLoss, FaultPlan, TaskCrashRate
from repro.observability.sinks import JsonLinesSink
from repro.observability.tracer import Tracer
from tests.faults.conftest import run_small_terasort


def traced_log(plan) -> str:
    stream = io.StringIO()
    run_small_terasort(plan, tracer=Tracer(sinks=[JsonLinesSink(stream)]))
    return stream.getvalue()


def make_chaos_plan() -> FaultPlan:
    return FaultPlan(
        seed=11,
        crash_rate=TaskCrashRate(probability=0.2, max_crashes=4),
        executor_losses=[ExecutorLoss(executor_id=1, at=0.15)],
    )


class TestIdenticalLogs:
    def test_same_plan_and_seed_give_identical_logs(self):
        assert traced_log(make_chaos_plan()) == traced_log(make_chaos_plan())

    def test_empty_plan_runs_are_identical(self):
        assert traced_log(FaultPlan()) == traced_log(FaultPlan())

    def test_plan_seed_changes_the_timeline(self):
        """Different crash seeds crash different attempts."""
        a = make_chaos_plan()
        b = make_chaos_plan()
        b.seed = 12
        assert traced_log(a) != traced_log(b)

    def test_faults_actually_perturb_the_run(self):
        assert traced_log(make_chaos_plan()) != traced_log(FaultPlan())
