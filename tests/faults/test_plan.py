"""FaultPlan wire format: round-trips, validation, canned builders."""

import pytest

from repro.faults import (
    CANNED_PLANS,
    DiskDegrade,
    ExecutorLoss,
    FaultPlan,
    FaultPlanError,
    NodeLoss,
    PLAN_SCHEMA,
    SpeculationConfig,
    Straggler,
    TaskCrash,
    TaskCrashRate,
)


def full_plan():
    return FaultPlan(
        seed=7,
        task_crashes=[TaskCrash(stage_ordinal=0, partition=3, attempt=0,
                                at_fraction=0.25)],
        crash_rate=TaskCrashRate(probability=0.1, max_crashes=4),
        executor_losses=[ExecutorLoss(executor_id=1, at=30.0)],
        node_losses=[NodeLoss(node_id=0, at=45.0)],
        disk_degradations=[DiskDegrade(node_id=1, at=5.0, duration=20.0,
                                       factor=0.5)],
        stragglers=[Straggler(node_id=1, at=10.0, duration=60.0,
                              cpu_factor=0.3, disk_factor=0.4)],
        speculation=SpeculationConfig(enabled=True, multiplier=1.5,
                                      quantile=0.5),
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        plan = full_plan()
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.to_dict() == plan.to_dict()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = full_plan()
        plan.save(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_empty_plan_round_trip(self):
        plan = FaultPlan()
        assert plan.is_empty
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.is_empty
        assert clone == plan

    def test_dict_has_schema_marker(self):
        assert full_plan().to_dict()["schema"] == PLAN_SCHEMA


class TestValidation:
    def test_wrong_schema_rejected(self):
        payload = full_plan().to_dict()
        payload["schema"] = "repro.faults/99"
        with pytest.raises(FaultPlanError, match="schema"):
            FaultPlan.from_dict(payload)

    def test_unknown_field_rejected(self):
        payload = full_plan().to_dict()
        payload["gremlins"] = True
        with pytest.raises(FaultPlanError, match="gremlins"):
            FaultPlan.from_dict(payload)

    def test_unknown_entry_field_rejected(self):
        payload = FaultPlan(node_losses=[NodeLoss(0, 1.0)]).to_dict()
        payload["node_losses"][0]["rack"] = 3
        with pytest.raises(FaultPlanError, match="NodeLoss"):
            FaultPlan.from_dict(payload)

    def test_duplicate_task_crash_rejected(self):
        plan = FaultPlan(task_crashes=[
            TaskCrash(stage_ordinal=1, partition=2),
            TaskCrash(stage_ordinal=1, partition=2),
        ])
        with pytest.raises(FaultPlanError, match="duplicate"):
            plan.validate()

    def test_not_json_rejected(self):
        with pytest.raises(FaultPlanError, match="JSON"):
            FaultPlan.from_json("{nope")

    @pytest.mark.parametrize("bad", [
        FaultPlan(crash_rate=TaskCrashRate(probability=1.5)),
        FaultPlan(task_crashes=[TaskCrash(0, 0, at_fraction=2.0)]),
        FaultPlan(executor_losses=[ExecutorLoss(executor_id=-1, at=1.0)]),
        FaultPlan(node_losses=[NodeLoss(node_id=0, at=-5.0)]),
        FaultPlan(disk_degradations=[DiskDegrade(0, 1.0, duration=0.0)]),
        FaultPlan(stragglers=[Straggler(0, 1.0, 10.0, cpu_factor=0.0)]),
        FaultPlan(speculation=SpeculationConfig(multiplier=1.0)),
    ])
    def test_out_of_range_values_rejected(self, bad):
        with pytest.raises(FaultPlanError):
            bad.validate()


class TestCannedPlans:
    def test_every_canned_plan_validates_and_round_trips(self):
        for name, builder in CANNED_PLANS.items():
            plan = builder()
            plan.validate()
            assert FaultPlan.from_json(plan.to_json()) == plan, name
            assert not plan.is_empty, name

    def test_straggler_plan_speculation_toggle(self):
        assert CANNED_PLANS["stragglers"]().speculation.enabled
        assert CANNED_PLANS["stragglers"](speculation=False).speculation is None
