"""Shared helpers for fault-injection tests.

Fault experiments compare against an *empty-plan* baseline, not a no-plan
run: a context with any plan (even an empty one) stops the simulator at
job completion instead of draining the queue between jobs, which shifts
the timeline.  See FAULTS.md.
"""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine import SparkConf, SparkContext
from repro.faults import FaultPlan
from repro.workloads import Terasort


def make_fault_context(plan, num_nodes=2, cores=4, conf=None, tracer=None,
                       seed=42):
    spec = ClusterSpec(
        num_nodes=num_nodes,
        node=NodeSpec(cores=cores),
        disk_sigma=0.0,
        cpu_sigma=0.0,
        seed=seed,
    )
    return SparkContext(
        Cluster(spec),
        conf=conf if conf is not None else SparkConf(),
        tracer=tracer,
        fault_plan=plan,
    )


def run_small_terasort(plan, num_records=200, tracer=None, conf=None):
    """Materialised terasort under ``plan``; returns (ctx, workload)."""
    ctx = make_fault_context(plan, conf=conf, tracer=tracer)
    workload = Terasort(num_partitions=4)
    workload.prepare_small(ctx, num_records=num_records)
    workload.execute(ctx)
    return ctx, workload


def sorted_output_keys(ctx, workload):
    output = ctx.datasets.describe(workload.output_path)
    assert output.records_available
    return [k for k, _v in output.data]


@pytest.fixture
def empty_plan():
    return FaultPlan()
