"""Property-based tests on DFS invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import DistributedFileSystem


@settings(max_examples=50, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=16),
    size=st.floats(min_value=0.0, max_value=1e12),
    block_size=st.floats(min_value=1e6, max_value=256e6),
)
def test_blocks_cover_exact_file_size(nodes, size, block_size):
    dfs = DistributedFileSystem(list(range(nodes)), block_size=block_size)
    dfs_file = dfs.create("/f", size)
    assert sum(b.size for b in dfs_file.blocks) == pytest.approx(size)
    for block in dfs_file.blocks:
        assert block.size <= block_size * (1 + 1e-9)


@settings(max_examples=50, deadline=None)
@given(
    nodes=st.integers(min_value=2, max_value=16),
    replication=st.integers(min_value=1, max_value=16),
    size=st.floats(min_value=1.0, max_value=1e11),
)
def test_replicas_distinct_and_counted(nodes, replication, size):
    if replication > nodes:
        replication = nodes
    dfs = DistributedFileSystem(list(range(nodes)), replication=replication)
    dfs_file = dfs.create("/f", size)
    for block in dfs_file.blocks:
        assert len(block.replicas) == replication
        assert len(set(block.replicas)) == replication


@settings(max_examples=50, deadline=None)
@given(
    size=st.floats(min_value=1.0, max_value=1e11),
    partitions=st.integers(min_value=1, max_value=64),
)
def test_partition_split_conserves_bytes(size, partitions):
    dfs = DistributedFileSystem([0, 1, 2, 3])
    dfs.create("/f", size)
    splits = dfs.split_for_partitions("/f", partitions)
    assert len(splits) == partitions
    assert sum(s["bytes"] for s in splits) == pytest.approx(size, rel=1e-9)
    for split in splits:
        assert split["preferred_nodes"]
