"""Tests for the HDD/SSD device models."""

import pytest

from repro.simulation import Simulator
from repro.storage import HDD_PROFILE, SSD_PROFILE, DeviceProfile, StorageDevice
from repro.storage.device import MiB


def run_request(sim, device, size, op):
    done = {}
    event = device.request(size, op)
    event.add_callback(lambda e: done.setdefault("t", sim.now))
    sim.run()
    return done["t"]


class TestDeviceProfile:
    def test_efficiency_is_one_for_single_stream(self):
        assert HDD_PROFILE.efficiency("read", 1) == 1.0
        assert SSD_PROFILE.efficiency("write", 1) == 1.0

    def test_hdd_efficiency_decays_with_concurrency(self):
        values = [HDD_PROFILE.efficiency("read", k) for k in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.4  # collapses to roughly a third at 32 streams

    def test_ssd_read_efficiency_nearly_flat(self):
        assert SSD_PROFILE.efficiency("read", 32) > 0.9

    def test_ssd_write_decays_more_than_read(self):
        assert SSD_PROFILE.efficiency("write", 32) < SSD_PROFILE.efficiency("read", 32)

    def test_ssd_write_rate_below_read_rate(self):
        assert SSD_PROFILE.write_rate < SSD_PROFILE.read_rate

    def test_ssd_much_lower_latency_than_hdd(self):
        assert SSD_PROFILE.read_latency < HDD_PROFILE.read_latency / 10

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            HDD_PROFILE.rate("append")

    def test_bad_concurrency_rejected(self):
        with pytest.raises(ValueError):
            HDD_PROFILE.efficiency("read", 0)


class TestStorageDevice:
    def test_single_read_takes_latency_plus_transfer(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        t = run_request(sim, disk, 150.0 * MiB, "read")
        assert t == pytest.approx(HDD_PROFILE.read_latency + 1.0, rel=1e-6)

    def test_speed_factor_scales_both_latency_and_bandwidth(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE, speed_factor=2.0)
        t = run_request(sim, disk, 150.0 * MiB, "read")
        assert t == pytest.approx(HDD_PROFILE.read_latency / 2 + 0.5, rel=1e-6)

    def test_concurrent_hdd_reads_lose_aggregate_bandwidth(self):
        def stage_time(streams):
            sim = Simulator()
            disk = StorageDevice(sim, "d", HDD_PROFILE)
            total = 1200.0 * MiB
            for _ in range(streams):
                disk.request(total / streams, "read")
            sim.run()
            return sim.now

        # With zero CPU interleaving, more streams means more seek thrash:
        # the same total volume takes longer at higher concurrency.
        assert stage_time(2) < stage_time(8) < stage_time(32)

    def test_concurrent_ssd_reads_keep_aggregate_bandwidth(self):
        def stage_time(streams):
            sim = Simulator()
            disk = StorageDevice(sim, "d", SSD_PROFILE)
            total = 2000.0 * MiB
            for _ in range(streams):
                disk.request(total / streams, "read")
            sim.run()
            return sim.now

        assert stage_time(32) < stage_time(2) * 1.1

    def test_read_write_byte_accounting(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        disk.request(10.0 * MiB, "read")
        disk.request(5.0 * MiB, "write")
        sim.run()
        assert disk.bytes_read == pytest.approx(10.0 * MiB)
        assert disk.bytes_written == pytest.approx(5.0 * MiB)
        assert disk.total_bytes == pytest.approx(15.0 * MiB)

    def test_zero_byte_request_completes(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", SSD_PROFILE)
        event = disk.request(0.0, "write")
        sim.run()
        assert event.triggered

    def test_invalid_op_rejected(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        with pytest.raises(ValueError):
            disk.request(1.0, "scan")

    def test_negative_size_rejected(self):
        sim = Simulator()
        disk = StorageDevice(sim, "d", HDD_PROFILE)
        with pytest.raises(ValueError):
            disk.request(-1.0, "read")

    def test_nonpositive_speed_factor_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            StorageDevice(sim, "d", HDD_PROFILE, speed_factor=0.0)

    def test_custom_profile_round_trip(self):
        profile = DeviceProfile(
            name="nvme",
            read_rate=3000.0 * MiB,
            write_rate=2000.0 * MiB,
            read_alpha=0.0,
            write_alpha=0.001,
            p=1.0,
            read_latency=0.00005,
            write_latency=0.0001,
        )
        assert profile.efficiency("read", 32) == 1.0
        assert profile.latency("write") == 0.0001
