"""Tests for the HDFS-like distributed filesystem."""

import pytest

from repro.storage import DistributedFileSystem


def make_dfs(nodes=4, replication=None, block_size=128 * 1024 * 1024):
    return DistributedFileSystem(
        node_ids=list(range(nodes)), replication=replication, block_size=block_size
    )


class TestCreate:
    def test_file_split_into_blocks(self):
        dfs = make_dfs(block_size=100.0)
        f = dfs.create("/data", 350.0)
        assert f.num_blocks == 4
        assert [b.size for b in f.blocks] == [100.0, 100.0, 100.0, 50.0]

    def test_full_replication_places_on_all_nodes(self):
        dfs = make_dfs(nodes=4)  # replication defaults to cluster size
        f = dfs.create("/data", 10.0)
        assert sorted(f.blocks[0].replicas) == [0, 1, 2, 3]

    def test_writer_node_gets_primary_replica(self):
        dfs = make_dfs(nodes=4, replication=2)
        f = dfs.create("/out", 10.0, writer_node=3)
        assert f.blocks[0].replicas[0] == 3

    def test_replicas_are_distinct_nodes(self):
        dfs = make_dfs(nodes=4, replication=3)
        f = dfs.create("/x", 1000.0, writer_node=1)
        for block in f.blocks:
            assert len(set(block.replicas)) == len(block.replicas) == 3

    def test_primaries_rotate_without_writer(self):
        dfs = make_dfs(nodes=4, replication=1, block_size=10.0)
        f = dfs.create("/in", 40.0)
        primaries = [b.replicas[0] for b in f.blocks]
        assert len(set(primaries)) == 4

    def test_duplicate_path_rejected(self):
        dfs = make_dfs()
        dfs.create("/a", 1.0)
        with pytest.raises(FileExistsError):
            dfs.create("/a", 1.0)

    def test_zero_byte_file_has_one_empty_block(self):
        dfs = make_dfs()
        f = dfs.create("/empty", 0.0)
        assert f.num_blocks == 1
        assert f.blocks[0].size == 0.0

    def test_negative_size_rejected(self):
        dfs = make_dfs()
        with pytest.raises(ValueError):
            dfs.create("/bad", -5.0)

    def test_unknown_writer_rejected(self):
        dfs = make_dfs(nodes=2, replication=1)
        with pytest.raises(ValueError):
            dfs.create("/bad", 1.0, writer_node=99)

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            make_dfs(nodes=2, replication=3)

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            DistributedFileSystem(node_ids=[])


class TestReadPath:
    def test_status_and_exists(self):
        dfs = make_dfs()
        dfs.create("/a", 123.0)
        assert dfs.exists("/a")
        assert not dfs.exists("/b")
        assert dfs.status("/a").size == 123.0

    def test_missing_file_raises(self):
        dfs = make_dfs()
        with pytest.raises(FileNotFoundError):
            dfs.status("/nope")

    def test_delete(self):
        dfs = make_dfs()
        dfs.create("/a", 1.0)
        dfs.delete("/a")
        assert not dfs.exists("/a")
        with pytest.raises(FileNotFoundError):
            dfs.delete("/a")

    def test_split_for_partitions_conserves_bytes(self):
        dfs = make_dfs(block_size=64.0)
        dfs.create("/data", 1000.0)
        splits = dfs.split_for_partitions("/data", 7)
        assert sum(s["bytes"] for s in splits) == pytest.approx(1000.0)

    def test_split_partitions_have_locality(self):
        dfs = make_dfs(nodes=4)
        dfs.create("/data", 10_000.0)
        for split in dfs.split_for_partitions("/data", 8):
            assert split["preferred_nodes"]

    def test_split_with_partial_replication_is_block_accurate(self):
        dfs = make_dfs(nodes=4, replication=1, block_size=100.0)
        dfs.create("/data", 400.0)
        splits = dfs.split_for_partitions("/data", 4)
        # Partition i exactly overlaps block i, so locality is its primary.
        primaries = [b.replicas[0] for b in dfs.locations("/data")]
        for split, primary in zip(splits, primaries):
            assert split["preferred_nodes"] == (primary,)

    def test_split_requires_positive_partitions(self):
        dfs = make_dfs()
        dfs.create("/data", 10.0)
        with pytest.raises(ValueError):
            dfs.split_for_partitions("/data", 0)

    def test_total_stored_bytes(self):
        dfs = make_dfs()
        dfs.create("/a", 10.0)
        dfs.create("/b", 32.0)
        assert dfs.total_stored_bytes() == pytest.approx(42.0)
        assert dfs.files == ["/a", "/b"]
