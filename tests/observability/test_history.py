"""History-server tests: reconstruction must match the live recorder."""

import io
import json
import math

import pytest

from repro.harness.runner import finish_trace, run_workload
from repro.observability.chrome import ChromeTraceSink, validate_chrome_trace
from repro.observability.history import load_events, reconstruct
from repro.observability.sinks import JsonLinesSink, MemorySink
from repro.observability.tracer import Tracer


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One dynamic-policy Terasort run with all three sinks attached."""
    directory = tmp_path_factory.mktemp("trace")
    paths = {
        "events": str(directory / "events.jsonl"),
        "chrome": str(directory / "chrome.json"),
    }
    memory = MemorySink()
    tracer = Tracer(sinks=[
        memory,
        JsonLinesSink(paths["events"]),
        ChromeTraceSink(paths["chrome"]),
    ])
    run = run_workload("terasort", policy="dynamic", tracer=tracer,
                       workload_kwargs={"scale": 0.05})
    finish_trace(run)
    return run, memory, paths


class TestReconstruction:
    def test_total_runtime_matches_recorder_exactly(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        assert report.total_runtime == run.ctx.recorder.total_runtime

    def test_stages_match_recorder_exactly(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        records = run.ctx.recorder.stages
        assert len(report.stages) == len(records)
        for stage, record in zip(report.stages, records):
            assert stage.stage_id == record.stage_id
            assert stage.name == record.name
            assert stage.is_io_marked == record.is_io_marked
            assert stage.start_time == record.start_time
            assert stage.end_time == record.end_time
            assert stage.duration == record.duration
            assert stage.num_tasks == record.num_tasks
            assert stage.tasks_seen == len(record.tasks)

    def test_final_pool_sizes_match_recorder(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        for stage, record in zip(report.stages, run.ctx.recorder.stages):
            assert stage.final_pool_sizes == record.final_pool_sizes()

    def test_pool_decisions_match_pool_events(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        recorded = [event for record in run.ctx.recorder.stages
                    for event in record.pool_events]
        assert len(report.pool_decisions) == len(recorded)
        for decision, event in zip(report.pool_decisions, recorded):
            assert decision.time == event.time
            assert decision.executor_id == event.executor_id
            assert decision.stage_id == event.stage_id
            assert decision.pool_size == event.pool_size
            assert decision.reason == event.reason

    def test_zeta_trajectory_covers_all_intervals(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        recorded = [interval for record in run.ctx.recorder.stages
                    for interval in record.intervals]
        recorded.sort(key=lambda i: i.end_time)
        assert len(report.intervals) == len(recorded)
        for history, record in zip(report.intervals, recorded):
            assert history.executor_id == record.executor_id
            assert history.threads == record.threads
            assert history.decision == record.decision
        trajectory = report.zeta_trajectory(executor_id=0)
        assert trajectory
        assert all(i.executor_id == 0 for i in trajectory)

    def test_application_metadata_recovered(self, traced_run):
        run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        assert report.application["num_nodes"] == run.ctx.cluster.num_nodes

    def test_metrics_snapshot_in_log(self, traced_run):
        _run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        assert report.metrics is not None
        assert report.metrics["run.stages"]["value"] == len(report.stages)

    def test_report_to_dict_is_json_serialisable(self, traced_run):
        _run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        round_tripped = json.loads(json.dumps(report.to_dict()))
        assert round_tripped["total_runtime"] == report.total_runtime

    def test_stage_lookup(self, traced_run):
        _run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        assert report.stage(0).stage_id == 0
        with pytest.raises(KeyError):
            report.stage(999)


class TestChromeExport:
    def test_chrome_trace_validates(self, traced_run):
        _run, _memory, paths = traced_run
        assert validate_chrome_trace(paths["chrome"]) > 0

    def test_chrome_trace_has_executor_tracks(self, traced_run):
        _run, _memory, paths = traced_run
        with open(paths["chrome"], encoding="utf-8") as stream:
            doc = json.load(stream)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert any("executor" in n for n in names)

    def test_invalid_document_rejected(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})


class TestLoadEvents:
    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "schema": "other/9"}\n')
        with pytest.raises(ValueError, match="schema"):
            load_events(str(path))

    def test_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0, "seq": 0, "kind": "I"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_events(str(path))

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '\n{"ts":0,"seq":0,"kind":"I","cat":"a","name":"b"}\n\n'
        )
        assert len(load_events(str(path))) == 1


GOOD_LINE = '{"ts":0,"seq":0,"kind":"I","cat":"a","name":"b"}\n'


class TestTruncatedLogs:
    def test_partial_trailing_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(GOOD_LINE + '{"ts": 1, "seq": 1, "ki')
        warnings = []
        events = load_events(str(path), allow_truncated=True,
                             warn=warnings.append)
        assert len(events) == 1
        assert len(warnings) == 1 and "truncated" in warnings[0]

    def test_valid_json_but_partial_event_skipped(self, tmp_path):
        # A line can be complete JSON yet still a torn write (missing keys).
        path = tmp_path / "truncated.jsonl"
        path.write_text(GOOD_LINE + '{"ts": 1}\n')
        warnings = []
        events = load_events(str(path), allow_truncated=True,
                             warn=warnings.append)
        assert len(events) == 1
        assert warnings

    def test_strict_mode_still_raises(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(GOOD_LINE + '{"ts": 1, "seq"')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_events(str(path))

    def test_corruption_before_final_line_raises(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        path.write_text(GOOD_LINE + "garbage\n" + GOOD_LINE)
        with pytest.raises(ValueError, match="not valid JSON"):
            load_events(str(path), allow_truncated=True)

    def test_lone_malformed_line_is_not_truncation(self, tmp_path):
        # A wrong-format file (no valid events at all) must still error.
        path = tmp_path / "not-a-log.json"
        path.write_text('{"traceEvents": []}\n')
        with pytest.raises(ValueError, match="not a trace event"):
            load_events(str(path), allow_truncated=True)

    def test_default_warning_goes_to_stderr(self, tmp_path, capsys):
        path = tmp_path / "truncated.jsonl"
        path.write_text(GOOD_LINE + '{"ts')
        load_events(str(path), allow_truncated=True)
        assert "warning:" in capsys.readouterr().err


class TestOpenSpans:
    def test_complete_log_reports_no_open_spans(self, traced_run):
        _run, _memory, paths = traced_run
        report = reconstruct(load_events(paths["events"]))
        assert report.open_spans == {}

    def test_truncated_log_counts_open_spans_by_category(self, traced_run):
        _run, _memory, paths = traced_run
        events = load_events(paths["events"])
        # Chop the log mid-run: spans begun before the cut stay open.
        report = reconstruct(events[:len(events) // 2])
        assert report.open_spans
        assert "stage" in report.open_spans
        assert all(count > 0 for count in report.open_spans.values())
        as_dict = report.to_dict()
        assert as_dict["open_spans"] == report.open_spans


class TestInfinityHandling:
    def test_infinite_zeta_round_trips_through_json(self):
        stream = io.StringIO()
        tracer = Tracer(sinks=[JsonLinesSink(stream)])
        tracer.complete("mapek", "interval", 0.0, 1.0,
                        executor_id=0, stage_id=0, threads=2,
                        zeta="inf", decision="hold")
        tracer.close()
        stream.seek(0)
        lines = [json.loads(l) for l in stream.read().splitlines() if l]
        # The log itself must stay valid JSON (no bare Infinity token).
        report = reconstruct(
            [e for e in map(_parse, lines) if e is not None]
        )
        assert math.isinf(report.intervals[0].zeta)


def _parse(doc):
    from repro.observability.events import TraceEvent
    if doc.get("kind") == "meta":
        return None
    return TraceEvent.from_json(doc)
