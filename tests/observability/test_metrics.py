"""Metrics registry unit tests and end-of-run collection."""

import math

import pytest

from repro.harness.runner import run_workload
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2.0)
        assert gauge.snapshot() == {"type": "gauge", "value": 2.0}

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0

    def test_histogram_isolates_non_finite(self):
        hist = Histogram()
        hist.observe(float("inf"))
        hist.observe(float("nan"))
        hist.observe(1.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["non_finite"] == 2
        assert math.isfinite(snap["sum"])

    def test_empty_histogram_snapshot_is_finite(self):
        snap = Histogram().snapshot()
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["mean"] == 0.0


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.0)
        assert list(registry.snapshot()) == ["a", "b"]


class TestCollectRunMetrics:
    def test_snapshot_covers_hardware_and_run(self):
        run = run_workload("terasort", policy="dynamic",
                           workload_kwargs={"scale": 0.02})
        snapshot = collect_run_metrics(run.ctx)
        assert snapshot["run.simulated_seconds"]["value"] == run.runtime
        assert snapshot["run.stages"]["value"] == len(run.stages)
        assert snapshot["node.0.disk.bytes_read"]["value"] > 0
        assert snapshot["network.bytes_total"]["value"] >= 0
        assert 0.0 <= snapshot["node.0.nic.out.utilization"]["value"] <= 1.0
        # Live instrumentation fed the same registry during the run.
        assert snapshot["scheduler.tasks_launched"]["value"] > 0
        assert snapshot["tasks.completed"]["value"] > 0
        assert snapshot["mapek.intervals"]["value"] > 0
        assert snapshot["mapek.zeta"]["type"] == "histogram"
        assert snapshot["executor.0.pool_size"]["value"] >= 1
