"""Metrics registry unit tests and end-of-run collection."""

import math

import pytest

from repro.harness.runner import run_workload
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2.0)
        assert gauge.snapshot() == {"type": "gauge", "value": 2.0}

    def test_histogram_summary(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0

    def test_histogram_isolates_non_finite(self):
        hist = Histogram()
        hist.observe(float("inf"))
        hist.observe(float("nan"))
        hist.observe(1.0)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["non_finite"] == 2
        assert math.isfinite(snap["sum"])

    def test_empty_histogram_snapshot_is_finite(self):
        snap = Histogram().snapshot()
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0
        assert snap["mean"] == 0.0


class TestHistogramPercentiles:
    """The fixed-bucket percentile math behind profile distributions."""

    def test_empty_histogram_percentile_is_zero(self):
        hist = Histogram()
        assert hist.percentile(0.5) == 0.0
        assert hist.percentile(0.99) == 0.0

    def test_quantile_out_of_range_rejected(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(1.1)

    def test_single_sample_reported_exactly(self):
        hist = Histogram()
        hist.observe(3.7)
        # Clamping to [min, max] collapses the bucket to the one sample.
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.percentile(q) == 3.7

    def test_bucket_boundary_value_lands_in_its_bucket(self):
        from repro.observability.metrics import BUCKET_EDGES
        from bisect import bisect_left

        hist = Histogram()
        hist.observe(1.0)  # exactly a bucket's upper edge
        index = bisect_left(BUCKET_EDGES, 1.0)
        assert BUCKET_EDGES[index] == 1.0  # inclusive upper bound
        assert hist.buckets == {index: 1}
        assert hist.percentile(1.0) == 1.0

    def test_percentiles_are_monotone_and_bounded(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        p50, p90, p99 = (hist.percentile(q) for q in (0.50, 0.90, 0.99))
        assert hist.min <= p50 <= p90 <= p99 <= hist.max
        # 1-2-5 buckets bound relative error to the bucket width (2.5x).
        assert 20.0 <= p50 <= 100.0

    def test_overflow_bucket_clamps_to_observed_max(self):
        from repro.observability.metrics import BUCKET_EDGES

        hist = Histogram()
        huge = BUCKET_EDGES[-1] * 10.0
        hist.observe(huge)
        assert hist.buckets == {len(BUCKET_EDGES): 1}
        assert hist.percentile(0.99) == huge

    def test_identical_observations_identical_snapshots(self):
        first, second = Histogram(), Histogram()
        for value in (0.003, 1.0, 17.5, 17.5, 400.0):
            first.observe(value)
            second.observe(value)
        assert first.snapshot() == second.snapshot()
        assert first.summary() == second.summary()

    def test_summary_is_snapshot_minus_bookkeeping(self):
        hist = Histogram()
        hist.observe(2.0)
        snap, summary = hist.snapshot(), hist.summary()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p90", "p99"}
        for key in summary:
            assert summary[key] == snap[key]


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(1.0)
        assert list(registry.snapshot()) == ["a", "b"]


class TestCollectRunMetrics:
    def test_snapshot_covers_hardware_and_run(self):
        run = run_workload("terasort", policy="dynamic",
                           workload_kwargs={"scale": 0.02})
        snapshot = collect_run_metrics(run.ctx)
        assert snapshot["run.simulated_seconds"]["value"] == run.runtime
        assert snapshot["run.stages"]["value"] == len(run.stages)
        assert snapshot["node.0.disk.bytes_read"]["value"] > 0
        assert snapshot["network.bytes_total"]["value"] >= 0
        assert 0.0 <= snapshot["node.0.nic.out.utilization"]["value"] <= 1.0
        # Live instrumentation fed the same registry during the run.
        assert snapshot["scheduler.tasks_launched"]["value"] > 0
        assert snapshot["tasks.completed"]["value"] > 0
        assert snapshot["mapek.intervals"]["value"] > 0
        assert snapshot["mapek.zeta"]["type"] == "histogram"
        assert snapshot["executor.0.pool_size"]["value"] >= 1
