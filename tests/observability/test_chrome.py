"""Chrome exporter counter tests: the ``"C"`` phase and counter tracks."""

import io
import json

import pytest

from repro.observability.chrome import (
    ChromeTraceSink,
    validate_chrome_trace,
    write_counter_tracks,
)
from repro.observability.tracer import Tracer


def _render(emit):
    """Run ``emit(tracer)`` against a fresh in-memory Chrome sink."""
    stream = io.StringIO()
    tracer = Tracer(sinks=[ChromeTraceSink(stream)])
    emit(tracer)
    tracer.close()
    return json.loads(stream.getvalue())


class TestCounterEvents:
    def test_counter_renders_as_phase_c(self):
        doc = _render(lambda t: t.counter("device", "disk0", 3.0))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        event = counters[0]
        assert event["name"] == "device.disk0"
        assert event["args"] == {"value": 3.0}
        assert event["pid"] == 0  # no executor_id: driver track

    def test_counter_timestamp_in_microseconds(self):
        def emit(tracer):
            tracer.clock = lambda: 2.5
            tracer.counter("profile", "node0", 0.5)

        doc = _render(emit)
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["ts"] == 2.5 * 1e6

    def test_counter_on_executor_track(self):
        doc = _render(
            lambda t: t.counter("pool", "size", 8, executor_id=2)
        )
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["pid"] == 3  # executor_id + 1
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas[0]["args"]["name"] == "executor 2"

    def test_counter_document_validates(self):
        doc = _render(lambda t: t.counter("device", "disk0", 1.0))
        assert validate_chrome_trace(doc) == 2  # meta + counter


class TestWriteCounterTracks:
    TRACKS = {
        "node0.cpu_util": [(0.0, 0.5), (1.0, 0.75)],
        "exec0.io_bps": [(0.5, 1024.0)],
    }

    def test_event_count_and_validation(self, tmp_path):
        path = str(tmp_path / "tracks.json")
        assert write_counter_tracks(path, self.TRACKS) == 3
        assert validate_chrome_trace(path) == 3

    def test_sorted_name_order_is_deterministic(self):
        stream = io.StringIO()
        write_counter_tracks(stream, self.TRACKS)
        doc = json.loads(stream.getvalue())
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["exec0.io_bps", "node0.cpu_util", "node0.cpu_util"]

    def test_values_and_microsecond_timestamps(self):
        stream = io.StringIO()
        write_counter_tracks(stream, {"a": [(2.0, 7.0)]})
        event = json.loads(stream.getvalue())["traceEvents"][0]
        assert event == {"name": "a", "ph": "C", "ts": 2.0 * 1e6,
                         "pid": 0, "tid": 0, "args": {"value": 7.0}}

    def test_empty_tracks_write_valid_empty_trace(self):
        stream = io.StringIO()
        assert write_counter_tracks(stream, {}) == 0
        assert validate_chrome_trace(json.loads(stream.getvalue())) == 0

    def test_identical_input_produces_identical_bytes(self):
        first, second = io.StringIO(), io.StringIO()
        write_counter_tracks(first, self.TRACKS)
        write_counter_tracks(second, self.TRACKS)
        assert first.getvalue() == second.getvalue()
