"""Tracer, event, and sink unit tests."""

import io
import json

import pytest

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    COUNTER,
    END,
    INSTANT,
    SCHEMA,
    TraceEvent,
)
from repro.observability.sinks import JsonLinesSink, MemorySink
from repro.observability.tracer import NULL_TRACER, NullTracer, Tracer


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(1.5, 7, BEGIN, "task", "task 0.3",
                           span=12, parent=4, args={"executor_id": 1})
        assert TraceEvent.from_json(event.to_json()) == event

    def test_defaults_omitted_from_json(self):
        doc = TraceEvent(0.0, 0, INSTANT, "pool", "resize").to_json()
        assert "span" not in doc
        assert "parent" not in doc
        assert "dur" not in doc
        assert "args" not in doc

    def test_complete_carries_duration(self):
        event = TraceEvent(2.0, 0, COMPLETE, "mapek", "interval", dur=3.0)
        assert event.to_json()["dur"] == 3.0
        assert event.end_ts == 5.0

    def test_non_complete_end_ts_is_ts(self):
        assert TraceEvent(2.0, 0, BEGIN, "a", "b", dur=9.0).end_ts == 2.0


class TestTracer:
    def test_begin_end_pair(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        span = tracer.begin("stage", "map", stage_id=0)
        tracer.end(span, outcome="ok")
        begin, end = sink.events
        assert begin.kind == BEGIN and begin.span == span
        assert begin.args == {"stage_id": 0}
        assert end.kind == END and end.span == span
        assert end.args == {"outcome": "ok"}

    def test_span_ids_unique(self):
        tracer = Tracer(sinks=[MemorySink()])
        spans = [tracer.begin("c", "n") for _ in range(10)]
        assert len(set(spans)) == 10

    def test_sequence_monotonic_across_kinds(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        span = tracer.begin("a", "b")
        tracer.instant("a", "i")
        tracer.counter("a", "c", 1.0)
        tracer.complete("a", "x", 0.0, 1.0)
        tracer.end(span)
        assert [e.seq for e in sink.events] == [0, 1, 2, 3, 4]

    def test_clock_binding(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        tracer.instant("a", "before")
        tracer.bind_clock(lambda: 42.0)
        tracer.instant("a", "after")
        assert sink.events[0].ts == 0.0
        assert sink.events[1].ts == 42.0

    def test_counter_folds_value_into_args(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        tracer.counter("device", "disk.0", 3.0, op="read")
        (event,) = sink.events
        assert event.kind == COUNTER
        assert event.args == {"op": "read", "value": 3.0}

    def test_complete_clamps_negative_duration(self):
        sink = MemorySink()
        tracer = Tracer(sinks=[sink])
        tracer.complete("m", "interval", 5.0, 4.0)
        assert sink.events[0].dur == 0.0

    def test_fan_out_to_all_sinks(self):
        first, second = MemorySink(), MemorySink()
        tracer = Tracer(sinks=[first])
        tracer.add_sink(second)
        tracer.instant("a", "b")
        assert len(first.events) == 1
        assert len(second.events) == 1

    def test_close_is_idempotent(self):
        stream = io.StringIO()
        tracer = Tracer(sinks=[JsonLinesSink(stream)])
        tracer.instant("a", "b")
        tracer.close()
        tracer.close()


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("a", "b") == -1
        NULL_TRACER.end(0)
        NULL_TRACER.instant("a", "b")
        NULL_TRACER.counter("a", "b", 1.0)
        NULL_TRACER.complete("a", "b", 0.0, 1.0)
        assert NULL_TRACER.sinks == []

    def test_fresh_instance_matches_singleton(self):
        assert NullTracer().enabled is False


class TestJsonLinesSink:
    def test_header_then_events(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.write(TraceEvent(0.5, 0, INSTANT, "a", "b"))
        sink.close()
        lines = stream.getvalue().strip().splitlines()
        assert json.loads(lines[0]) == {"kind": "meta", "schema": SCHEMA}
        assert json.loads(lines[1])["name"] == "b"

    def test_write_after_close_raises(self):
        stream = io.StringIO()
        sink = JsonLinesSink(stream)
        sink.close()
        with pytest.raises(RuntimeError):
            sink.write(TraceEvent(0.0, 0, INSTANT, "a", "b"))

    def test_path_target_owns_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        sink = JsonLinesSink(str(path))
        sink.write(TraceEvent(0.0, 0, INSTANT, "a", "b"))
        sink.close()
        assert len(path.read_text().strip().splitlines()) == 2
