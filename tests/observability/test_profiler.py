"""Demand-profiler tests: live/offline identity and profile semantics.

The load-bearing property is the acceptance criterion from the profiler's
design: a :class:`ProfilerSink` attached to a live run and an offline
:func:`profile_events` replay of the same run's event log must serialize to
**byte-identical** demand-profile JSON.  Everything else (grid math, stage
aggregation, crashed-task accounting) is checked on synthetic event
streams so failures localize.
"""

import json

import pytest

from repro.harness.runner import finish_trace, run_profiler, run_workload
from repro.observability.events import TraceEvent
from repro.observability.history import load_events
from repro.observability.profiler import (
    PROBE_KEYS,
    PROFILE_SCHEMA,
    ProfilerSink,
    _deposit,
    profile_events,
)
from repro.observability.sinks import JsonLinesSink
from repro.observability.tracer import Tracer


@pytest.fixture(scope="module")
def profiled_run(tmp_path_factory):
    """One live-profiled Terasort run: event log + live profile JSON."""
    directory = tmp_path_factory.mktemp("profile")
    events_path = str(directory / "events.jsonl")
    live_path = str(directory / "live.json")
    tracer = Tracer(sinks=[
        JsonLinesSink(events_path),
        ProfilerSink(interval=1.0, out=live_path),
    ])
    run = run_workload("terasort", policy="dynamic", tracer=tracer,
                       workload_kwargs={"scale": 0.05})
    finish_trace(run)
    return run, events_path, live_path


class TestLiveOfflineIdentity:
    def test_profile_json_is_byte_identical(self, profiled_run, tmp_path):
        _run, events_path, live_path = profiled_run
        offline_path = str(tmp_path / "offline.json")
        profile_events(load_events(events_path), interval=1.0,
                       out=offline_path)
        with open(live_path, "rb") as live, open(offline_path, "rb") as off:
            assert live.read() == off.read()

    def test_demand_profile_dict_matches(self, profiled_run):
        _run, events_path, live_path = profiled_run
        sink = profile_events(load_events(events_path), interval=1.0)
        with open(live_path, encoding="utf-8") as stream:
            live_doc = json.load(stream)
        assert sink.demand_profile() == live_doc

    def test_run_profiler_finds_the_sink(self, profiled_run):
        run, _events_path, _live_path = profiled_run
        sink = run_profiler(run)
        assert isinstance(sink, ProfilerSink)

    def test_live_run_has_profiling_enabled(self, profiled_run):
        run, _events_path, _live_path = profiled_run
        assert run.ctx.profiling is True


class TestProfileDocument:
    def test_schema_and_top_level_shape(self, profiled_run):
        _run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["interval"] == 1.0
        assert set(doc) == {"schema", "interval", "application", "stages",
                            "executors", "nodes", "distributions"}

    def test_stage_demand_vectors_cover_probe_keys(self, profiled_run):
        _run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        assert doc["stages"], "no stages profiled"
        for stage in doc["stages"]:
            assert set(stage["resources"]) == set(PROBE_KEYS)
            for entry in stage["resources"].values():
                assert entry["peak"] >= entry["mean"] >= 0.0

    def test_stage_timings_match_recorder(self, profiled_run):
        run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        records = run.ctx.recorder.stages
        assert len(doc["stages"]) == len(records)
        for stage, record in zip(doc["stages"], records):
            assert stage["start"] == record.start_time
            assert stage["end"] == record.end_time
            assert stage["duration"] == record.duration
            assert stage["tasks_seen"] == len(record.tasks)

    def test_executor_task_totals(self, profiled_run):
        run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        total_tasks = sum(len(r.tasks) for r in run.ctx.recorder.stages)
        assert sum(e["tasks"] for e in doc["executors"]) == total_tasks
        for executor in doc["executors"]:
            assert executor["io_bytes"] > 0
            assert executor["peak_active_tasks"] > 0
            assert executor["peak_io_bps"] > 0

    def test_node_series_present_for_every_node(self, profiled_run):
        run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        assert len(doc["nodes"]) == run.ctx.cluster.num_nodes
        for node in doc["nodes"]:
            assert node["samples"] > 0
            # Disk reads definitely happened on every node.
            assert node["resources"]["disk_read_bps"]["peak"] > 0

    def test_distributions_cover_task_and_stage_metrics(self, profiled_run):
        run, events_path, _live_path = profiled_run
        doc = profile_events(load_events(events_path)).demand_profile()
        dists = doc["distributions"]
        assert set(dists) == {"stages.runtime", "tasks.duration",
                              "tasks.io_wait", "tasks.queue_delay"}
        stages = dists["stages.runtime"]
        assert stages["count"] == len(run.ctx.recorder.stages)
        assert stages["p50"] <= stages["p99"] <= stages["max"]

    def test_registry_histograms_flow_into_metrics_snapshot(
            self, profiled_run):
        run, _events_path, _live_path = profiled_run
        snapshot = run.ctx.metrics.snapshot()
        for name in ("tasks.duration", "tasks.queue_delay",
                     "tasks.io_wait", "stages.runtime"):
            assert snapshot[name]["type"] == "histogram"
            assert snapshot[name]["count"] > 0

    def test_plain_event_log_still_profiles(self, tmp_path):
        """A log recorded *without* profiling (no probe events) profiles
        too: task/io spans alone yield stages, executors, distributions."""
        events_path = str(tmp_path / "plain.jsonl")
        tracer = Tracer(sinks=[JsonLinesSink(events_path)])
        run = run_workload("wordcount", policy="default", tracer=tracer,
                           workload_kwargs={"scale": 0.05})
        finish_trace(run)
        assert run.ctx.profiling is False
        doc = profile_events(load_events(events_path)).demand_profile()
        assert doc["nodes"] == []  # no probe: no node series
        assert doc["stages"]
        assert all(s["resources"] == {} for s in doc["stages"])
        assert doc["executors"]
        assert doc["distributions"]["tasks.duration"]["count"] > 0


class TestCounterTracks:
    def test_track_names_and_monotone_timestamps(self, profiled_run):
        _run, events_path, _live_path = profiled_run
        sink = profile_events(load_events(events_path))
        tracks = sink.counter_tracks()
        assert any(name.startswith("node0.") for name in tracks)
        assert any(name.startswith("exec0.") for name in tracks)
        for track in tracks.values():
            times = [ts for ts, _value in track]
            assert times == sorted(times)

    def test_executor_series_grid_alignment(self, profiled_run):
        _run, events_path, _live_path = profiled_run
        sink = profile_events(load_events(events_path), interval=2.0)
        series = sink.executor_series()
        for metrics in series.values():
            for track in metrics.values():
                assert all(ts % 2.0 == 0.0 for ts, _value in track)


class TestGridMath:
    def test_deposit_spreads_uniformly(self):
        bins = {}
        _deposit(bins, 0.0, 2.0, total=4.0, interval=1.0)
        assert bins == {0: 2.0, 1: 2.0}

    def test_deposit_partial_bins_conserve_work(self):
        bins = {}
        _deposit(bins, 0.5, 2.5, total=6.0, interval=1.0)
        # Average rate over each bin: half a bin's worth at 3.0/s at the
        # edges, a full bin in the middle; totals must sum back to 6.0.
        assert sum(bins.values()) * 1.0 == pytest.approx(6.0)
        assert bins[0] == pytest.approx(1.5)
        assert bins[1] == pytest.approx(3.0)
        assert bins[2] == pytest.approx(1.5)

    def test_zero_length_span_is_an_impulse(self):
        bins = {}
        _deposit(bins, 3.5, 3.5, total=2.0, interval=1.0)
        assert bins == {3: 2.0}

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ProfilerSink(interval=0.0)
        with pytest.raises(ValueError):
            ProfilerSink(interval=-1.0)


def _begin(ts, seq, cat, name, span, parent=-1, **args):
    return TraceEvent(ts=ts, seq=seq, kind="B", cat=cat, name=name,
                      span=span, parent=parent, args=args)


def _end(ts, seq, span, **args):
    return TraceEvent(ts=ts, seq=seq, kind="E", cat="", name="",
                      span=span, args=args)


class TestSyntheticStreams:
    def test_crashed_tasks_counted_separately(self):
        events = [
            _begin(0.0, 0, "stage", "map", span=1, stage_id=0,
                   num_tasks=2, io_marked=True),
            _begin(0.0, 1, "task", "task-0", span=2, parent=1,
                   executor_id=0, stage_id=0),
            _end(1.0, 2, span=2, crashed=True),
            _begin(1.0, 3, "task", "task-1", span=3, parent=1,
                   executor_id=0, stage_id=0),
            _end(3.0, 4, span=3, io_wait=0.5, io_bytes=10.0),
            _end(3.0, 5, span=1),
        ]
        doc = profile_events(events).demand_profile()
        executor = doc["executors"][0]
        assert executor["tasks"] == 1
        assert executor["crashed_tasks"] == 1
        # The crashed attempt contributes no duration/io_wait samples.
        assert doc["distributions"]["tasks.duration"]["count"] == 1
        assert doc["distributions"]["tasks.duration"]["max"] == 2.0

    def test_io_bytes_attributed_to_stage_by_kind(self):
        events = [
            _begin(0.0, 0, "stage", "map", span=1, stage_id=0,
                   num_tasks=1, io_marked=True),
            _begin(0.0, 1, "task", "task-0", span=2, parent=1,
                   executor_id=0, stage_id=0),
            _begin(0.0, 2, "io", "read", span=3, parent=2,
                   executor_id=0, bytes=100.0),
            _end(1.0, 3, span=3, wait=1.0),
            _begin(1.0, 4, "io", "write", span=4, parent=2,
                   executor_id=0, bytes=40.0),
            _end(2.0, 5, span=4, wait=1.0),
            _end(2.0, 6, span=2, io_wait=2.0, io_bytes=140.0),
            _end(2.0, 7, span=1),
        ]
        doc = profile_events(events).demand_profile()
        stage = doc["stages"][0]
        assert stage["io_bytes"] == {"read": 100.0, "write": 40.0}
        assert doc["executors"][0]["io_bytes"] == 140.0

    def test_unmatched_end_ignored(self):
        doc = profile_events([_end(1.0, 0, span=99)]).demand_profile()
        assert doc["stages"] == []
        assert doc["executors"] == []

    def test_writes_outputs_on_close(self, tmp_path):
        out = tmp_path / "profile.json"
        trace_out = tmp_path / "tracks.json"
        events = [
            _begin(0.0, 0, "stage", "map", span=1, stage_id=0,
                   num_tasks=1, io_marked=False),
            _end(1.0, 1, span=1),
        ]
        profile_events(events, out=str(out), trace_out=str(trace_out))
        assert json.loads(out.read_text())["schema"] == PROFILE_SCHEMA
        assert "traceEvents" in json.loads(trace_out.read_text())

    def test_close_is_idempotent(self, tmp_path):
        out = tmp_path / "profile.json"
        sink = ProfilerSink(out=str(out))
        sink.close()
        out.unlink()
        sink.close()  # second close must not rewrite
        assert not out.exists()
