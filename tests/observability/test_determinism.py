"""Tracing must never perturb the simulation and must itself be stable."""

import io

from repro.harness.runner import run_workload
from repro.observability.sinks import JsonLinesSink, MemorySink
from repro.observability.tracer import Tracer

KW = dict(workload_kwargs={"scale": 0.02}, num_nodes=2)


class TestZeroCost:
    def test_traced_run_is_bit_identical_to_untraced(self):
        plain = run_workload("terasort", policy="dynamic", **KW)
        traced = run_workload("terasort", policy="dynamic",
                              tracer=Tracer(sinks=[MemorySink()]), **KW)
        assert traced.runtime == plain.runtime
        assert traced.stage_durations() == plain.stage_durations()
        plain_tasks = [t.finish_time for s in plain.ctx.recorder.stages
                       for t in s.tasks]
        traced_tasks = [t.finish_time for s in traced.ctx.recorder.stages
                        for t in s.tasks]
        assert traced_tasks == plain_tasks

    def test_default_context_uses_null_tracer(self):
        run = run_workload("wordcount", **KW)
        assert run.ctx.tracer.enabled is False


class TestStableLogs:
    def test_identical_seeds_give_identical_logs(self):
        logs = []
        for _ in range(2):
            stream = io.StringIO()
            run_workload("terasort", policy="dynamic",
                         tracer=Tracer(sinks=[JsonLinesSink(stream)]), **KW)
            logs.append(stream.getvalue())
        assert logs[0] == logs[1]

    def test_events_ordered_by_time_then_sequence(self):
        sink = MemorySink()
        run_workload("terasort", policy="dynamic",
                     tracer=Tracer(sinks=[sink]), **KW)
        # X events are stamped at their span's *start*, which predates the
        # emission point; every other kind is emitted at its timestamp.
        stamps = [(e.ts, e.seq) for e in sink.events if e.kind != "X"]
        assert stamps == sorted(stamps)
        assert [e.seq for e in sink.events] == list(range(len(sink.events)))
