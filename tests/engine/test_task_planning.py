"""Tests for physical task-plan construction."""

import pytest

from repro.engine.actions import CountAction, SaveAction
from repro.engine.stage import build_task_plan
from tests.engine.conftest import make_context

MB = 1024.0**2


@pytest.fixture
def ctx():
    context = make_context()
    context.register_synthetic_file("/in", 64 * MB, num_records=1e5)
    return context


def build_plans(ctx, rdd, action):
    """Build stages and run parents, returning plans of the final stage."""
    stages = ctx.dag.build_stages(rdd, action)
    for stage in stages[:-1]:
        done = ctx.scheduler.run_stage(stage)
        ctx.sim.run()
        assert done.triggered
    final = stages[-1]
    return final, [build_task_plan(ctx, final, i) for i in range(final.num_tasks)]


class TestScanPlans:
    def test_read_bytes_match_partition(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: x)
        stage, plans = build_plans(ctx, rdd, CountAction())
        for plan in plans:
            assert plan.read_bytes == pytest.approx(16 * MB)
            assert plan.shuffle_write_bytes == 0
            assert plan.output_write_bytes == 0

    def test_preferred_nodes_propagate(self, ctx):
        rdd = ctx.text_file("/in", 2)
        _stage, plans = build_plans(ctx, rdd, CountAction())
        for plan in plans:
            assert set(plan.preferred_nodes) == {0, 1}

    def test_cpu_includes_operator_costs(self, ctx):
        cheap_rdd = ctx.text_file("/in", 4)
        _s, cheap = build_plans(ctx, cheap_rdd, CountAction())
        ctx2 = make_context()
        ctx2.register_synthetic_file("/in", 64 * MB, num_records=1e5)
        costly_rdd = ctx2.text_file("/in", 4).map(lambda x: x, cpu_per_byte=1e-6)
        _s, costly = build_plans(ctx2, costly_rdd, CountAction())
        assert costly[0].cpu_seconds > cheap[0].cpu_seconds


class TestShufflePlans:
    def test_map_stage_plans_shuffle_write(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 8, map_combine_factor=0.5
        )
        stages = ctx.dag.build_stages(rdd, CountAction())
        map_stage = stages[0]
        plan = build_task_plan(ctx, map_stage, 0)
        assert plan.shuffle_write_bytes == pytest.approx(8 * MB)

    def test_reduce_stage_plans_fetches_from_all_nodes(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 8
        )
        _stage, plans = build_plans(ctx, rdd, CountAction())
        for plan in plans:
            sources = {node for node, _size in plan.shuffle_fetches}
            assert sources == {0, 1}
            assert plan.read_bytes == pytest.approx(64 * MB / 8)

    def test_result_stage_plans_output_write(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        )
        _stage, plans = build_plans(ctx, rdd, SaveAction("/out"))
        for plan in plans:
            assert plan.output_write_bytes == pytest.approx(16 * MB)

    def test_shared_lineage_charged_once(self, ctx):
        """A diamond (join of an RDD with itself) fetches the shuffle once."""
        from repro.engine.partitioner import HashPartitioner

        base = (
            ctx.text_file("/in", 4)
            .map(lambda x: (x, 1))
            .partition_by(HashPartitioner(4))
        )
        joined = base.cogroup(base.map_values(lambda v: v))
        _stage, plans = build_plans(ctx, joined, CountAction())
        # One fetch of 16 MB per task, not two.
        assert plans[0].read_bytes == pytest.approx(16 * MB)

    def test_cached_source_reads_nothing(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        ).cache()
        rdd.count()  # computes and caches
        follow_up = rdd.map_values(lambda v: v)
        stages = ctx.dag.build_stages(follow_up, CountAction())
        assert len(stages) == 1
        plan = build_task_plan(ctx, stages[0], 0)
        assert plan.read_bytes == 0
        assert plan.total_io_bytes == 0


class TestPlanAggregates:
    def test_total_io_sums_all_flows(self, ctx):
        from repro.engine.stage import DfsRead, TaskPlan

        plan = TaskPlan(
            stage_id=0,
            partition=0,
            dfs_reads=[DfsRead(10.0, (0,))],
            shuffle_fetches=[(0, 5.0), (1, 7.0)],
            shuffle_write_bytes=3.0,
            output_write_bytes=2.0,
        )
        assert plan.read_bytes == 22.0
        assert plan.write_bytes == 5.0
        assert plan.total_io_bytes == 27.0
        assert plan.preferred_nodes == (0,)
