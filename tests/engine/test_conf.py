"""Tests for the configuration registry (paper Table 1)."""

import pytest

from repro.engine.conf import (
    CATEGORY_ADAPTIVE,
    FUNCTIONAL_CATEGORIES,
    SparkConf,
)


class TestRegistry:
    def test_table1_counts(self):
        counts = SparkConf.category_counts()
        assert counts == {
            "Shuffle": 19,
            "Compression and Serialization": 16,
            "Memory Management": 14,
            "Execution Behavior": 14,
            "Network": 13,
            "Scheduling": 32,
            "Dynamic Allocation": 9,
        }

    def test_total_is_117(self):
        assert len(SparkConf.functional_parameters()) == 117

    def test_registry_keys_unique(self):
        keys = [p.key for p in SparkConf.registry()]
        assert len(keys) == len(set(keys))

    def test_adaptive_parameters_not_counted_as_functional(self):
        adaptive = SparkConf.parameters_in_category(CATEGORY_ADAPTIVE)
        assert adaptive
        assert all(not p.is_functional for p in adaptive)

    def test_every_functional_category_nonempty(self):
        for category in FUNCTIONAL_CATEGORIES:
            assert SparkConf.parameters_in_category(category)

    def test_describe_known_parameter(self):
        param = SparkConf.describe("spark.executor.cores")
        assert param.category == "Execution Behavior"

    def test_describe_unknown_parameter(self):
        with pytest.raises(KeyError):
            SparkConf.describe("spark.not.a.real.key")

    def test_all_parameters_have_descriptions(self):
        for param in SparkConf.registry():
            assert param.description, param.key


class TestValues:
    def test_get_returns_registered_default(self):
        conf = SparkConf()
        assert conf.get("spark.task.cpus") == 1
        assert conf.get("repro.adaptive.cmin") == 2

    def test_set_and_get(self):
        conf = SparkConf()
        conf.set("spark.executor.cores", 8)
        assert conf.get("spark.executor.cores") == 8
        assert conf.is_set("spark.executor.cores")

    def test_set_unknown_key_rejected(self):
        conf = SparkConf()
        with pytest.raises(KeyError):
            conf.set("spark.tpyo.key", 1)

    def test_constructor_overrides(self):
        conf = SparkConf({"repro.adaptive.cmin": 4})
        assert conf.get("repro.adaptive.cmin") == 4

    def test_get_with_caller_default(self):
        conf = SparkConf()
        assert conf.get("spark.cores.max", default=64) == 64

    def test_set_returns_self_for_chaining(self):
        conf = SparkConf()
        assert conf.set("spark.task.cpus", 2) is conf

    def test_copy_is_independent(self):
        conf = SparkConf({"spark.task.cpus": 2})
        clone = conf.copy()
        clone.set("spark.task.cpus", 4)
        assert conf.get("spark.task.cpus") == 2
        assert clone.get("spark.task.cpus") == 4

    def test_explicit_items_sorted(self):
        conf = SparkConf()
        conf.set("spark.task.cpus", 2)
        conf.set("spark.executor.cores", 16)
        keys = [k for k, _v in conf.explicit_items()]
        assert keys == sorted(keys)
