"""Tests for the cache manager and metrics records."""

import pytest

from repro.engine.cache import CacheManager
from repro.engine.metrics import (
    IntervalRecord,
    PoolEvent,
    RunRecorder,
    StageRecord,
    TaskMetrics,
)
from repro.engine.sizing import SizeInfo


class TestCacheManager:
    def test_data_round_trip(self):
        cache = CacheManager()
        cache.put(1, 0, ["a"])
        assert cache.get(1, 0) == ["a"]
        assert cache.get(1, 1) is None

    def test_has_covers_data_and_sizes(self):
        cache = CacheManager()
        cache.put(1, 0, ["a"])
        cache.put_size(2, 3, SizeInfo(1, 8))
        assert cache.has(1, 0)
        assert cache.has(2, 3)
        assert not cache.has(2, 0)

    def test_has_any(self):
        cache = CacheManager()
        assert not cache.has_any(5)
        cache.put_size(5, 0, SizeInfo(0, 0))
        assert cache.has_any(5)

    def test_evict_rdd(self):
        cache = CacheManager()
        cache.put(1, 0, ["a"])
        cache.put_size(1, 1, SizeInfo(1, 1))
        cache.put(2, 0, ["b"])
        cache.evict_rdd(1)
        assert not cache.has_any(1)
        assert cache.has(2, 0)

    def test_clear(self):
        cache = CacheManager()
        cache.put(1, 0, ["a"])
        cache.clear()
        assert not cache.has_any(1)


class TestTaskMetrics:
    def make(self, **overrides):
        base = dict(
            stage_id=0, partition=0, executor_id=0, node_id=0,
            launch_time=10.0, finish_time=25.0,
            disk_read_bytes=100.0, disk_write_bytes=50.0,
            shuffle_read_bytes=30.0, shuffle_write_bytes=50.0,
            output_write_bytes=0.0,
        )
        base.update(overrides)
        return TaskMetrics(**base)

    def test_duration(self):
        assert self.make().duration == 15.0

    def test_total_io_bytes(self):
        assert self.make().total_io_bytes == 230.0


class TestIntervalRecord:
    def make(self, threads=4, wait=8.0, io_bytes=100.0, duration=10.0):
        return IntervalRecord(
            executor_id=0, stage_id=0, threads=threads,
            start_time=0.0, end_time=duration,
            epoll_wait=wait, io_bytes=io_bytes,
        )

    def test_throughput(self):
        assert self.make().throughput == pytest.approx(10.0)

    def test_congestion_normalised_by_threads(self):
        record = self.make(threads=4, wait=8.0)
        # mean wait 2.0 over throughput 10 -> 0.2
        assert record.congestion == pytest.approx(0.2)

    def test_zero_duration(self):
        record = self.make(duration=0.0, wait=0.0, io_bytes=0.0)
        assert record.throughput == 0.0
        assert record.congestion == 0.0

    def test_wait_without_bytes_is_infinite(self):
        record = self.make(io_bytes=0.0)
        assert record.congestion == float("inf")


class TestStageRecord:
    def make_stage(self):
        record = StageRecord(
            stage_id=3, name="map", is_io_marked=True, num_tasks=4,
            start_time=100.0, end_time=160.0,
        )
        record.pool_events.extend([
            PoolEvent(time=100.0, executor_id=0, stage_id=3, pool_size=2),
            PoolEvent(time=100.0, executor_id=1, stage_id=3, pool_size=2),
            PoolEvent(time=120.0, executor_id=0, stage_id=3, pool_size=4),
        ])
        return record

    def test_duration(self):
        assert self.make_stage().duration == 60.0

    def test_final_pool_sizes_takes_last_event(self):
        sizes = self.make_stage().final_pool_sizes()
        assert sizes == {0: 4, 1: 2}

    def test_total_threads(self):
        assert self.make_stage().total_threads_used() == 6


class TestRunRecorder:
    def test_current_stage_open_until_closed(self):
        recorder = RunRecorder()
        record = StageRecord(0, "s", False, 1, start_time=0.0)
        recorder.begin_stage(record)
        assert recorder.current_stage is record
        record.end_time = 5.0
        assert recorder.current_stage is None

    def test_stage_lookup(self):
        recorder = RunRecorder()
        record = StageRecord(7, "s", False, 1, start_time=0.0, end_time=1.0)
        recorder.begin_stage(record)
        assert recorder.stage(7) is record
        with pytest.raises(KeyError):
            recorder.stage(8)

    def test_total_runtime_empty(self):
        assert RunRecorder().total_runtime == 0.0
