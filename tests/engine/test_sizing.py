"""Tests for size bookkeeping, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.sizing import (
    SizeInfo,
    ZERO_SIZE,
    estimate_partition,
    estimate_size,
)


class TestSizeInfo:
    def test_addition(self):
        total = SizeInfo(10, 100) + SizeInfo(5, 50)
        assert total.records == 15
        assert total.bytes == 150

    def test_scaled(self):
        scaled = SizeInfo(10, 100).scaled(0.5, 2.0)
        assert scaled.records == 5
        assert scaled.bytes == 200

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SizeInfo(-1, 0)
        with pytest.raises(ValueError):
            SizeInfo(0, -1)

    def test_bytes_per_record(self):
        assert SizeInfo(4, 100).bytes_per_record == 25.0
        assert ZERO_SIZE.bytes_per_record == 0.0

    def test_immutable(self):
        info = SizeInfo(1, 2)
        with pytest.raises(AttributeError):
            info.records = 5

    @given(
        records=st.floats(min_value=0, max_value=1e12),
        data_bytes=st.floats(min_value=0, max_value=1e15),
        factor=st.floats(min_value=0, max_value=100),
    )
    def test_scaling_is_linear(self, records, data_bytes, factor):
        info = SizeInfo(records, data_bytes)
        scaled = info.scaled(factor, factor)
        assert scaled.records == pytest.approx(records * factor)
        assert scaled.bytes == pytest.approx(data_bytes * factor)

    @given(
        sizes=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9),
                st.floats(min_value=0, max_value=1e9),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_addition_commutes_and_accumulates(self, sizes):
        infos = [SizeInfo(r, b) for r, b in sizes]
        forward = ZERO_SIZE
        for info in infos:
            forward = forward + info
        backward = ZERO_SIZE
        for info in reversed(infos):
            backward = backward + info
        assert forward.records == pytest.approx(backward.records)
        assert forward.bytes == pytest.approx(backward.bytes)


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1.0
        assert estimate_size(True) == 1.0
        assert estimate_size(42) == 8.0
        assert estimate_size(3.14) == 8.0

    def test_string_scales_with_length(self):
        assert estimate_size("abcdef") > estimate_size("ab")

    def test_list_scales_with_count(self):
        small = estimate_size([1] * 10)
        large = estimate_size([1] * 1000)
        assert large > small * 50

    def test_dict_includes_keys_and_values(self):
        assert estimate_size({"key": "value"}) > estimate_size("key")

    def test_nested_structures_terminate(self):
        nested = [1]
        for _ in range(10):
            nested = [nested]
        assert estimate_size(nested) > 0

    def test_object_with_dict(self):
        class Point:
            def __init__(self):
                self.x = 1.0
                self.y = 2.0

        assert estimate_size(Point()) >= 16.0

    def test_sampling_keeps_large_lists_cheap(self):
        # One million elements must not take a million estimations.
        big = list(range(1_000_000))
        assert estimate_size(big) == pytest.approx(8.0 + 8.0 * 1_000_000)


class TestEstimatePartition:
    def test_counts_records(self):
        info = estimate_partition(["a", "b", "c"])
        assert info.records == 3

    def test_empty_partition(self):
        info = estimate_partition([])
        assert info.records == 0
        assert info.bytes >= 0

    def test_accepts_generators(self):
        info = estimate_partition(x for x in range(5))
        assert info.records == 5
