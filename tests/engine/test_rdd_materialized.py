"""End-to-end correctness of the RDD API on materialised data.

These tests run real records through the full engine (DAG scheduler, task
scheduler, executors, shuffle) on the simulated cluster and verify that the
*semantics* match Spark's.
"""

import pytest

from repro.engine.rdd import SyntheticDataError
from tests.engine.conftest import make_context


class TestBasicTransformations:
    def test_map_collect(self, ctx):
        rdd = ctx.parallelize([1, 2, 3, 4], 2).map(lambda x: x * 10)
        assert sorted(rdd.collect()) == [10, 20, 30, 40]

    def test_filter(self, ctx):
        rdd = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0)
        assert sorted(rdd.collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        rdd = ctx.parallelize(["a b", "c d e"], 2).flat_map(str.split)
        assert sorted(rdd.collect()) == ["a", "b", "c", "d", "e"]

    def test_map_partitions(self, ctx):
        rdd = ctx.parallelize(range(8), 2).map_partitions(lambda p: [sum(p)])
        assert sum(rdd.collect()) == 28

    def test_key_by(self, ctx):
        rdd = ctx.parallelize(["apple", "fig"], 1).key_by(len)
        assert sorted(rdd.collect()) == [(3, "fig"), (5, "apple")]

    def test_map_values(self, ctx):
        rdd = ctx.parallelize([("a", 1), ("b", 2)], 1).map_values(lambda v: -v)
        assert sorted(rdd.collect()) == [("a", -1), ("b", -2)]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3, 4], 2)
        union = a.union(b)
        assert union.num_partitions == 3
        assert sorted(union.collect()) == [1, 2, 3, 4]

    def test_sample_fraction_bounds(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(0.0)
        with pytest.raises(ValueError):
            ctx.parallelize([1], 1).sample(1.5)


class TestActions:
    def test_count(self, ctx):
        assert ctx.parallelize(range(17), 4).count() == 17

    def test_reduce(self, ctx):
        assert ctx.parallelize(range(1, 6), 2).reduce(lambda a, b: a * b) == 120

    def test_reduce_empty_rdd_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([], 1).reduce(lambda a, b: a + b)

    def test_foreach_side_effects(self, ctx):
        seen = []
        ctx.parallelize([1, 2, 3], 2).foreach(seen.append)
        assert sorted(seen) == [1, 2, 3]

    def test_save_and_reread(self, ctx):
        ctx.parallelize(["x", "y", "z"], 2).save_as_text_file("/out")
        assert ctx.dfs.exists("/out")
        reread = ctx.text_file("/out", 2)
        assert sorted(reread.collect()) == ["x", "y", "z"]


class TestShuffles:
    def test_reduce_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
        result = dict(
            ctx.parallelize(pairs, 3).reduce_by_key(lambda x, y: x + y, 2).collect()
        )
        assert result == {"a": 4, "b": 7, "c": 4}

    def test_group_by_key(self, ctx):
        pairs = [("a", 1), ("a", 2), ("b", 3)]
        grouped = dict(ctx.parallelize(pairs, 2).group_by_key(2).collect())
        assert sorted(grouped["a"]) == [1, 2]
        assert grouped["b"] == [3]

    def test_sort_by_key(self, ctx):
        pairs = [(5, "e"), (1, "a"), (3, "c"), (2, "b"), (4, "d")]
        result = ctx.parallelize(pairs, 3).sort_by_key(2).collect()
        assert result == sorted(pairs)

    def test_distinct(self, ctx):
        values = [1, 2, 2, 3, 3, 3]
        assert sorted(ctx.parallelize(values, 3).distinct(2).collect()) == [1, 2, 3]

    def test_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        right = ctx.parallelize([("a", "x"), ("c", "y")], 2)
        joined = sorted(left.join(right, 2).collect())
        assert joined == [("a", (1, "x")), ("a", (3, "x"))]

    def test_cogroup(self, ctx):
        left = ctx.parallelize([("a", 1)], 1)
        right = ctx.parallelize([("a", 2), ("b", 3)], 1)
        groups = dict(left.cogroup(right, 2).collect())
        assert groups["a"] == ([1], [2])
        assert groups["b"] == ([], [3])

    def test_partition_by_is_noop_when_already_partitioned(self, ctx):
        from repro.engine.partitioner import HashPartitioner

        partitioner = HashPartitioner(2)
        rdd = ctx.parallelize([("a", 1)], 1).partition_by(partitioner)
        assert rdd.partition_by(partitioner) is rdd

    def test_join_of_copartitioned_rdds_is_narrow(self, ctx):
        from repro.engine.partitioner import HashPartitioner
        from repro.engine.rdd import NarrowDependency

        partitioner = HashPartitioner(2)
        left = ctx.parallelize([("a", 1)], 1).partition_by(partitioner)
        right = left.map_values(lambda v: v + 1)
        cogrouped = left.cogroup(right)
        assert all(isinstance(d, NarrowDependency) for d in cogrouped.deps)

    def test_map_side_combine_reduces_bucket_records(self, ctx):
        pairs = [("k", i) for i in range(100)]
        rdd = ctx.parallelize(pairs, 1).reduce_by_key(lambda a, b: a + b, 2)
        assert dict(rdd.collect()) == {"k": sum(range(100))}
        # A single map partition with one key combines to one record.
        status = ctx.map_output_tracker._shuffles[rdd.dep.shuffle_id].statuses[0]
        assert sum(s.records for s in status.reducer_sizes) == 1


class TestTextFiles:
    def test_text_file_round_trip(self, ctx):
        ctx.write_text_file("/data", ["line1", "line2", "line3"])
        rdd = ctx.text_file("/data", 2)
        assert sorted(rdd.collect()) == ["line1", "line2", "line3"]

    def test_text_file_marks_input(self, ctx):
        ctx.write_text_file("/data", ["x"])
        assert ctx.text_file("/data", 1).reads_input

    def test_partitions_are_contiguous_slices(self, ctx):
        ctx.write_text_file("/data", [f"l{i}" for i in range(10)])
        rdd = ctx.text_file("/data", 3)
        partitions = [rdd.compute(i) for i in range(3)]
        flattened = [line for part in partitions for line in part]
        assert flattened == [f"l{i}" for i in range(10)]

    def test_synthetic_file_cannot_materialise(self, ctx):
        ctx.register_synthetic_file("/big", 1e9, num_records=1e6)
        rdd = ctx.text_file("/big")
        with pytest.raises(SyntheticDataError):
            rdd.compute(0)


class TestCaching:
    def test_cached_rdd_computes_once(self, ctx):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize([1, 2, 3, 4], 2).map(tracked).cache()
        first = sorted(rdd.collect())
        count_after_first = len(calls)
        second = sorted(rdd.collect())
        assert first == second == [1, 2, 3, 4]
        assert len(calls) == count_after_first  # no recomputation

    def test_runtime_advances_across_jobs(self, ctx):
        rdd = ctx.parallelize(range(100), 4).map(lambda x: x)
        rdd.count()
        first = ctx.total_runtime
        rdd.count()
        assert ctx.total_runtime > first
