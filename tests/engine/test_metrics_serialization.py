"""RunRecorder serialisation and the open-stage fix (Optional end_time)."""

import json

from repro.engine.metrics import RunRecorder, StageRecord
from repro.harness.runner import run_workload


def make_recorder():
    run = run_workload("terasort", policy="dynamic",
                       workload_kwargs={"scale": 0.02}, num_nodes=2)
    return run.ctx.recorder


class TestOpenStageDetection:
    def test_stage_closing_at_time_zero_is_closed(self):
        # The old sentinel (end_time == 0.0 means open) misread this case.
        record = StageRecord(stage_id=0, name="s", is_io_marked=False,
                             num_tasks=0, start_time=0.0)
        recorder = RunRecorder()
        recorder.begin_stage(record)
        assert recorder.current_stage is record
        record.close(0.0)
        assert record.closed
        assert recorder.current_stage is None
        assert record.duration == 0.0

    def test_open_stage_has_zero_duration(self):
        record = StageRecord(stage_id=0, name="s", is_io_marked=False,
                             num_tasks=4, start_time=3.0)
        assert not record.closed
        assert record.duration == 0.0

    def test_total_runtime_ignores_open_stages(self):
        recorder = RunRecorder()
        first = StageRecord(stage_id=0, name="a", is_io_marked=False,
                            num_tasks=1, start_time=1.0)
        recorder.begin_stage(first)
        first.close(4.0)
        recorder.begin_stage(
            StageRecord(stage_id=1, name="b", is_io_marked=False,
                        num_tasks=1, start_time=4.0)
        )
        assert recorder.total_runtime == 3.0


class TestRoundTrip:
    def test_to_dict_from_dict_preserves_everything(self):
        recorder = make_recorder()
        clone = RunRecorder.from_dict(recorder.to_dict())
        assert clone.total_runtime == recorder.total_runtime
        assert len(clone.stages) == len(recorder.stages)
        for restored, original in zip(clone.stages, recorder.stages):
            assert restored == original
        assert clone.samples == recorder.samples

    def test_round_trip_survives_json(self):
        recorder = make_recorder()
        doc = json.loads(json.dumps(recorder.to_dict()))
        clone = RunRecorder.from_dict(doc)
        assert clone.total_runtime == recorder.total_runtime
        assert [s.final_pool_sizes() for s in clone.stages] == [
            s.final_pool_sizes() for s in recorder.stages
        ]

    def test_summary_dict_matches_recorder(self):
        recorder = make_recorder()
        summary = recorder.summary_dict()
        assert summary["runtime"] == recorder.total_runtime
        assert len(summary["stages"]) == len(recorder.stages)
        for doc, stage in zip(summary["stages"], recorder.stages):
            assert doc["duration"] == stage.duration
            assert doc["final_pool_sizes"] == {
                str(k): v for k, v in stage.final_pool_sizes().items()
            }
