"""Unit tests for executor op-building, chunking, and determinism."""

import pytest

from repro.engine.executor import _IoOp, _round_robin
from repro.engine.stage import DfsRead, TaskPlan
from tests.engine.conftest import make_context

MB = 1024.0**2


def make_plan(**overrides):
    base = dict(stage_id=0, partition=0)
    base.update(overrides)
    return TaskPlan(**base)


@pytest.fixture
def executor():
    ctx = make_context()
    return ctx.executors[0]


class TestRoundRobin:
    def test_interleaves_lists(self):
        merged = _round_robin([[1, 2, 3], [10, 20], [100]])
        assert merged == [1, 10, 100, 2, 20, 3]

    def test_empty_input(self):
        assert _round_robin([]) == []
        assert _round_robin([[]]) == []


class TestBuildOps:
    def test_local_read_when_node_is_preferred(self, executor):
        plan = make_plan(dfs_reads=[DfsRead(10 * MB, (0, 1))])
        ops = executor._build_ops(plan)
        assert ops == [_IoOp("dfs_read", 10 * MB)]

    def test_remote_read_targets_replica_holder(self, executor):
        plan = make_plan(dfs_reads=[DfsRead(10 * MB, (1,))])
        ops = executor._build_ops(plan)
        assert ops[0].kind == "dfs_read"
        assert ops[0].src_node == 1

    def test_no_preference_reads_locally(self, executor):
        plan = make_plan(dfs_reads=[DfsRead(10 * MB, ())])
        assert executor._build_ops(plan)[0].src_node is None

    def test_all_op_kinds_emitted(self, executor):
        plan = make_plan(
            dfs_reads=[DfsRead(1 * MB, (0,))],
            shuffle_fetches=[(1, 2 * MB)],
            shuffle_write_bytes=3 * MB,
            output_write_bytes=4 * MB,
        )
        kinds = [op.kind for op in executor._build_ops(plan)]
        assert kinds == ["dfs_read", "shuffle_fetch", "shuffle_write", "dfs_write"]


class TestChunkOps:
    def test_pure_cpu_task_is_single_burst(self, executor):
        chunks = executor._chunk_ops([], cpu_seconds=3.0)
        assert chunks == [("cpu", 3.0, None)]

    def test_empty_task_has_no_phases(self, executor):
        assert executor._chunk_ops([], cpu_seconds=0.0) == []

    def test_io_conserved_across_chunks(self, executor):
        ops = [_IoOp("dfs_read", 100 * MB), _IoOp("shuffle_write", 50 * MB)]
        chunks = executor._chunk_ops(ops, cpu_seconds=2.0)
        read_total = sum(a for k, a, _s in chunks if k == "dfs_read")
        write_total = sum(a for k, a, _s in chunks if k == "shuffle_write")
        cpu_total = sum(a for k, a, _s in chunks if k == "cpu")
        assert read_total == pytest.approx(100 * MB)
        assert write_total == pytest.approx(50 * MB)
        assert cpu_total == pytest.approx(2.0)

    def test_reads_precede_writes(self, executor):
        ops = [_IoOp("shuffle_write", 32 * MB), _IoOp("dfs_read", 32 * MB)]
        chunks = executor._chunk_ops(ops, cpu_seconds=0.0)
        kinds = [k for k, _a, _s in chunks if k != "cpu"]
        first_write = kinds.index("shuffle_write")
        assert "dfs_read" not in kinds[first_write:]

    def test_max_chunks_respected(self, executor):
        executor.ctx.conf.set("repro.task.max.chunks", 8)
        ops = [_IoOp("dfs_read", 1024 * MB)]
        chunks = executor._chunk_ops(ops, cpu_seconds=0.0)
        io_chunks = [c for c in chunks if c[0] != "cpu"]
        assert len(io_chunks) <= 8

    def test_interleave_offset_rotates_sources(self, executor):
        ops = [
            _IoOp("shuffle_fetch", 8 * MB, src_node=0),
            _IoOp("shuffle_fetch", 8 * MB, src_node=1),
        ]
        first = executor._chunk_ops(ops, 0.0, interleave_offset=0)
        second = executor._chunk_ops(ops, 0.0, interleave_offset=1)
        assert first[0][2] != second[0][2]

    def test_cpu_interleaved_between_io_chunks(self, executor):
        ops = [_IoOp("dfs_read", 64 * MB)]
        chunks = executor._chunk_ops(ops, cpu_seconds=4.0)
        kinds = [k for k, _a, _s in chunks]
        # alternating io / cpu
        assert kinds[0] == "dfs_read"
        assert kinds[1] == "cpu"
        assert kinds.count("cpu") == kinds.count("dfs_read")


class TestDeterminism:
    def run_workload(self, seed):
        ctx = make_context(seed=seed)
        ctx.register_synthetic_file("/in", 128 * MB, num_records=1e5)
        rdd = ctx.text_file("/in", 8).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 8
        )
        rdd.count()
        return ctx.total_runtime

    def test_same_seed_is_bit_identical(self):
        assert self.run_workload(7) == self.run_workload(7)

    def test_different_seed_changes_timing(self):
        assert self.run_workload(7) != self.run_workload(8)
