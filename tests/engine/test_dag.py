"""Tests for stage construction from RDD lineage."""

import pytest

from repro.engine.actions import CollectAction, CountAction, SaveAction
from repro.engine.partitioner import HashPartitioner
from tests.engine.conftest import make_context

MB = 1024.0**2


@pytest.fixture
def ctx():
    context = make_context()
    context.register_synthetic_file("/in", 64 * MB, num_records=1e5)
    return context


class TestStageCutting:
    def test_narrow_job_is_single_stage(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: x).filter(lambda x: True)
        stages = ctx.dag.build_stages(rdd, CountAction())
        assert len(stages) == 1
        assert stages[0].is_result_stage

    def test_one_shuffle_two_stages(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        )
        stages = ctx.dag.build_stages(rdd, CountAction())
        assert len(stages) == 2
        map_stage, result_stage = stages
        assert map_stage.shuffle_dep is not None
        assert map_stage.num_tasks == 2
        assert result_stage.is_result_stage
        assert result_stage.num_tasks == 4
        assert result_stage.parents == [map_stage]

    def test_chained_shuffles(self, ctx):
        rdd = (
            ctx.text_file("/in", 2)
            .map(lambda x: (x, 1))
            .reduce_by_key(lambda a, b: a + b, 4)
            .map(lambda kv: (kv[1], kv[0]))
            .group_by_key(2)
        )
        stages = ctx.dag.build_stages(rdd, CollectAction())
        assert len(stages) == 3
        assert [s.num_tasks for s in stages] == [2, 4, 2]

    def test_join_produces_two_parent_stages(self, ctx):
        left = ctx.text_file("/in", 2).map(lambda x: (x, 1))
        right = ctx.text_file("/in", 2).map(lambda x: (x, 2))
        joined = left.join(right, 4)
        stages = ctx.dag.build_stages(joined, CountAction())
        assert len(stages) == 3
        assert len(stages[-1].parents) == 2

    def test_shared_shuffle_stage_deduplicated(self, ctx):
        base = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        left = base.map_values(lambda v: v)
        right = base.map_values(lambda v: -v)
        joined = left.cogroup(right)
        stages = ctx.dag.build_stages(joined, CountAction())
        # base's map stage appears once, not twice.
        assert len(stages) == 2

    def test_completed_shuffle_stages_skipped_on_second_job(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        rdd.count()
        stages = ctx.dag.build_stages(rdd, CountAction())
        assert len(stages) == 1  # the map stage is skipped

    def test_stage_ids_monotonic(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        stages = ctx.dag.build_stages(rdd, CountAction())
        ids = [s.stage_id for s in stages]
        assert ids == sorted(ids)


class TestIoMarking:
    def test_read_stage_marked(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        stages = ctx.dag.build_stages(rdd, CountAction())
        assert stages[0].is_io_marked      # contains textFile
        assert not stages[1].is_io_marked  # pure shuffle + count

    def test_save_stage_marked(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 2
        )
        stages = ctx.dag.build_stages(rdd, SaveAction("/out"))
        assert stages[1].is_io_marked  # saveAsTextFile marks the stage

    def test_shuffle_only_stage_not_marked(self, ctx):
        """Limitation L2: shuffle spill volume does not mark a stage."""
        rdd = (
            ctx.text_file("/in", 2)
            .map(lambda x: (x, 1))
            .reduce_by_key(lambda a, b: a + b, 2)
            .map(lambda kv: kv)
            .group_by_key(2)
        )
        stages = ctx.dag.build_stages(rdd, CountAction())
        middle = stages[1]
        assert middle.shuffle_dep is not None
        assert not middle.is_io_marked


class TestRangeSampling:
    def test_unbounded_range_partitioners_found(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).sort_by_key(2)
        deps = ctx.dag.unbounded_range_partitioners(rdd)
        assert len(deps) == 1

    def test_sampling_job_runs_before_main_job(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).sort_by_key(2)
        rdd.count()
        # Sampling job (1 stage) + main job (map + result): 3 stage records.
        assert len(ctx.recorder.stages) == 3
        assert ctx.dag.unbounded_range_partitioners(rdd) == []

    def test_hash_partitioner_needs_no_sampling(self, ctx):
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1)).partition_by(
            HashPartitioner(2)
        )
        assert ctx.dag.unbounded_range_partitioners(rdd) == []


class TestStageValidation:
    def test_stage_must_be_map_or_result(self, ctx):
        from repro.engine.stage import Stage

        rdd = ctx.text_file("/in", 2)
        with pytest.raises(ValueError):
            Stage(0, rdd, parents=[])
