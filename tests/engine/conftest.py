"""Shared fixtures for engine tests: small clusters and contexts."""

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine import SparkConf, SparkContext


def make_context(num_nodes=2, cores=4, conf=None, policy_factory=None,
                 seed=42):
    spec = ClusterSpec(
        num_nodes=num_nodes,
        node=NodeSpec(cores=cores),
        disk_sigma=0.0,
        cpu_sigma=0.0,
        seed=seed,
    )
    return SparkContext(
        Cluster(spec),
        conf=conf if conf is not None else SparkConf(),
        policy_factory=policy_factory,
    )


@pytest.fixture
def ctx():
    return make_context()
