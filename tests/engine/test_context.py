"""Tests for SparkContext wiring and error paths."""

import pytest

from repro.engine import SparkConf
from tests.engine.conftest import make_context

MB = 1024.0**2


class TestWiring:
    def test_one_executor_per_node(self):
        ctx = make_context(num_nodes=3)
        assert len(ctx.executors) == 3
        assert [ex.node.node_id for ex in ctx.executors] == [0, 1, 2]

    def test_default_parallelism_is_total_cores(self):
        ctx = make_context(num_nodes=2, cores=4)
        assert ctx.default_parallelism == 8

    def test_default_parallelism_from_conf(self):
        ctx = make_context(conf=SparkConf({"spark.default.parallelism": 64}))
        assert ctx.default_parallelism == 64

    def test_rdd_ids_increment(self):
        ctx = make_context()
        a = ctx.parallelize([1], 1)
        b = a.map(lambda x: x)
        assert b.id == a.id + 1

    def test_dfs_replication_matches_cluster(self):
        # The paper sets replication = node count for full read locality.
        ctx = make_context(num_nodes=3)
        assert ctx.dfs.replication == 3

    def test_policy_factory_called_per_executor(self):
        created = []

        def factory(executor):
            created.append(executor.executor_id)
            from repro.engine.policy import DefaultPolicy

            return DefaultPolicy()

        make_context(num_nodes=2, policy_factory=factory)
        assert created == [0, 1]


class TestErrorPaths:
    def test_text_file_requires_registered_dataset(self):
        ctx = make_context()
        ctx.dfs.create("/orphan", 100.0)
        with pytest.raises(FileNotFoundError):
            ctx.text_file("/orphan")

    def test_text_file_missing_path(self):
        ctx = make_context()
        with pytest.raises(FileNotFoundError):
            ctx.text_file("/missing")

    def test_synthetic_file_negative_records(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            ctx.register_synthetic_file("/bad", 10.0, num_records=-1.0)

    def test_duplicate_input_path(self):
        ctx = make_context()
        ctx.write_text_file("/a", ["x"])
        with pytest.raises(FileExistsError):
            ctx.write_text_file("/a", ["y"])

    def test_parallelize_empty_defaults_to_one_partition(self):
        ctx = make_context()
        rdd = ctx.parallelize([])
        assert rdd.num_partitions == 1
        assert rdd.collect() == []

    def test_split_out_of_range(self):
        ctx = make_context()
        rdd = ctx.parallelize([1, 2], 2)
        with pytest.raises(IndexError):
            rdd.partition_size(5)


class TestMultipleJobs:
    def test_jobs_share_the_timeline(self):
        ctx = make_context()
        ctx.register_synthetic_file("/in", 32 * MB, num_records=1e4)
        rdd = ctx.text_file("/in", 4)
        rdd.count()
        t1 = ctx.sim.now
        rdd.count()
        assert ctx.sim.now > t1

    def test_stage_records_accumulate_across_jobs(self):
        ctx = make_context()
        ctx.register_synthetic_file("/in", 32 * MB, num_records=1e4)
        rdd = ctx.text_file("/in", 4)
        rdd.count()
        rdd.count()
        assert len(ctx.recorder.stages) == 2

    def test_shuffle_reused_across_jobs(self):
        ctx = make_context()
        ctx.register_synthetic_file("/in", 32 * MB, num_records=1e4)
        reduced = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        )
        reduced.count()   # map stage + result stage
        reduced.count()   # result stage only (shuffle output reused)
        assert len(ctx.recorder.stages) == 3
