"""Tests for map-output tracking and fetch planning."""

import pytest

from repro.engine.shuffle import MapOutputTracker, MapStatus
from repro.engine.sizing import SizeInfo


def explicit_status(map_id, node_id, sizes):
    return MapStatus(
        map_id=map_id,
        node_id=node_id,
        reducer_sizes=[SizeInfo(r, b) for r, b in sizes],
    )


class TestMapStatus:
    def test_explicit_total_bytes(self):
        status = explicit_status(0, 1, [(1, 10), (2, 20)])
        assert status.total_bytes == 30
        assert status.num_reducers == 2
        assert status.size_for(1).bytes == 20

    def test_uniform_splits_evenly(self):
        status = MapStatus.uniform(0, 1, num_reducers=4, total=SizeInfo(8, 400))
        assert status.size_for(0).bytes == 100
        assert status.size_for(3).records == 2
        assert status.total_bytes == pytest.approx(400)

    def test_requires_exactly_one_representation(self):
        with pytest.raises(ValueError):
            MapStatus(map_id=0, node_id=0)
        with pytest.raises(ValueError):
            MapStatus(
                map_id=0,
                node_id=0,
                reducer_sizes=[SizeInfo(1, 1)],
                uniform_size=SizeInfo(1, 1),
            )

    def test_uniform_requires_reducer_count(self):
        with pytest.raises(ValueError):
            MapStatus(map_id=0, node_id=0, uniform_size=SizeInfo(1, 1))


class TestTracker:
    def test_register_allocates_increasing_ids(self):
        tracker = MapOutputTracker()
        assert tracker.register_shuffle(2, 2) == 0
        assert tracker.register_shuffle(2, 2) == 1

    def test_invalid_shapes_rejected(self):
        tracker = MapOutputTracker()
        with pytest.raises(ValueError):
            tracker.register_shuffle(0, 2)
        with pytest.raises(ValueError):
            tracker.register_shuffle(2, 0)

    def test_completeness_tracking(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        assert not tracker.is_complete(sid)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1), (1, 1)]))
        assert not tracker.is_complete(sid)
        tracker.register_map_output(sid, explicit_status(1, 1, [(1, 1), (1, 1)]))
        assert tracker.is_complete(sid)

    def test_reduce_size_sums_map_slices(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 10), (2, 20)]))
        tracker.register_map_output(sid, explicit_status(1, 1, [(3, 30), (4, 40)]))
        assert tracker.reduce_size(sid, 0).bytes == 40
        assert tracker.reduce_size(sid, 1).records == 6

    def test_fetch_plan_groups_by_node(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(3, 1)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 10)]))
        tracker.register_map_output(sid, explicit_status(1, 0, [(1, 15)]))
        tracker.register_map_output(sid, explicit_status(2, 1, [(1, 5)]))
        assert tracker.fetch_plan(sid, 0) == [(0, 25.0), (1, 5.0)]

    def test_fetch_plan_omits_empty_sources(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 10), (0, 0)]))
        tracker.register_map_output(sid, explicit_status(1, 1, [(0, 0), (1, 20)]))
        assert tracker.fetch_plan(sid, 0) == [(0, 10.0)]
        assert tracker.fetch_plan(sid, 1) == [(1, 20.0)]

    def test_uniform_and_explicit_mix(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        tracker.register_map_output(
            sid, MapStatus.uniform(0, 0, num_reducers=2, total=SizeInfo(4, 40))
        )
        tracker.register_map_output(sid, explicit_status(1, 1, [(1, 10), (3, 30)]))
        assert tracker.reduce_size(sid, 0).bytes == pytest.approx(30)
        assert tracker.reduce_size(sid, 1).bytes == pytest.approx(50)
        assert dict(tracker.fetch_plan(sid, 1)) == {0: 20.0, 1: 30.0}

    def test_queries_require_completion(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 1)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1)]))
        with pytest.raises(RuntimeError, match="incomplete"):
            tracker.reduce_size(sid, 0)

    def test_wrong_reducer_count_rejected(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(1, 3)
        with pytest.raises(ValueError):
            tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1)]))

    def test_out_of_range_map_id_rejected(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(1, 1)
        with pytest.raises(ValueError):
            tracker.register_map_output(sid, explicit_status(7, 0, [(1, 1)]))

    def test_double_registration_rejected(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 1)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1)]))
        with pytest.raises(ValueError, match="already registered"):
            tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1)]))

    def test_unknown_shuffle_rejected(self):
        tracker = MapOutputTracker()
        with pytest.raises(KeyError):
            tracker.is_complete(99)

    def test_fetch_real_concatenates_buckets(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        for map_id, buckets in ((0, [[("a", 1)], [("b", 2)]]),
                                (1, [[("c", 3)], []])):
            sizes = [SizeInfo(len(b), 8.0 * len(b)) for b in buckets]
            tracker.register_map_output(
                sid,
                MapStatus(map_id=map_id, node_id=0, reducer_sizes=sizes,
                          real_buckets=buckets),
            )
        assert tracker.fetch_real(sid, 0) == [("a", 1), ("c", 3)]
        assert tracker.fetch_real(sid, 1) == [("b", 2)]

    def test_fetch_real_requires_materialised_buckets(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(1, 1)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 1)]))
        with pytest.raises(RuntimeError, match="no materialised data"):
            tracker.fetch_real(sid, 0)

    def test_total_shuffle_bytes(self):
        tracker = MapOutputTracker()
        sid = tracker.register_shuffle(2, 2)
        tracker.register_map_output(sid, explicit_status(0, 0, [(1, 10), (1, 20)]))
        tracker.register_map_output(
            sid, MapStatus.uniform(1, 1, num_reducers=2, total=SizeInfo(2, 12))
        )
        assert tracker.total_shuffle_bytes(sid) == pytest.approx(42.0)
