"""Tests for actions and the dataset catalog."""

import pytest

from repro.engine.actions import (
    CollectAction,
    CountAction,
    ForeachAction,
    ReduceAction,
    SaveAction,
    SketchAction,
)
from repro.engine.datasets import DatasetCatalog
from repro.engine.sizing import SizeInfo
from tests.engine.conftest import make_context

MB = 1024.0**2


class TestSaveAction:
    def test_output_marker(self):
        assert SaveAction("/out").writes_output
        assert not CollectAction.writes_output

    def test_negative_bytes_factor_rejected(self):
        with pytest.raises(ValueError):
            SaveAction("/out", bytes_factor=-1.0)

    def test_save_registers_materialised_output(self, ctx):
        ctx.parallelize(["a", "b"], 1).save_as_text_file("/out")
        info = ctx.datasets.describe("/out")
        assert info.records_available
        assert info.data == ["a", "b"]

    def test_save_overwrites_previous_output(self, ctx):
        ctx.parallelize(["a"], 1).save_as_text_file("/out")
        ctx.parallelize(["b", "c"], 1).save_as_text_file("/out")
        assert ctx.datasets.describe("/out").data == ["b", "c"]

    def test_save_synthetic_records_size_only(self, ctx):
        ctx.register_synthetic_file("/in", 16 * MB, num_records=1e4)
        ctx.text_file("/in", 2).save_as_text_file("/out")
        info = ctx.datasets.describe("/out")
        assert not info.records_available
        assert info.size.bytes == pytest.approx(16 * MB)


class TestSketchAction:
    def test_samples_keys_per_partition(self, ctx):
        pairs = [(i, i) for i in range(1000)]
        rdd = ctx.parallelize(pairs, 4)
        sample = ctx.run_job(rdd, SketchAction(sample_per_partition=10))
        assert 20 <= len(sample) <= 48
        assert all(isinstance(k, int) for k in sample)

    def test_small_partitions_fully_sampled(self, ctx):
        rdd = ctx.parallelize([(1, "a"), (2, "b")], 1)
        sample = ctx.run_job(rdd, SketchAction(sample_per_partition=10))
        assert sorted(sample) == [1, 2]

    def test_synthetic_returns_none(self, ctx):
        ctx.register_synthetic_file("/in", 16 * MB, num_records=1e4)
        rdd = ctx.text_file("/in", 2).map(lambda x: (x, 1))
        assert ctx.run_job(rdd, SketchAction()) is None


class TestMiscActions:
    def test_count_synthetic_vs_materialised(self, ctx):
        ctx.register_synthetic_file("/in", 16 * MB, num_records=12345.0)
        assert ctx.text_file("/in", 2).count() == pytest.approx(12345.0)
        assert ctx.parallelize(range(7), 2).count() == 7

    def test_reduce_requires_materialised(self, ctx):
        ctx.register_synthetic_file("/in", 16 * MB, num_records=100.0)
        rdd = ctx.text_file("/in", 2)
        with pytest.raises(RuntimeError, match="materialised"):
            ctx.run_job(rdd, ReduceAction(lambda a, b: a))

    def test_foreach_returns_none(self, ctx):
        assert ctx.parallelize([1], 1).foreach(lambda x: None) is None


class TestDatasetCatalog:
    def test_register_and_describe(self):
        catalog = DatasetCatalog()
        catalog.register_input("/a", SizeInfo(2, 10), records=["x", "y"])
        info = catalog.describe("/a")
        assert info.records_available
        assert info.records == 2

    def test_duplicate_input_rejected(self):
        catalog = DatasetCatalog()
        catalog.register_input("/a", SizeInfo(0, 0))
        with pytest.raises(FileExistsError):
            catalog.register_input("/a", SizeInfo(0, 0))

    def test_record_count_mismatch_rejected(self):
        catalog = DatasetCatalog()
        with pytest.raises(ValueError):
            catalog.register_input("/a", SizeInfo(3, 10), records=["only-one"])

    def test_missing_path(self):
        catalog = DatasetCatalog()
        with pytest.raises(FileNotFoundError):
            catalog.describe("/nope")
        assert not catalog.exists("/nope")

    def test_partition_records_contiguous_cover(self):
        catalog = DatasetCatalog()
        data = list(range(10))
        catalog.register_input("/a", SizeInfo(10, 80), records=data)
        info = catalog.describe("/a")
        chunks = [info.partition_records(i, 3) for i in range(3)]
        assert [x for chunk in chunks for x in chunk] == data

    def test_partition_records_synthetic_is_none(self):
        catalog = DatasetCatalog()
        catalog.register_input("/a", SizeInfo(10, 80))
        assert catalog.describe("/a").partition_records(0, 2) is None


class TestContextDatasets:
    def test_write_text_file_registers_both_layers(self, ctx):
        ctx.write_text_file("/t", ["a", "b"])
        assert ctx.dfs.exists("/t")
        assert ctx.datasets.describe("/t").records == 2

    def test_synthetic_file_validation(self, ctx):
        with pytest.raises(ValueError):
            ctx.register_synthetic_file("/bad", -1.0, 10)
