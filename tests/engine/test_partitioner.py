"""Tests for hash and range partitioners."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.partitioner import HashPartitioner, RangePartitioner


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner(7)
        for key in ("a", "b", 42, (1, 2)):
            assert 0 <= p.partition(key) < 7

    def test_deterministic(self):
        p = HashPartitioner(16)
        assert p.partition("spark") == p.partition("spark")

    def test_equality_by_partition_count(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(8)

    def test_hashable(self):
        assert len({HashPartitioner(4), HashPartitioner(4)}) == 1

    def test_positive_partitions_required(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    @given(st.lists(st.integers(), min_size=1, max_size=200),
           st.integers(min_value=1, max_value=32))
    def test_every_key_lands_in_range(self, keys, partitions):
        p = HashPartitioner(partitions)
        for key in keys:
            assert 0 <= p.partition(key) < partitions


class TestRangePartitioner:
    def test_unbounded_until_sampled(self):
        p = RangePartitioner(4)
        assert not p.has_bounds
        with pytest.raises(RuntimeError):
            p.partition("x")

    def test_bounds_split_sorted_keys(self):
        p = RangePartitioner(4)
        p.set_bounds(list(range(100)))
        assert p.has_bounds
        indices = [p.partition(k) for k in range(100)]
        assert indices == sorted(indices)  # ranges respect order
        assert set(indices) == {0, 1, 2, 3}

    def test_single_partition_needs_no_bounds(self):
        p = RangePartitioner(1)
        p.set_bounds([5, 1, 3])
        assert p.partition("anything") == 0

    def test_empty_sample_routes_everything_to_zero(self):
        p = RangePartitioner(4)
        p.set_bounds([])
        assert p.partition("key") == 0

    def test_unsorted_sample_accepted(self):
        p = RangePartitioner(2)
        p.set_bounds([9, 1, 5, 3, 7])
        assert p.partition(0) == 0
        assert p.partition(10) == 1

    def test_identity_equality(self):
        a = RangePartitioner(4)
        b = RangePartitioner(4)
        assert a == a
        assert a != b  # bounds are data-dependent

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=10, max_size=300),
           st.integers(min_value=2, max_value=16))
    def test_partitioning_preserves_key_order(self, sample, partitions):
        p = RangePartitioner(partitions)
        p.set_bounds(sample)
        keys = sorted(set(sample))
        indices = [p.partition(k) for k in keys]
        assert indices == sorted(indices)
        assert all(0 <= i < partitions for i in indices)
