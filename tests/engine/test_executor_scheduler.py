"""Tests for executor behaviour and driver scheduling mechanics."""

import pytest

from repro.engine.actions import CountAction
from repro.engine.policy import FixedPolicy
from tests.engine.conftest import make_context

MB = 1024.0**2


def make_synthetic_ctx(policy_factory=None, cores=4, num_nodes=2):
    ctx = make_context(num_nodes=num_nodes, cores=cores,
                       policy_factory=policy_factory)
    ctx.register_synthetic_file("/in", 64 * MB, num_records=1e5)
    return ctx


class TestPoolSizeEnforcement:
    def test_fixed_policy_limits_concurrency(self):
        ctx = make_synthetic_ctx(lambda ex: FixedPolicy(2))
        rdd = ctx.text_file("/in", 16)
        rdd.count()
        stage = ctx.recorder.stages[0]
        assert all(m.pool_size_at_launch == 2 for m in stage.tasks)

    def test_default_pool_is_core_count(self):
        ctx = make_synthetic_ctx(cores=8)
        assert all(ex.default_pool_size == 8 for ex in ctx.executors)

    def test_executor_cores_conf_overrides_default(self):
        from repro.engine import SparkConf

        ctx = make_context(conf=SparkConf({"spark.executor.cores": 3}))
        assert all(ex.default_pool_size == 3 for ex in ctx.executors)

    def test_pool_size_clamped_to_node_cores(self):
        ctx = make_synthetic_ctx(lambda ex: FixedPolicy(1000), cores=4)
        rdd = ctx.text_file("/in", 8)
        rdd.count()
        stage = ctx.recorder.stages[0]
        assert all(m.pool_size_at_launch <= 4 for m in stage.tasks)

    def test_pool_events_recorded_at_stage_start(self):
        ctx = make_synthetic_ctx(lambda ex: FixedPolicy(2))
        ctx.text_file("/in", 8).count()
        stage = ctx.recorder.stages[0]
        start_events = [e for e in stage.pool_events if e.reason == "stage-start"]
        assert len(start_events) == len(ctx.executors)
        assert all(e.pool_size == 2 for e in start_events)


class TestTaskMetrics:
    def test_metrics_cover_all_tasks(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 8).count()
        stage = ctx.recorder.stages[0]
        assert len(stage.tasks) == 8
        assert {m.partition for m in stage.tasks} == set(range(8))

    def test_io_metrics_match_plan(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 8).count()
        for metrics in ctx.recorder.stages[0].tasks:
            assert metrics.disk_read_bytes == pytest.approx(8 * MB)
            assert metrics.io_wait_seconds > 0
            assert metrics.duration > 0

    def test_executor_sensors_accumulate(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 8).count()
        total_wait = sum(ex.io_wait_accum for ex in ctx.executors)
        total_bytes = sum(ex.io_bytes_accum for ex in ctx.executors)
        assert total_wait > 0
        assert total_bytes == pytest.approx(64 * MB)

    def test_shuffle_metrics_recorded(self):
        ctx = make_synthetic_ctx()
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        )
        rdd.count()
        map_stage, reduce_stage = ctx.recorder.stages
        assert sum(m.shuffle_write_bytes for m in map_stage.tasks) == pytest.approx(
            64 * MB
        )
        assert sum(m.shuffle_read_bytes for m in reduce_stage.tasks) == pytest.approx(
            64 * MB
        )


class TestSchedulerMechanics:
    def test_stage_serialisation_enforced(self):
        ctx = make_synthetic_ctx()
        rdd = ctx.text_file("/in", 4)
        stages = ctx.dag.build_stages(rdd, CountAction())
        ctx.scheduler.run_stage(stages[0])
        with pytest.raises(RuntimeError, match="already running"):
            ctx.scheduler.run_stage(stages[0])

    def test_tasks_balanced_across_executors(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 16).count()
        stage = ctx.recorder.stages[0]
        per_executor = {}
        for m in stage.tasks:
            per_executor[m.executor_id] = per_executor.get(m.executor_id, 0) + 1
        assert set(per_executor) == {0, 1}
        assert abs(per_executor[0] - per_executor[1]) <= 2

    def test_locality_respected_with_single_replica(self):
        from repro.storage.dfs import DistributedFileSystem

        ctx = make_synthetic_ctx()
        # Rebuild the DFS with replication 1 so each partition has one home.
        ctx.dfs = DistributedFileSystem(ctx.cluster.node_ids, replication=1,
                                        block_size=8 * MB)
        ctx.register_synthetic_file("/single", 64 * MB, num_records=1e5)
        ctx.text_file("/single", 8).count()
        stage = ctx.recorder.stages[0]
        # Every task ran on a node holding its block (plenty of free slots).
        rdd = ctx.text_file("/single", 8)
        for metrics in stage.tasks:
            assert metrics.node_id in rdd.preferred_nodes(metrics.partition)

    def test_registered_pool_view_tracks_executor(self):
        ctx = make_synthetic_ctx(lambda ex: FixedPolicy(3))
        ctx.text_file("/in", 8).count()
        for ex in ctx.executors:
            assert ctx.scheduler.registered_pool_size(ex.executor_id) == 3

    def test_control_messages_counted(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 8).count()
        # At least one launch and one completion message per task.
        assert ctx.scheduler.channel.messages_sent >= 16


class TestRunRecorder:
    def test_stage_records_ordered_and_closed(self):
        ctx = make_synthetic_ctx()
        rdd = ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        )
        rdd.count()
        stages = ctx.recorder.stages
        assert len(stages) == 2
        assert all(s.end_time > s.start_time for s in stages)
        assert stages[0].end_time <= stages[1].start_time

    def test_total_runtime_spans_stages(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 4).count()
        recorder = ctx.recorder
        assert recorder.total_runtime == pytest.approx(
            recorder.stages[-1].end_time - recorder.stages[0].start_time
        )

    def test_monitoring_samples_tagged_with_stage(self):
        ctx = make_synthetic_ctx()
        ctx.text_file("/in", 8).count()
        stage_id = ctx.recorder.stages[0].stage_id
        samples = ctx.recorder.stage_samples(stage_id)
        assert samples
        assert all(s.stage_id == stage_id for s in samples)
