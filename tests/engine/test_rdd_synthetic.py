"""Analytic size propagation through synthetic lineages."""

import pytest

from repro.engine.actions import CountAction
from tests.engine.conftest import make_context

MB = 1024.0**2


@pytest.fixture
def ctx():
    context = make_context()
    context.register_synthetic_file("/in", 100 * MB, num_records=1e6)
    return context


class TestSourceSizes:
    def test_partition_sizes_split_file(self, ctx):
        rdd = ctx.text_file("/in", 4)
        for split in range(4):
            info = rdd.partition_size(split)
            assert info.bytes == pytest.approx(25 * MB)
            assert info.records == pytest.approx(2.5e5)

    def test_total_size_matches_file(self, ctx):
        rdd = ctx.text_file("/in", 8)
        assert rdd.total_size().bytes == pytest.approx(100 * MB)

    def test_default_partitioning_by_max_partition_bytes(self, ctx):
        rdd = ctx.text_file("/in")  # 100 MB / 128 MB -> 1 partition
        assert rdd.num_partitions == 1

    def test_preferred_nodes_from_replicas(self, ctx):
        rdd = ctx.text_file("/in", 2)
        for split in range(2):
            assert set(rdd.preferred_nodes(split)) == {0, 1}


class TestFactorPropagation:
    def test_map_bytes_factor(self, ctx):
        rdd = ctx.text_file("/in", 4).map(lambda x: x, bytes_factor=0.5)
        assert rdd.partition_size(0).bytes == pytest.approx(12.5 * MB)
        assert rdd.partition_size(0).records == pytest.approx(2.5e5)

    def test_filter_selectivity(self, ctx):
        rdd = ctx.text_file("/in", 4).filter(lambda x: True, selectivity=0.2)
        assert rdd.partition_size(0).records == pytest.approx(5e4)
        assert rdd.partition_size(0).bytes == pytest.approx(5 * MB)

    def test_flat_map_fanout(self, ctx):
        rdd = ctx.text_file("/in", 4).flat_map(lambda x: [x], fanout=3.0)
        assert rdd.partition_size(0).records == pytest.approx(7.5e5)

    def test_chained_factors_multiply(self, ctx):
        rdd = (
            ctx.text_file("/in", 4)
            .map(lambda x: x, bytes_factor=0.5)
            .map(lambda x: x, bytes_factor=0.5)
        )
        assert rdd.partition_size(0).bytes == pytest.approx(6.25 * MB)

    def test_negative_factor_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.text_file("/in", 4).map(lambda x: x, bytes_factor=-1.0)

    def test_union_concatenates_sizes(self, ctx):
        a = ctx.text_file("/in", 2)
        b = ctx.text_file("/in", 2).map(lambda x: x, bytes_factor=0.1)
        union = a.union(b)
        assert union.num_partitions == 4
        assert union.partition_size(0).bytes == pytest.approx(50 * MB)
        assert union.partition_size(2).bytes == pytest.approx(5 * MB)


class TestShuffleSizes:
    def test_shuffled_sizes_available_after_map_stage(self, ctx):
        pairs = ctx.text_file("/in", 4).map(lambda x: (x, 1))
        reduced = pairs.reduce_by_key(
            lambda a, b: a + b, 8, map_combine_factor=0.5, reduce_factor=0.5
        )
        ctx.run_job(reduced, CountAction())
        # Map output = 100 MB * 0.5 combine, split over 8 reducers; reduce
        # output applies the reduce factor on the fetched volume.
        fetched = reduced.fetched_size(0)
        assert fetched.bytes == pytest.approx(50 * MB / 8)
        assert reduced.partition_size(0).bytes == pytest.approx(25 * MB / 8)

    def test_count_on_synthetic_uses_analytic_records(self, ctx):
        rdd = ctx.text_file("/in", 4).filter(lambda x: True, selectivity=0.5)
        assert rdd.count() == pytest.approx(5e5)

    def test_save_creates_output_file_with_scaled_bytes(self, ctx):
        rdd = ctx.text_file("/in", 4)
        rdd.save_as_text_file("/out", bytes_factor=2.0)
        assert ctx.dfs.status("/out").size == pytest.approx(200 * MB)

    def test_cpu_cost_positive_and_scales(self, ctx):
        cheap = ctx.text_file("/in", 4).map(lambda x: x, cpu_per_byte=1e-9)
        costly = ctx.text_file("/in", 4).map(lambda x: x, cpu_per_byte=1e-7)
        assert 0 < cheap.cpu_cost(0) < costly.cpu_cost(0)

    def test_mixing_materialised_and_synthetic_not_materialised(self, ctx):
        ctx.write_text_file("/small", ["a", "b"])
        synthetic = ctx.text_file("/in", 2).map(lambda x: (x, 1))
        real = ctx.text_file("/small", 2).map(lambda x: (x, 1))
        assert not synthetic.union(real).is_materialized
