"""Edge cases of the monitoring layer: degenerate intervals and idle gaps."""

import math

from repro.engine.metrics import IntervalRecord
from repro.monitoring import MonitoringService
from tests.engine.conftest import make_context

MB = 1024.0**2


def make_interval(**overrides):
    fields = dict(
        executor_id=0,
        stage_id=0,
        threads=4,
        start_time=0.0,
        end_time=2.0,
        epoll_wait=1.0,
        io_bytes=8 * MB,
    )
    fields.update(overrides)
    return IntervalRecord(**fields)


class TestIntervalCongestion:
    def test_nominal_value(self):
        interval = make_interval()
        expected = (1.0 / 4) / (8 * MB / 2.0)
        assert interval.congestion == expected

    def test_zero_duration_interval_has_zero_throughput(self):
        interval = make_interval(end_time=0.0)
        assert interval.duration == 0.0
        assert interval.throughput == 0.0

    def test_zero_duration_with_wait_is_infinite_congestion(self):
        interval = make_interval(end_time=0.0, epoll_wait=0.5)
        assert math.isinf(interval.congestion)

    def test_no_bytes_with_wait_is_infinite_congestion(self):
        interval = make_interval(io_bytes=0.0, epoll_wait=0.5)
        assert math.isinf(interval.congestion)

    def test_no_bytes_no_wait_is_zero_congestion(self):
        # A fully idle interval is "uncongested", not pathological.
        interval = make_interval(io_bytes=0.0, epoll_wait=0.0)
        assert interval.congestion == 0.0

    def test_zero_threads_does_not_divide_by_zero(self):
        interval = make_interval(threads=0)
        assert math.isfinite(interval.congestion)

    def test_negative_duration_treated_as_empty(self):
        # Clock skew cannot happen in the simulator, but the record type
        # must not blow up on a malformed row read back from a log.
        interval = make_interval(end_time=-1.0, epoll_wait=0.0, io_bytes=0.0)
        assert interval.throughput == 0.0
        assert interval.congestion == 0.0


class TestSamplerEdges:
    def test_zero_elapsed_window_produces_no_sample(self):
        ctx = make_context(num_nodes=1, cores=2)
        service = MonitoringService(ctx, interval=1.0)
        service._active_stage_id = 0
        service._reset_snapshots()
        before = len(ctx.recorder.samples)
        # Same simulated instant: elapsed == 0 must be skipped, not divide.
        service._sample_all()
        service._sample_all()
        assert len(ctx.recorder.samples) == before

    def test_tick_with_no_active_stage_stops_loop(self):
        ctx = make_context(num_nodes=1, cores=2)
        service = MonitoringService(ctx, interval=1.0)
        service._loop_running = True
        service._active_stage_id = None
        before = len(ctx.recorder.samples)
        service._tick()
        assert service._loop_running is False
        assert len(ctx.recorder.samples) == before

    def test_samples_between_stages_are_not_recorded(self):
        ctx = make_context(num_nodes=1, cores=2)
        ctx.register_synthetic_file("/in", 32 * MB, num_records=1e4)
        ctx.text_file("/in", 4).count()
        # Every recorded sample belongs to a stage; the idle gap after the
        # job produced none.
        assert ctx.recorder.samples
        assert all(s.stage_id is not None for s in ctx.recorder.samples)

    def test_restart_after_gap_collects_for_second_stage(self):
        ctx = make_context(num_nodes=1, cores=2)
        ctx.register_synthetic_file("/a", 32 * MB, num_records=1e4)
        ctx.text_file("/a", 4).count()
        ctx.register_synthetic_file("/b", 32 * MB, num_records=1e4)
        ctx.text_file("/b", 4).count()
        stage_ids = {s.stage_id for s in ctx.recorder.samples}
        assert len(stage_ids) >= 2
