"""Tests for the mpstat/iostat/strace analogues."""

import pytest

from repro.monitoring import (
    EpollSensor,
    MonitoringService,
    stage_cpu_usage,
    stage_disk_throughput,
    stage_disk_utilization,
    stage_io_wait,
)
from repro.monitoring.iostat import throughput_timeseries
from repro.monitoring.mpstat import per_stage_cpu_profile
from tests.engine.conftest import make_context

MB = 1024.0**2


def run_scan(cores=4, partitions=8, cpu_per_byte=None):
    ctx = make_context(num_nodes=2, cores=cores)
    ctx.register_synthetic_file("/in", 128 * MB, num_records=1e5)
    annotations = {}
    if cpu_per_byte is not None:
        annotations["cpu_per_byte"] = cpu_per_byte
    ctx.text_file("/in", partitions).map(lambda x: x, **annotations).count()
    return ctx


class TestSampling:
    def test_samples_collected_each_second(self):
        ctx = run_scan()
        stage = ctx.recorder.stages[0]
        samples = ctx.recorder.stage_samples(stage.stage_id)
        assert samples
        # Roughly one sample per node per second of stage time.
        expected = max(1, int(stage.duration)) * 2
        assert len(samples) >= expected * 0.5

    def test_rates_are_bounded(self):
        ctx = run_scan()
        for sample in ctx.recorder.samples:
            assert 0.0 <= sample.cpu_utilization <= 1.0
            assert 0.0 <= sample.disk_utilization <= 1.0
            assert sample.disk_read_rate >= 0.0
            assert sample.disk_write_rate >= 0.0

    def test_invalid_interval_rejected(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            MonitoringService(ctx, interval=0.0)

    def test_disabled_service_collects_nothing(self):
        ctx = make_context()
        ctx.monitoring.enabled = False
        ctx.register_synthetic_file("/in", 16 * MB, num_records=1e4)
        ctx.text_file("/in", 4).count()
        assert ctx.recorder.samples == []


class TestMpstat:
    def test_cpu_heavy_stage_reads_high(self):
        io_bound = run_scan(cpu_per_byte=1e-9)
        cpu_bound = run_scan(cpu_per_byte=5e-7)
        io_stage = io_bound.recorder.stages[0].stage_id
        cpu_stage = cpu_bound.recorder.stages[0].stage_id
        assert stage_cpu_usage(cpu_bound.recorder, cpu_stage) > stage_cpu_usage(
            io_bound.recorder, io_stage
        )

    def test_io_wait_high_when_cpu_low(self):
        ctx = run_scan(cpu_per_byte=1e-9, partitions=16)
        stage_id = ctx.recorder.stages[0].stage_id
        assert stage_io_wait(ctx.recorder, stage_id) > 0.3
        assert stage_cpu_usage(ctx.recorder, stage_id) < 0.4

    def test_profile_has_one_row_per_stage(self):
        ctx = make_context()
        ctx.register_synthetic_file("/in", 64 * MB, num_records=1e5)
        ctx.text_file("/in", 4).map(lambda x: (x, 1)).reduce_by_key(
            lambda a, b: a + b, 4
        ).count()
        profile = per_stage_cpu_profile(ctx.recorder)
        assert len(profile) == 2
        assert all(0 <= row["cpu_usage"] <= 1 for row in profile)

    def test_missing_samples_raise(self):
        ctx = make_context()
        with pytest.raises(ValueError):
            stage_cpu_usage(ctx.recorder, 99)


class TestIostat:
    def test_scan_stage_busies_the_disk(self):
        ctx = run_scan(partitions=16)
        stage_id = ctx.recorder.stages[0].stage_id
        assert stage_disk_utilization(ctx.recorder, stage_id) > 0.3

    def test_throughput_positive_during_scan(self):
        ctx = run_scan()
        stage_id = ctx.recorder.stages[0].stage_id
        assert stage_disk_throughput(ctx.recorder, stage_id) > 1 * MB

    def test_timeseries_starts_at_stage_start(self):
        ctx = run_scan()
        stage_id = ctx.recorder.stages[0].stage_id
        series = throughput_timeseries(ctx.recorder, stage_id, node_id=0)
        assert series
        assert all(t >= 0 for t, _v in series)

    def test_cluster_timeseries_sums_nodes(self):
        ctx = run_scan()
        stage_id = ctx.recorder.stages[0].stage_id
        per_node = throughput_timeseries(ctx.recorder, stage_id, node_id=0)
        aggregate = throughput_timeseries(ctx.recorder, stage_id)
        assert max(v for _t, v in aggregate) >= max(v for _t, v in per_node)


class TestEpollSensor:
    def test_reading_diffs_from_reset_point(self):
        ctx = make_context()
        ctx.register_synthetic_file("/in", 64 * MB, num_records=1e5)
        executor = ctx.executors[0]
        sensor = EpollSensor(executor)
        ctx.text_file("/in", 8).count()
        reading = sensor.read()
        assert reading.epoll_wait_seconds > 0
        assert reading.io_bytes > 0
        assert reading.tasks_completed > 0
        assert reading.elapsed > 0
        sensor.reset()
        fresh = sensor.read()
        assert fresh.io_bytes == 0
        assert fresh.tasks_completed == 0

    def test_throughput_derived_from_interval(self):
        from repro.monitoring.strace import EpollReading

        reading = EpollReading(
            epoll_wait_seconds=1.0, io_bytes=100.0,
            tasks_completed=2, elapsed=4.0,
        )
        assert reading.throughput == pytest.approx(25.0)
        zero = EpollReading(0.0, 0.0, 0, 0.0)
        assert zero.throughput == 0.0
