"""Golden-log determinism: fixed-seed runs must reproduce committed event
logs *byte for byte*.

The files under ``tests/golden/`` were generated before the kernel fast
paths landed (scalar ``uniform_rate``, ``call_in`` deferred callbacks,
batched tag accounting).  Any optimisation that changes a float expression,
an accumulation order, or a queue tie-break shows up here as a diff --
which is exactly the regression this suite exists to catch.

Regenerate (only when an *intentional* semantic change lands) with::

    PYTHONPATH=src python -m repro run terasort --scale 0.05 --seed 42 \
        --events tests/golden/terasort_s005_seed42.jsonl
    PYTHONPATH=src python -m repro run terasort --scale 0.05 --seed 42 \
        --faults examples/faults/node-loss.json \
        --events tests/golden/terasort_s005_seed42_nodeloss.jsonl
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.simulation.kernel import core_available

GOLDEN_DIR = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).parent.parent


def _run_and_read(tmp_path, extra_args):
    out = tmp_path / "events.jsonl"
    code = main(
        ["run", "terasort", "--scale", "0.05", "--seed", "42",
         "--events", str(out)] + extra_args
    )
    assert code == 0
    return out.read_bytes()


def _golden_bytes(name):
    path = GOLDEN_DIR / name
    if not path.exists():
        pytest.skip(f"golden log {name} not present")
    return path.read_bytes()


class TestGoldenLogs:
    def test_terasort_event_log_bit_identical(self, tmp_path, capsys):
        fresh = _run_and_read(tmp_path, [])
        assert fresh == _golden_bytes("terasort_s005_seed42.jsonl")

    def test_terasort_with_node_loss_bit_identical(self, tmp_path, capsys):
        plan = REPO_ROOT / "examples" / "faults" / "node-loss.json"
        if not plan.exists():
            pytest.skip("node-loss example plan not present")
        fresh = _run_and_read(tmp_path, ["--faults", str(plan)])
        assert fresh == _golden_bytes("terasort_s005_seed42_nodeloss.jsonl")


class TestForkedGoldenLogs:
    """The fork engine's correctness contract: a run that diverges in a
    copy-on-write child after the shared setup prefix must write the SAME
    BYTES as a from-scratch run -- against the committed goldens, so fork
    and non-fork paths are held to one reference."""

    def test_forked_event_log_bit_identical(self, tmp_path, capsys):
        fresh = _run_and_read(tmp_path, ["--fork"])
        assert fresh == _golden_bytes("terasort_s005_seed42.jsonl")

    def test_forked_node_loss_bit_identical(self, tmp_path, capsys):
        # The fault plan is a *divergence* on the fork path: the injector
        # is wired in the child, not in the shared prefix.
        plan = REPO_ROOT / "examples" / "faults" / "node-loss.json"
        if not plan.exists():
            pytest.skip("node-loss example plan not present")
        fresh = _run_and_read(tmp_path, ["--fork", "--faults", str(plan)])
        assert fresh == _golden_bytes("terasort_s005_seed42_nodeloss.jsonl")


needs_vector = pytest.mark.skipif(
    not core_available("vector"), reason="numpy not available"
)


@needs_vector
class TestVectorCoreGoldenLogs:
    """The vector core's correctness contract: ``--core vector`` must write
    the SAME BYTES as the committed goldens -- both kernels are held to one
    reference log, so any float-expression or ordering drift in the
    vectorized engine fails here."""

    def test_vector_event_log_bit_identical(self, tmp_path, capsys):
        fresh = _run_and_read(tmp_path, ["--core", "vector"])
        assert fresh == _golden_bytes("terasort_s005_seed42.jsonl")

    def test_vector_node_loss_bit_identical(self, tmp_path, capsys):
        plan = REPO_ROOT / "examples" / "faults" / "node-loss.json"
        if not plan.exists():
            pytest.skip("node-loss example plan not present")
        fresh = _run_and_read(tmp_path, ["--core", "vector", "--faults", str(plan)])
        assert fresh == _golden_bytes("terasort_s005_seed42_nodeloss.jsonl")


@needs_vector
class TestCrossCoreSweep:
    def test_sweep_reports_equal_across_cores(self, tmp_path, capsys):
        """A fixed-seed sweep must produce byte-equal JSON reports under
        both kernel cores (the sweep ladder exercises every pool size, so
        this covers small scalar-path sets and large vector-path sets)."""
        outputs = {}
        for core in ("python", "vector"):
            code = main(
                ["sweep", "terasort", "--scale", "0.02", "--seed", "7",
                 "--core", core, "--json"]
            )
            assert code == 0
            outputs[core] = capsys.readouterr().out
        assert outputs["python"] == outputs["vector"]
