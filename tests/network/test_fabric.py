"""Tests for the network fabric."""

import pytest

from repro.network import NetworkFabric
from repro.network.fabric import GBIT, NetworkLink
from repro.simulation import Simulator


def make_fabric(sim, nodes=2, bandwidth=100.0, latency=0.0):
    fabric = NetworkFabric(sim, bandwidth=bandwidth, latency=latency)
    for node_id in range(nodes):
        fabric.register_node(node_id)
    return fabric


class TestNetworkLink:
    def test_send_duration_is_latency_plus_transfer(self):
        sim = Simulator()
        link = NetworkLink(sim, "l", bandwidth=100.0, latency=0.5)
        done = {}
        link.send(200.0).add_callback(lambda e: done.setdefault("t", sim.now))
        sim.run()
        assert done["t"] == pytest.approx(2.5)

    def test_flows_share_bandwidth(self):
        sim = Simulator()
        link = NetworkLink(sim, "l", bandwidth=100.0, latency=0.0)
        link.send(100.0)
        link.send(100.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_bytes_accounted(self):
        sim = Simulator()
        link = NetworkLink(sim, "l", bandwidth=100.0, latency=0.0)
        link.send(30.0)
        link.send(12.0)
        sim.run()
        assert link.bytes_transferred == pytest.approx(42.0)

    def test_negative_size_rejected(self):
        sim = Simulator()
        link = NetworkLink(sim, "l", bandwidth=100.0)
        with pytest.raises(ValueError):
            link.send(-1.0)

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            NetworkLink(sim, "l", bandwidth=100.0, latency=-0.1)


class TestNetworkFabric:
    def test_transfer_limited_by_bottleneck(self):
        sim = Simulator()
        fabric = make_fabric(sim, nodes=3)
        # Two flows leave node 0 to different destinations: egress at node 0
        # is the bottleneck, each flow gets 50/s.
        fabric.transfer(0, 1, 100.0)
        fabric.transfer(0, 2, 100.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_same_node_transfer_is_free(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        event = fabric.transfer(0, 0, 1e9)
        assert event.triggered
        assert sim.now == 0.0

    def test_incast_contends_at_ingress(self):
        sim = Simulator()
        fabric = make_fabric(sim, nodes=3)
        fabric.transfer(0, 2, 100.0)
        fabric.transfer(1, 2, 100.0)
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_disjoint_pairs_do_not_contend(self):
        sim = Simulator()
        fabric = make_fabric(sim, nodes=4)
        fabric.transfer(0, 1, 100.0)
        fabric.transfer(2, 3, 100.0)
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        fabric = make_fabric(sim)
        with pytest.raises(ValueError):
            fabric.register_node(0)

    def test_total_bytes_counts_each_flow_once(self):
        sim = Simulator()
        fabric = make_fabric(sim, nodes=3)
        fabric.transfer(0, 1, 10.0)
        fabric.transfer(1, 2, 32.0)
        sim.run()
        assert fabric.total_bytes() == pytest.approx(42.0)

    def test_gbit_constant(self):
        assert GBIT == pytest.approx(1.25e8)

    def test_node_ids_sorted(self):
        sim = Simulator()
        fabric = NetworkFabric(sim)
        for node_id in (2, 0, 1):
            fabric.register_node(node_id)
        assert fabric.node_ids == [0, 1, 2]
