"""The live invariant monitor: clean runs stay clean (and bit-identical),
seeded corruption is caught at the hook sites, and the golden logs replay
clean through the offline checkers."""

import heapq
import io

import pytest

from repro.faults.plan import CANNED_PLANS
from repro.harness.runner import finish_trace, run_workload
from repro.observability.history import load_events
from repro.observability.sinks import JsonLinesSink
from repro.observability.tracer import Tracer
from repro.simulation import SimulationError, Simulator
from repro.validation import (
    InvariantMonitor,
    InvariantViolationError,
    Violation,
    validate_events,
)

GOLDEN = "tests/golden/terasort_s005_seed42.jsonl"
GOLDEN_NODELOSS = "tests/golden/terasort_s005_seed42_nodeloss.jsonl"

RUN_KWARGS = dict(workload_kwargs={"scale": 0.02}, num_nodes=2, seed=42)


def _traced_run(policy="dynamic", monitor=None, **kwargs):
    buffer = io.StringIO()
    tracer = Tracer()
    tracer.add_sink(JsonLinesSink(buffer))
    merged = dict(RUN_KWARGS)
    merged.update(kwargs)
    run = run_workload("terasort", policy=policy, tracer=tracer,
                       invariants=monitor, **merged)
    finish_trace(run)
    return buffer.getvalue(), run


class TestGoldenLogs:
    def test_fault_free_golden_validates_clean_and_strict(self):
        report = validate_events(load_events(GOLDEN), max_failures=4)
        assert report.ok, report.summary()
        assert report.strict  # no fault events -> held to strict invariants
        assert report.events_seen == 12888

    def test_nodeloss_golden_validates_clean(self):
        report = validate_events(load_events(GOLDEN_NODELOSS), max_failures=4)
        assert report.ok, report.summary()
        assert not report.strict


class TestLiveMonitor:
    def test_clean_run_reports_ok(self):
        monitor = InvariantMonitor(mode="raise")
        _traced_run(monitor=monitor)
        report = monitor.finish()
        assert report.ok
        assert report.events_seen > 0
        assert report.checks_run > report.events_seen  # hooks ran too

    def test_monitor_does_not_change_the_event_log(self):
        plain, _ = _traced_run()
        monitored, _ = _traced_run(monitor=InvariantMonitor(mode="raise"))
        assert plain == monitored  # byte-identical, monitor adds no events

    def test_monitor_works_without_a_tracer(self):
        monitor = InvariantMonitor(mode="raise")
        run_workload("terasort", policy="dynamic", invariants=monitor,
                     **RUN_KWARGS)
        report = monitor.finish()
        assert report.ok
        assert report.events_seen == 0  # no tracer: hook checks only
        assert report.checks_run > 0

    @pytest.mark.parametrize("plan_name", sorted(CANNED_PLANS))
    def test_faulty_runs_stay_invariant_clean(self, plan_name):
        monitor = InvariantMonitor(mode="raise")
        _traced_run(monitor=monitor,
                    fault_plan=CANNED_PLANS[plan_name]())
        assert monitor.finish().ok

    def test_finish_is_idempotent(self):
        monitor = InvariantMonitor(mode="collect")
        _traced_run(monitor=monitor)
        first = monitor.finish()
        assert monitor.finish() is first
        assert first.checks_run == monitor.finish().checks_run


class TestSeededCorruption:
    """Corrupt live engine state and assert the hook catches it."""

    def _bound_monitor(self, mode="raise"):
        from repro.harness.runner import build_context

        monitor = InvariantMonitor(mode=mode)
        ctx = build_context(policy="default", invariants=monitor,
                            num_nodes=2, seed=42)
        return monitor, ctx

    def test_corrupted_assignment_registry_raises(self):
        monitor, ctx = self._bound_monitor()
        scheduler = ctx.scheduler
        scheduler._pool_view[0] = 4
        scheduler._assigned[0] = 5  # more assigned than the pool holds
        with pytest.raises(InvariantViolationError) as info:
            monitor.on_task_launched(scheduler, 0)
        assert info.value.violation.invariant == "scheduler.registry"
        assert "pool view" in str(info.value)

    def test_out_of_bounds_pool_view_raises(self):
        monitor, ctx = self._bound_monitor()
        ctx.scheduler._pool_view[1] = 10_000
        with pytest.raises(InvariantViolationError):
            monitor.on_pool_view_update(ctx.scheduler, 1)

    def test_negative_running_count_raises(self):
        monitor, ctx = self._bound_monitor()
        executor = ctx.executors[0]
        executor.running = -1
        with pytest.raises(InvariantViolationError) as info:
            monitor.on_executor_cleanup(executor)
        assert "negative" in str(info.value)

    def test_quiescence_divergence_raises(self):
        monitor, ctx = self._bound_monitor()
        scheduler = ctx.scheduler

        class _FakeStage:
            stage_id = 7
            num_tasks = 0

        class _FakeRun:
            stage = _FakeStage()
            completed_partitions = set()

        for executor in ctx.executors:
            scheduler._pool_view[executor.executor_id] = executor.pool_size
            scheduler._assigned[executor.executor_id] = 0
        # Desynchronise: the driver believes a pool size reality disagrees
        # with.
        scheduler._pool_view[0] = ctx.executors[0].pool_size - 1
        with pytest.raises(InvariantViolationError) as info:
            monitor.on_stage_quiescent(scheduler, _FakeRun())
        assert info.value.violation.invariant == "scheduler.registry"
        assert "free-core registry" in str(info.value)

    def test_illegal_mapek_decision_raises(self):
        from repro.adaptive.mapek import Decision, KnowledgeBase

        monitor, ctx = self._bound_monitor()

        class _FakeExecutor:
            executor_id = 0

        class _FakeStage:
            stage_id = 0

        class _FakeLoop:
            knowledge = KnowledgeBase(cmin=2, cmax=8, current_threads=2)
            executor = _FakeExecutor()
            stage = _FakeStage()

        with pytest.raises(InvariantViolationError) as info:
            # A climb from 2 threads must land on 4, not 8.
            monitor.on_mapek_decision(
                _FakeLoop(), Decision(threads=8, settled=False,
                                      reason="climb")
            )
        assert info.value.violation.invariant == "mapek.transition"

    def test_mapek_bounds_violation_raises(self):
        from repro.adaptive.mapek import Decision, KnowledgeBase

        monitor, ctx = self._bound_monitor()

        class _FakeLoop:
            knowledge = KnowledgeBase(cmin=2, cmax=8, current_threads=8)

            class executor:
                executor_id = 0

            class stage:
                stage_id = 0

        with pytest.raises(InvariantViolationError) as info:
            monitor.on_mapek_decision(
                _FakeLoop(), Decision(threads=16, settled=True,
                                      reason="reached-cmax")
            )
        assert info.value.violation.invariant == "mapek.bounds"

    def test_log_mode_keeps_going(self, capsys):
        monitor, ctx = self._bound_monitor(mode="log")
        executor = ctx.executors[0]
        executor.running = -1
        monitor.on_executor_cleanup(executor)  # no raise
        assert len(monitor.report.violations) == 1
        assert "invariant violation" in capsys.readouterr().err

    def test_collect_mode_is_silent(self, capsys):
        monitor, ctx = self._bound_monitor(mode="collect")
        executor = ctx.executors[0]
        executor.running = -1
        monitor.on_executor_cleanup(executor)
        assert not monitor.report.ok
        assert capsys.readouterr().err == ""

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantMonitor(mode="explode")


class TestMonotonicGuard:
    def test_backwards_event_caught(self):
        sim = Simulator()
        sim.monotonic_guard = True
        sim.call_in(5.0, lambda: None)
        sim.run()
        # Corrupt the queue directly: an event in the past.
        heapq.heappush(sim._queue, (1.0, 10_000, None))
        with pytest.raises(SimulationError) as info:
            sim.step()
        assert "backwards" in str(info.value)

    def test_guard_off_by_default(self):
        sim = Simulator()
        assert sim.monotonic_guard is False

    def test_bound_context_arms_the_guard(self):
        from repro.harness.runner import build_context

        ctx = build_context(policy="default", num_nodes=2, seed=42,
                            invariants=InvariantMonitor())
        assert ctx.sim.monotonic_guard is True
        assert ctx.invariants is not None


class TestViolationRendering:
    def test_render_includes_context(self):
        violation = Violation(
            invariant="scheduler.registry", message="registry diverged",
            ts=12.5, context={"executor_id": 3, "pool_view": 8},
        )
        rendered = violation.render()
        assert "scheduler.registry" in rendered
        assert "t=12.500" in rendered
        assert "executor_id=3" in rendered
