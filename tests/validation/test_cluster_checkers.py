"""Cluster-level invariant checkers: live monitor and offline report replay.

:class:`ClusterInvariantMonitor` hooks into the service scheduler (grant
legality, breaker legality, final conservation);
:func:`validate_service_report` replays the same families of invariants
from a saved ``repro.service/*`` document.  These tests pin both against
hand-built good and corrupted inputs, plus the ``repro validate`` CLI
routing that sniffs service reports apart from event logs.
"""

import json

import pytest

from repro.cli import main
from repro.cluster.scheduler import ClusterScheduler, ServiceJob, _Node
from repro.faults.plan import ClusterFaults, NodeChurn, ProtectionConfig
from repro.validation import (
    ClusterInvariantMonitor,
    InvariantViolationError,
    validate_service_report,
)


def good_report(**overrides):
    doc = {
        "schema": "repro.service/1",
        "totals": {"submitted": 3, "completed": 2, "rejected": 1},
        "makespan_s": 20.0,
        "jobs": [
            {"job_id": "j0", "end": 10.0, "rejected": False,
             "aborted": False},
            {"job_id": "j1", "end": 20.0, "rejected": False,
             "aborted": False},
            {"job_id": "j2", "end": None, "rejected": True,
             "aborted": False},
        ],
        "resilience": {
            "aborted": 0,
            "shed": {"queue": 1},
            "availability": {"a": 1.0, "b": 0.5},
            "breakers": {
                "a": {
                    "state": "closed",
                    "opens": 1,
                    "transitions": [[5.0, "open"], [8.0, "half_open"],
                                    [9.0, "closed"]],
                },
            },
        },
    }
    doc.update(overrides)
    return doc


class TestOfflineReportValidation:
    def test_clean_report_passes(self):
        report = validate_service_report(good_report())
        assert report.ok, report.summary()
        assert report.checks_run > 0

    def test_chaos_free_report_passes_without_resilience(self):
        doc = good_report()
        doc["totals"] = {"submitted": 2, "completed": 2, "rejected": 0}
        doc["jobs"] = doc["jobs"][:2]
        del doc["resilience"]
        assert validate_service_report(doc).ok

    def test_non_service_document_is_one_violation(self):
        report = validate_service_report({"schema": "repro.trace/1"})
        assert not report.ok
        assert report.violations[0].invariant == "cluster.schema"

    def test_conservation_violation_detected(self):
        doc = good_report()
        doc["totals"]["completed"] = 3
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.conservation"
                   for v in report.violations)

    def test_shed_reason_mismatch_detected(self):
        doc = good_report()
        doc["resilience"]["shed"] = {"queue": 5}
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.conservation"
                   for v in report.violations)

    def test_double_terminal_state_detected(self):
        doc = good_report()
        doc["jobs"][0]["rejected"] = True
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.terminal"
                   for v in report.violations)

    def test_makespan_before_last_completion_detected(self):
        doc = good_report(makespan_s=5.0)
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.makespan"
                   for v in report.violations)

    def test_availability_out_of_range_detected(self):
        doc = good_report()
        doc["resilience"]["availability"]["a"] = 1.5
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.availability"
                   for v in report.violations)

    def test_illegal_breaker_transition_detected(self):
        doc = good_report()
        doc["resilience"]["breakers"]["a"]["transitions"] = [
            [5.0, "half_open"]]  # closed -> half_open is illegal
        doc["resilience"]["breakers"]["a"]["state"] = "half_open"
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.breaker"
                   for v in report.violations)

    def test_final_state_must_match_transitions(self):
        doc = good_report()
        doc["resilience"]["breakers"]["a"]["state"] = "open"
        report = validate_service_report(doc)
        assert any(v.invariant == "cluster.breaker"
                   for v in report.violations)


class TestLiveMonitor:
    def test_grant_to_down_node_raises(self):
        monitor = ClusterInvariantMonitor(mode="raise")
        nodes = [_Node(), _Node()]
        nodes[1].down = 1
        job = ServiceJob(job_id="j0", tenant="a", workload="w", arrival=0.0,
                         slots=1, runtime=1.0)
        with pytest.raises(InvariantViolationError, match="down node"):
            monitor.on_grant(1.0, job, [1], nodes)

    def test_collect_mode_accumulates(self):
        monitor = ClusterInvariantMonitor(mode="collect")
        monitor.on_breaker(1.0, "a", "closed", "half_open")
        monitor.on_final(2.0, submitted=3, completed=1, rejected=1,
                         aborted=0)
        assert len(monitor.report.violations) == 2
        assert not monitor.report.ok

    def test_legal_run_is_clean(self):
        monitor = ClusterInvariantMonitor(mode="raise")
        chaos = ClusterFaults(
            node_churn=(NodeChurn(node_id=0, down_at=5.0, duration=10.0),),
            protection=ProtectionConfig(max_retries=2),
        )
        jobs = [ServiceJob(job_id=f"j{i}", tenant="a", workload="w",
                           arrival=float(i), slots=1, runtime=8.0)
                for i in range(6)]
        result = ClusterScheduler(2, "fifo", chaos=chaos, chaos_seed=1,
                                  monitor=monitor).run(jobs)
        assert result.completed + result.rejected + result.aborted == 6
        assert monitor.report.ok
        assert monitor.report.checks_run > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ClusterInvariantMonitor(mode="explode")


class TestCliRouting:
    def test_validate_routes_service_report(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(good_report()))
        assert main(["validate", str(path)]) == 0
        assert "checks" in capsys.readouterr().out

    def test_validate_fails_on_corrupt_report(self, tmp_path):
        doc = good_report()
        doc["totals"]["completed"] = 99
        path = tmp_path / "report.json"
        path.write_text(json.dumps(doc))
        assert main(["validate", str(path)]) == 1

    def test_validate_json_output(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(good_report()))
        assert main(["validate", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
