"""Every invariant class catches a deliberately seeded violation.

Each test hand-builds a small event stream around a known-good skeleton,
breaks exactly one invariant, and asserts the checker reports it with an
actionable message (the invariant id, the entities involved, the counts
that disagreed).
"""

import pytest

from repro.observability.events import (
    BEGIN,
    COMPLETE,
    COUNTER,
    END,
    INSTANT,
    TraceEvent,
)
from repro.validation import validate_events


class _Stream:
    """Event-stream builder with automatic seq/span numbering."""

    def __init__(self):
        self.events = []
        self._seq = 0
        self._span = 0

    def _stamp(self, ts):
        seq = self._seq
        self._seq += 1
        return ts, seq

    def emit(self, ts, kind, cat, name, span=-1, parent=-1, dur=0.0, **args):
        ts, seq = self._stamp(ts)
        event = TraceEvent(ts, seq, kind, cat, name, span=span,
                           parent=parent, dur=dur, args=args)
        self.events.append(event)
        return event

    def begin(self, ts, cat, name, parent=-1, **args):
        span = self._span
        self._span += 1
        self.emit(ts, BEGIN, cat, name, span=span, parent=parent, **args)
        return span

    def end(self, ts, span, **args):
        self.emit(ts, END, "", "", span=span, **args)

    def app_start(self, num_nodes=2, cores=4):
        self.emit(0.0, INSTANT, "app", "application-start",
                  num_nodes=num_nodes, cores_per_node=cores, device="hdd")


def _one_task_stage(stream, stage_id=0, num_tasks=1, ts=1.0):
    """A minimal healthy stage: one task launched and completed."""
    stage = stream.begin(ts, "stage", "rdd", stage_id=stage_id,
                         num_tasks=num_tasks, io_marked=True)
    for partition in range(num_tasks):
        task = stream.begin(ts + 0.1, "task", f"task {stage_id}.{partition}",
                            executor_id=0, stage_id=stage_id,
                            partition=partition, pool_size=4)
        stream.end(ts + 1.0, task, io_wait=0.1, io_bytes=100)
    stream.end(ts + 1.1, stage, duration=1.1)
    return stage


def _violations(stream, **kwargs):
    report = validate_events(stream.events, **kwargs)
    return report, [v.invariant for v in report.violations]


class TestClockChecker:
    def test_clean_stream_passes(self):
        s = _Stream()
        s.app_start()
        _one_task_stage(s)
        report, _ = _violations(s)
        assert report.ok and report.checks_run > 0

    def test_backwards_clock_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(5.0, INSTANT, "pool", "resize", executor_id=0, stage_id=0,
               size=4, reason="stage-start")
        s.emit(2.0, INSTANT, "pool", "resize", executor_id=0, stage_id=0,
               size=4, reason="adapt")
        report, kinds = _violations(s)
        assert "clock.monotonic" in kinds
        message = report.violations[0].message
        assert "2.0" in message and "5.0" in message

    def test_non_increasing_seq_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, INSTANT, "pool", "resize", size=4)
        s.events[-1].seq = 0  # collide with the app-start event
        _, kinds = _violations(s)
        assert "clock.sequence" in kinds

    def test_complete_event_start_may_predate_clock(self):
        s = _Stream()
        s.app_start()
        s.emit(5.0, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision="climb", threads=2, settled=False)
        # X interval started at 1.0 < clock 5.0: legal, ends at the clock.
        s.emit(1.0, COMPLETE, "mapek", "interval", dur=4.0, executor_id=0,
               stage_id=0, threads=1, zeta=1.0, decision="climb")
        report, _ = _violations(s)
        assert report.ok

    def test_complete_event_ending_in_past_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(5.0, INSTANT, "pool", "resize", size=4)
        s.emit(1.0, COMPLETE, "mapek", "interval", dur=0.5, executor_id=0,
               stage_id=0, threads=1, zeta=1.0, decision="climb")
        _, kinds = _violations(s)
        assert "clock.monotonic" in kinds


class TestSpanChecker:
    def test_unbalanced_span_caught_in_strict_mode(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                partition=0, pool_size=4)  # never ended
        s.end(2.0, stage, duration=1.0)
        _, kinds = _violations(s, strict=True)
        assert "spans.balance" in kinds

    def test_double_close_caught(self):
        s = _Stream()
        s.app_start()
        span = s.begin(1.0, "io", "dfs-read", executor_id=0, bytes=10)
        s.end(2.0, span)
        s.end(3.0, span)
        report, kinds = _violations(s)
        assert "spans.balance" in kinds
        assert "already closed" in report.violations[0].message

    def test_unknown_parent_caught(self):
        s = _Stream()
        s.app_start()
        s.begin(1.0, "io", "dfs-read", parent=999, executor_id=0, bytes=10)
        _, kinds = _violations(s)
        assert "spans.balance" in kinds

    def test_open_task_span_tolerated_under_faults(self):
        s = _Stream()
        s.app_start()
        s.emit(0.5, INSTANT, "fault", "node-loss", node_id=1)
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                partition=0, pool_size=4)  # killed attempt: E never emitted
        task2 = s.begin(1.2, "task", "task 0.0", executor_id=0, stage_id=0,
                        partition=0, attempt=1, pool_size=4)
        s.end(2.0, task2, io_wait=0.0, io_bytes=10)
        s.end(2.1, stage, duration=1.1)
        report, _ = _violations(s)
        assert report.ok

    def test_open_stage_span_violates_even_under_faults(self):
        s = _Stream()
        s.app_start()
        s.emit(0.5, INSTANT, "fault", "node-loss", node_id=1)
        s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=0, io_marked=True)
        _, kinds = _violations(s)
        assert "spans.balance" in kinds


class TestTaskChecker:
    def test_duplicate_attempt_id_caught(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        a = s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                    partition=0, pool_size=4)
        b = s.begin(1.2, "task", "task 0.0", executor_id=1, stage_id=0,
                    partition=0, pool_size=4)  # same attempt 0 again
        s.end(2.0, a, io_wait=0.0, io_bytes=1)
        s.end(2.1, b, io_wait=0.0, io_bytes=1)
        s.end(2.2, stage, duration=1.2)
        report, kinds = _violations(s)
        assert "tasks.conservation" in kinds
        assert "duplicate attempt" in " ".join(
            v.message for v in report.violations
        )

    def test_stage_closing_with_missing_partition_caught(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=2,
                        io_marked=True)
        task = s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                       partition=0, pool_size=4)
        s.end(2.0, task, io_wait=0.0, io_bytes=1)
        s.end(2.1, stage, duration=1.1)  # partition 1 never completed
        report, kinds = _violations(s)
        assert "tasks.conservation" in kinds
        assert "never completed" in report.violations[0].message

    def test_task_for_unknown_stage_caught(self):
        s = _Stream()
        s.app_start()
        s.begin(1.0, "task", "task 9.0", executor_id=0, stage_id=9,
                partition=0, pool_size=4)
        _, kinds = _violations(s)
        assert "tasks.conservation" in kinds

    def test_retry_budget_overrun_caught(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        s.emit(1.05, INSTANT, "fault", "task-crash", executor_id=0,
               stage_id=0, partition=0, attempt=0, reason="injected-crash")
        for attempt in range(3):  # 3 crashes > maxFailures=2
            task = s.begin(1.1 + attempt, "task", "task 0.0", executor_id=0,
                           stage_id=0, partition=0, pool_size=4,
                           **({"attempt": attempt} if attempt else {}))
            s.end(1.5 + attempt, task, crashed=True)
        winner = s.begin(5.0, "task", "task 0.0", executor_id=0, stage_id=0,
                         partition=0, attempt=3, pool_size=4)
        s.end(6.0, winner, io_wait=0.0, io_bytes=1)
        s.end(6.1, stage, duration=5.1)
        report, kinds = _violations(s, max_failures=2)
        assert "tasks.retries" in kinds
        assert "maxFailures" in report.violations[0].message

    def test_exhausted_budget_without_abort_caught(self):
        s = _Stream()
        s.app_start()
        s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1, io_marked=True)
        s.emit(1.05, INSTANT, "fault", "task-crash", executor_id=0,
               stage_id=0, partition=0, attempt=0, reason="injected-crash")
        for attempt in range(2):
            task = s.begin(1.1 + attempt, "task", "task 0.0", executor_id=0,
                           stage_id=0, partition=0, pool_size=4,
                           **({"attempt": attempt} if attempt else {}))
            s.end(1.5 + attempt, task, crashed=True)
        report, kinds = _violations(s, max_failures=2)
        assert "tasks.retries" in kinds
        assert "never aborted" in " ".join(
            v.message for v in report.violations
        )

    def test_strict_launch_count_mismatch_caught(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        a = s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                    partition=0, pool_size=4)
        b = s.begin(1.2, "task", "task 0.0", executor_id=1, stage_id=0,
                    partition=0, attempt=1, pool_size=4)
        s.end(2.0, a, io_wait=0.0, io_bytes=1)
        s.end(2.1, b, io_wait=0.0, io_bytes=1)
        s.end(2.2, stage, duration=1.2)
        _, kinds = _violations(s, strict=True)
        # Two launches for one partition without any fault event.
        assert "tasks.conservation" in kinds


class TestRegistryChecker:
    def test_oversubscribed_executor_caught(self):
        s = _Stream()
        s.app_start(cores=2)
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=3,
                        io_marked=True)
        tasks = [
            s.begin(1.1, "task", f"task 0.{p}", executor_id=0, stage_id=0,
                    partition=p, pool_size=2)
            for p in range(3)  # 3 concurrent tasks on a 2-core node
        ]
        for p, task in enumerate(tasks):
            s.end(2.0 + p * 0.1, task, io_wait=0.0, io_bytes=1)
        s.end(2.5, stage, duration=1.5)
        report, kinds = _violations(s)
        assert "scheduler.registry" in kinds
        assert "2 cores" in report.violations[0].message

    def test_stage_start_with_running_tasks_caught(self):
        s = _Stream()
        s.app_start()
        stage = s.begin(1.0, "stage", "rdd", stage_id=0, num_tasks=1,
                        io_marked=True)
        s.begin(1.1, "task", "task 0.0", executor_id=0, stage_id=0,
                partition=0, pool_size=4)  # still running at next stage
        s.begin(3.0, "stage", "rdd2", stage_id=1, num_tasks=0,
                io_marked=False)
        report, kinds = _violations(s)
        assert "scheduler.registry" in kinds

    def test_pool_size_out_of_bounds_caught(self):
        s = _Stream()
        s.app_start(cores=4)
        s.emit(1.0, INSTANT, "pool", "resize", executor_id=0, stage_id=0,
               size=9, reason="adapt")
        report, kinds = _violations(s)
        assert "scheduler.registry" in kinds
        assert "[1, 4]" in report.violations[0].message

    def test_pool_resized_message_out_of_bounds_caught(self):
        s = _Stream()
        s.app_start(cores=4)
        s.emit(1.0, INSTANT, "scheduler", "pool-resized", executor_id=0,
               pool_size=0)
        _, kinds = _violations(s)
        assert "scheduler.registry" in kinds


class TestMapekChecker:
    @staticmethod
    def _interval(s, ts, threads, decision, settled):
        s.emit(ts, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision=decision,
               threads=threads * 2 if decision == "climb" else threads,
               settled=settled)
        s.emit(ts - 1.0, COMPLETE, "mapek", "interval", dur=1.0,
               executor_id=0, stage_id=0, threads=threads, zeta=1.0,
               decision=decision)

    def test_legal_climb_ladder_passes(self):
        s = _Stream()
        s.app_start(cores=8)
        self._interval(s, 2.0, 2, "climb", False)
        self._interval(s, 4.0, 4, "climb", False)
        s.emit(5.0, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision="reached-cmax", threads=8, settled=True)
        s.emit(4.5, COMPLETE, "mapek", "interval", dur=0.5, executor_id=0,
               stage_id=0, threads=8, zeta=1.0, decision="reached-cmax")
        report, _ = _violations(s)
        assert report.ok

    def test_illegal_jump_caught(self):
        s = _Stream()
        s.app_start(cores=32)
        self._interval(s, 2.0, 2, "climb", False)
        s.emit(3.0, COMPLETE, "mapek", "interval", dur=1.0, executor_id=0,
               stage_id=0, threads=16, zeta=1.0, decision="climb")
        report, kinds = _violations(s)
        assert "mapek.transition" in kinds
        assert "2 -> 16" in report.violations[0].message

    def test_adapting_after_settle_caught(self):
        s = _Stream()
        s.app_start(cores=8)
        s.emit(2.0, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision="rollback", threads=2, settled=True)
        s.emit(3.0, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision="climb", threads=4, settled=False)
        _, kinds = _violations(s)
        assert "mapek.transition" in kinds

    def test_threads_out_of_bounds_caught(self):
        s = _Stream()
        s.app_start(cores=8)
        s.emit(2.0, INSTANT, "mapek", "analyze", executor_id=0, stage_id=0,
               zeta=1.0, decision="climb", threads=16, settled=False)
        report, kinds = _violations(s)
        assert "mapek.bounds" in kinds
        assert "[1, 8]" in report.violations[0].message


class TestShuffleChecker:
    def test_duplicate_registration_caught(self):
        s = _Stream()
        s.app_start()
        for _ in range(2):
            s.emit(1.0, INSTANT, "shuffle", "map-output", shuffle_id=0,
                   map_id=3, node_id=1, bytes=100, registered=1, expected=4)
        report, kinds = _violations(s)
        assert "shuffle.accounting" in kinds
        assert "registered twice" in report.violations[0].message

    def test_tracker_count_mismatch_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, INSTANT, "shuffle", "map-output", shuffle_id=0,
               map_id=0, node_id=1, bytes=100, registered=5, expected=8)
        report, kinds = _violations(s)
        assert "shuffle.accounting" in kinds
        assert "5" in report.violations[0].message

    def test_node_loss_accounting_mismatch_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(0.1, INSTANT, "fault", "node-loss", node_id=1)
        s.emit(1.0, INSTANT, "shuffle", "map-output", shuffle_id=0,
               map_id=0, node_id=1, bytes=100, registered=1, expected=4)
        s.emit(2.0, INSTANT, "fault", "shuffle-outputs-lost", shuffle_id=0,
               node_id=1, lost_maps=3)  # stream only tracked 1 on node 1
        report, kinds = _violations(s)
        assert "shuffle.accounting" in kinds
        assert "lost" in report.violations[0].invariant or "3" in \
            report.violations[0].message

    def test_more_outputs_than_expected_caught(self):
        s = _Stream()
        s.app_start()
        for map_id in range(3):
            s.emit(1.0 + map_id, INSTANT, "shuffle", "map-output",
                   shuffle_id=0, map_id=map_id, node_id=0, bytes=10,
                   registered=map_id + 1, expected=2)
        _, kinds = _violations(s)
        assert "shuffle.accounting" in kinds


class TestQueueChecker:
    def test_negative_nic_counter_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, COUNTER, "network", "nic.0", value=-10, active_flows=1,
               dst=1, tag="shuffle")
        report, kinds = _violations(s)
        assert "queues.nonnegative" in kinds

    def test_zero_device_queue_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, COUNTER, "device", "disk.0", value=0, efficiency=1.0,
               op="read")
        _, kinds = _violations(s)
        assert "queues.nonnegative" in kinds

    def test_bad_efficiency_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, COUNTER, "device", "disk.0", value=1, efficiency=1.5,
               op="read")
        _, kinds = _violations(s)
        assert "queues.nonnegative" in kinds

    def test_zero_flows_caught(self):
        s = _Stream()
        s.app_start()
        s.emit(1.0, COUNTER, "network", "nic.0", value=10, active_flows=0,
               dst=1, tag="shuffle")
        _, kinds = _violations(s)
        assert "queues.nonnegative" in kinds


class TestReportRendering:
    def test_violation_render_is_actionable(self):
        s = _Stream()
        s.app_start(cores=4)
        s.emit(1.0, INSTANT, "pool", "resize", executor_id=2, stage_id=0,
               size=9, reason="adapt")
        report, _ = _violations(s)
        rendered = report.summary()
        assert rendered.startswith("FAIL")
        assert "scheduler.registry" in rendered
        assert "executor 2" in rendered  # names the entity involved

    def test_report_to_dict_round_trips_violations(self):
        s = _Stream()
        s.app_start(cores=4)
        s.emit(1.0, INSTANT, "pool", "resize", executor_id=0, stage_id=0,
               size=0, reason="adapt")
        report, _ = _violations(s)
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["violations"][0]["invariant"] == "scheduler.registry"
        assert doc["events_seen"] == 2
