"""CLI surfaces added with the invariant validator and durable sweeps:
``repro validate``, ``run --validate``, and sweep --journal/--resume."""

import json

import pytest

from repro.cli import main

GOLDEN = "tests/golden/terasort_s005_seed42.jsonl"
GOLDEN_NODELOSS = "tests/golden/terasort_s005_seed42_nodeloss.jsonl"

SWEEP_ARGS = ["sweep", "wordcount", "--scale", "0.02", "--nodes", "2",
              "--cores", "8", "--json"]


class TestValidateCommand:
    @pytest.mark.parametrize("golden", [GOLDEN, GOLDEN_NODELOSS])
    def test_golden_logs_validate_clean(self, golden, capsys):
        assert main(["validate", golden]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["validate", GOLDEN, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["events_seen"] == 12888
        assert doc["violations"] == []

    def test_violations_exit_1_with_report(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        lines = [
            {"ts": 5.0, "seq": 1, "kind": "I", "cat": "app", "name": "x",
             "args": {}},
            {"ts": 1.0, "seq": 2, "kind": "I", "cat": "app", "name": "y",
             "args": {}},  # clock runs backwards
        ]
        log.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        assert main(["validate", str(log)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "clock.monotonic" in out

    def test_missing_log_exits_2(self, capsys):
        assert main(["validate", "/no/such/events.jsonl"]) == 2
        assert "no such event log" in capsys.readouterr().err

    def test_non_jsonl_file_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "notlog.jsonl"
        bogus.write_text("definitely not json\n")
        assert main(["validate", str(bogus)]) == 2
        assert "cannot replay" in capsys.readouterr().err


class TestRunValidate:
    def test_clean_run_passes(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--validate"])
        assert code == 0
        assert "invariants: OK" in capsys.readouterr().err

    def test_validate_does_not_pollute_json_stdout(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--validate", "--json"])
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout must stay pure JSON
        assert "invariants:" in captured.err


class TestDurableSweep:
    def test_stop_after_exits_3_then_resume_matches(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.journal")

        assert main(SWEEP_ARGS) == 0
        uninterrupted = capsys.readouterr().out

        code = main(SWEEP_ARGS + ["--journal", journal, "--stop-after", "1"])
        assert code == 3
        captured = capsys.readouterr()
        assert "sweep interrupted" in captured.err
        assert "--resume" in captured.err

        assert main(SWEEP_ARGS + ["--journal", journal, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == uninterrupted  # byte-identical aggregates

    def test_bad_fault_plan_exits_2(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"bogus": 1}))
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--faults", str(plan)])
        assert code == 2
        assert "invalid fault plan" in capsys.readouterr().err

    def test_missing_fault_plan_exits_2(self, capsys):
        code = main(["run", "wordcount", "--scale", "0.02", "--nodes", "2",
                     "--faults", "/no/such/plan.json"])
        assert code == 2
