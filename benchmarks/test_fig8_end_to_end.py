"""Fig. 8: default vs static BestFit vs dynamic on the four workloads."""

import pytest

from repro.harness.experiments import fig8_end_to_end
from repro.harness.report import render_table, write_result

#: Paper Fig. 8 runtime reductions vs default: (static BestFit, dynamic).
PAPER_REDUCTIONS = {
    "terasort": (0.475, 0.344),
    "pagerank": (0.163, 0.541),
    "aggregation": (None, 0.068),
    "join": (None, 0.025),
}


def _render(result):
    rows = []
    for system in ("default", "static_bestfit", "dynamic"):
        summary = result[system]
        rows.append(
            (
                system,
                summary["total"],
                " ".join(f"{d:.0f}" for d in summary["stages"]),
                " ".join(f"{t}/128" for t in summary["threads_per_stage"]),
            )
        )
    return render_table(
        ["System", "Total (s)", "Stage durations", "Threads per stage"],
        rows,
        title=(
            f"Fig. 8 ({result['workload']}): "
            f"bestfit -{result['reduction_bestfit'] * 100:.1f}%, "
            f"dynamic -{result['reduction_dynamic'] * 100:.1f}% vs default"
        ),
    )


@pytest.fixture(scope="module")
def comparisons(sweep_cache):
    return {
        workload: fig8_end_to_end(workload,
                                  sweep_result=sweep_cache(workload))
        for workload in ("terasort", "pagerank", "aggregation", "join")
    }


def test_fig8_terasort(benchmark, comparisons):
    result = benchmark.pedantic(lambda: comparisons["terasort"],
                                rounds=1, iterations=1)
    write_result("fig8a_terasort", _render(result))
    # Both solutions reduce the runtime substantially; BestFit wins because
    # every Terasort stage is I/O-marked and it skips the exploration cost.
    assert result["reduction_dynamic"] > 0.25
    assert result["reduction_bestfit"] > result["reduction_dynamic"]


def test_fig8_pagerank(benchmark, comparisons):
    result = benchmark.pedantic(lambda: comparisons["pagerank"],
                                rounds=1, iterations=1)
    write_result("fig8b_pagerank", _render(result))
    # The signature result: the dynamic solution tunes the shuffle stages the
    # static classification cannot see (L2) and wins by a wide margin.
    assert result["reduction_dynamic"] > 0.35
    assert result["reduction_bestfit"] < 0.30
    assert result["reduction_dynamic"] > result["reduction_bestfit"] + 0.15
    # Dynamic tunes every stage below the default thread budget.
    assert all(t < 128 for t in result["dynamic"]["threads_per_stage"])


def test_fig8_aggregation(benchmark, comparisons):
    result = benchmark.pedantic(lambda: comparisons["aggregation"],
                                rounds=1, iterations=1)
    write_result("fig8c_aggregation", _render(result))
    # Diminishing gains on SQL (paper: 6.8%): the scan stage is compute
    # bound, only the final aggregation stage is tunable.
    assert -0.02 < result["reduction_dynamic"] < 0.20
    # The compute-heavy scan keeps all 128 threads under the dynamic policy.
    assert result["dynamic"]["threads_per_stage"][0] == 128
    # The final stage is tuned down.
    assert result["dynamic"]["threads_per_stage"][-1] < 128


def test_fig8_join(benchmark, comparisons):
    result = benchmark.pedantic(lambda: comparisons["join"],
                                rounds=1, iterations=1)
    write_result("fig8d_join", _render(result))
    # The smallest gain of the four (paper: 2.5%).
    assert -0.03 < result["reduction_dynamic"] < 0.15
    assert result["dynamic"]["threads_per_stage"][0] == 128


def test_fig8_cross_workload_ordering(benchmark, comparisons):
    """The paper's aggregate picture: dynamic gains rank
    PageRank/Terasort >> Aggregation > Join."""
    dynamic = benchmark.pedantic(
        lambda: {w: c["reduction_dynamic"] for w, c in comparisons.items()},
        rounds=1, iterations=1,
    )
    assert dynamic["pagerank"] > dynamic["aggregation"] > dynamic["join"]
    assert dynamic["terasort"] > dynamic["aggregation"]
