"""Fig. 7: ε, µ, and ζ vs thread count for the Terasort stages."""

from repro.harness.experiments import fig7_from_runs
from repro.harness.report import render_table, write_result

MiB = 1024.0**2
THREAD_COUNTS = (2, 4, 8, 16, 32)


def test_fig7_congestion_index(benchmark, fixed_run_cache):
    def build():
        runs = {t: fixed_run_cache("terasort", t, "hdd") for t in THREAD_COUNTS}
        return fig7_from_runs(runs)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = []
    for row in rows:
        table = render_table(
            ["Threads", "epoll wait (s)", "I/O throughput (MB/s)",
             "congestion index"],
            [
                (
                    threads,
                    row["series"][threads]["epoll_wait"],
                    row["series"][threads]["throughput"] / MiB,
                    f"{row['series'][threads]['congestion'] * MiB:.4f}",
                )
                for threads in sorted(row["series"])
            ],
            title=(
                f"Fig. 7 stage {row['stage']}: sensors per thread count "
                f"(selected: {row['selected']})"
            ),
        )
        lines.append(table)
    write_result("fig7_congestion_index", "\n\n".join(lines))

    assert len(rows) == 3
    for row in rows:
        series = row["series"]
        # ε grows with the thread count (the paper's Fig. 7 across all
        # stages: more threads, more accumulated wait).
        waits = [series[t]["epoll_wait"] for t in sorted(series)]
        assert waits == sorted(waits), row["stage"]
        # µ peaks at a moderate thread count, not at the extremes.
        best_mu = max(series, key=lambda t: series[t]["throughput"])
        assert best_mu in (4, 8, 16), (row["stage"], best_mu)

    # The hill-climb selection (the "Selected" arrow) reproduces the paper's
    # choices: 4 for the read stage, 8 for the shuffle-write stage, and 4-8
    # for the output stage.
    assert rows[0]["selected"] in (4, 8)
    assert rows[1]["selected"] == 8
    assert rows[2]["selected"] in (4, 8)
