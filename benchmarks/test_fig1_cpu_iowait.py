"""Fig. 1: per-stage CPU usage and disk I/O wait under default Spark."""

from repro.harness.experiments import fig1_cpu_iowait
from repro.harness.report import render_table, write_result

from conftest import BENCH_SCALE

#: Paper Fig. 1 stage CPU-usage labels (fractions of 1).
PAPER_CPU = {
    "aggregation": [0.68],
    "join": [0.46],
    "terasort": [0.06, 0.15, 0.09],
}


def test_fig1_cpu_iowait(benchmark):
    results = benchmark.pedantic(
        fig1_cpu_iowait, kwargs={"scale": BENCH_SCALE}, rounds=1, iterations=1
    )
    rows = []
    for workload, stages in results.items():
        for stage in stages:
            rows.append(
                (
                    workload,
                    stage["stage"],
                    stage["duration"],
                    f"{stage['cpu_usage'] * 100:.1f}%",
                    f"{stage['io_wait'] * 100:.1f}%",
                )
            )
    table = render_table(
        ["Workload", "Stage", "Duration (s)", "CPU usage", "I/O wait"],
        rows,
        title="Fig. 1: per-stage CPU usage and I/O wait (default Spark)",
    )
    write_result("fig1_cpu_iowait", table)

    # Observation 1 of the paper: "almost in all cases the CPU is not fully
    # utilized".
    for workload, stages in results.items():
        for stage in stages:
            assert stage["cpu_usage"] < 0.95, (workload, stage)

    # Observation 2: stages are dominated by different resources -- Terasort
    # stages sit in a low CPU band while Aggregation/Join scans are
    # compute-heavy (the paper's 6-15% vs 68%/46%).
    terasort = results["terasort"]
    assert all(s["cpu_usage"] < 0.30 for s in terasort)
    assert results["aggregation"][0]["cpu_usage"] > 0.40
    assert results["join"][0]["cpu_usage"] > 0.30
    assert results["aggregation"][0]["cpu_usage"] > results["terasort"][0]["cpu_usage"]

    # I/O-bound Terasort stages show substantial I/O wait.
    assert all(s["io_wait"] > 0.3 for s in terasort)
