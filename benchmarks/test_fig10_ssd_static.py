"""Fig. 10: the static solution on HDD vs SSD (Terasort)."""

from repro.harness.report import render_table, write_result


def _render(result, label):
    rows = []
    for threads in sorted(result["runs"], reverse=True):
        run = result["runs"][threads]
        rows.append((threads, run["total"], *[f"{d:.0f}" for d in run["stages"]]))
    rows.append(
        ("bestfit", result["bestfit"]["total"],
         *[f"{d:.0f}" for d in result["bestfit"]["stages"]])
    )
    return render_table(
        ["Threads", "Total (s)", "Stage 0", "Stage 1", "Stage 2"],
        rows,
        title=f"Fig. 10 ({label}): static solution on Terasort",
    )


def test_fig10_hdd_vs_ssd(benchmark, sweep_cache):
    def build():
        return sweep_cache("terasort", "hdd"), sweep_cache("terasort", "ssd")

    hdd, ssd = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result("fig10a_hdd", _render(hdd, "HDD"))
    write_result("fig10b_ssd", _render(ssd, "SSD"))

    hdd_runs, ssd_runs = hdd["runs"], ssd["runs"]

    # SSDs serve the same job faster at every setting.
    for threads in hdd_runs:
        assert ssd_runs[threads]["total"] < hdd_runs[threads]["total"]

    # The read stage tolerates high concurrency on SSD: its best setting is
    # higher than on HDD ("full random access at a uniform latency").
    hdd_stage0 = {t: hdd_runs[t]["stages"][0] for t in hdd_runs}
    ssd_stage0 = {t: ssd_runs[t]["stages"][0] for t in ssd_runs}
    assert min(ssd_stage0, key=ssd_stage0.get) >= min(hdd_stage0, key=hdd_stage0.get)
    assert min(ssd_stage0, key=ssd_stage0.get) >= 16

    # The static gain shrinks on SSD (paper: 20.2% vs 47.5%).
    hdd_gain = 1.0 - hdd["bestfit"]["total"] / hdd_runs[32]["total"]
    ssd_gain = 1.0 - ssd["bestfit"]["total"] / ssd_runs[32]["total"]
    assert ssd_gain < hdd_gain
    assert 0.05 < ssd_gain < 0.45
