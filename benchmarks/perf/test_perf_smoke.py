"""Smoke pass over the perf-regression suite (``repro bench``).

Not part of the tier-1 test run (pytest's ``testpaths`` stops at
``tests/``); CI's bench job and developers run it explicitly::

    PYTHONPATH=src python -m pytest benchmarks/perf -q

Wall-clock assertions are deliberately loose -- this guards the machinery
(the suite runs, the document is well-formed, the gate fires on a doctored
regression), while the real perf gate is ``repro bench --check`` against
``benchmarks/perf/baseline.json``.
"""

import copy
import json
import os

from repro.harness import bench

BASELINE = os.path.join(os.path.dirname(__file__), "baseline.json")


def test_smoke_suite_and_gate_roundtrip():
    doc = bench.run_suite(smoke=True, parallel=1)
    assert bench.check_regression(doc, doc) == []

    # A doctored 2x slowdown must trip the default gate.
    slowed = copy.deepcopy(doc)
    slowed["benchmarks"]["kernel_terasort"]["events_per_sec"] /= 2.0
    failures = bench.check_regression(slowed, doc)
    assert any("kernel_terasort" in failure for failure in failures)


def test_committed_baseline_is_well_formed():
    with open(BASELINE) as handle:
        baseline = json.load(handle)
    assert baseline["schema"] == bench.BENCH_SCHEMA
    merits = bench._figures_of_merit(baseline)
    assert "kernel_terasort" in merits
    assert "fork_sweep" in merits
    assert all(value > 0 for value in merits.values())


def test_fork_sweep_shares_warmup():
    from repro.harness.fork import fork_available

    result = bench.bench_fork_sweep(smoke=True)
    assert result["points"] == 8
    assert result["sequential_wall_s"] > 0
    if not fork_available():
        assert result["runs_per_min"] is None
        return
    # Loose floor on the headline claim (PERFORMANCE.md records ~2.5x on
    # the reference host): sharing the warm-up prefix must beat sequential
    # re-simulation decisively even on one core.
    assert result["speedup"] >= 1.5
