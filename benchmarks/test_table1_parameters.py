"""Table 1: the number of functional Spark parameters per category."""

from repro.harness.experiments import table1_parameters
from repro.harness.report import render_table, write_result

PAPER_TABLE1 = {
    "Shuffle": 19,
    "Compression and Serialization": 16,
    "Memory Management": 14,
    "Execution Behavior": 14,
    "Network": 13,
    "Scheduling": 32,
    "Dynamic Allocation": 9,
}


def test_table1_parameters(benchmark):
    counts = benchmark.pedantic(table1_parameters, rounds=1, iterations=1)
    rows = [(category, count, PAPER_TABLE1[category])
            for category, count in counts.items()]
    rows.append(("Total", sum(counts.values()), sum(PAPER_TABLE1.values())))
    table = render_table(
        ["Category", "#Parameters (measured)", "#Parameters (paper)"],
        rows,
        title="Table 1: functional parameters in Spark 2.4",
    )
    write_result("table1_parameters", table)
    assert counts == PAPER_TABLE1
    assert sum(counts.values()) == 117
