"""Fig. 2: the static solution's effect on Terasort and PageRank runtimes."""

from repro.harness.report import render_table, write_result

#: Paper: best static threads per Terasort stage (Fig. 2a) and the headline
#: reductions of the static solution at its best uniform setting.
PAPER_TERASORT_REDUCTION = 0.3935  # 39.35% at 8 threads
PAPER_PAGERANK_REDUCTION = 0.1902  # 19.02% at 8 threads


def _render(result):
    rows = []
    for threads in sorted(result["runs"], reverse=True):
        run = result["runs"][threads]
        rows.append(
            (threads, run["total"], *[f"{d:.0f}" for d in run["stages"]])
        )
    rows.append(
        ("bestfit", result["bestfit"]["total"],
         *[f"{d:.0f}" for d in result["bestfit"]["stages"]])
    )
    num_stages = len(result["bestfit"]["stages"])
    return render_table(
        ["Threads", "Total (s)"] + [f"Stage {i}" for i in range(num_stages)],
        rows,
        title=f"Fig. 2 ({result['workload']}): static solution runtimes",
    )


def test_fig2_terasort(benchmark, sweep_cache):
    result = benchmark.pedantic(
        sweep_cache, args=("terasort",), rounds=1, iterations=1
    )
    write_result("fig2a_static_terasort", _render(result))
    runs = result["runs"]

    # The default (32 threads) is never the best uniform setting.
    best_uniform = min(runs, key=lambda t: runs[t]["total"])
    assert best_uniform in (4, 8)

    # The paper's best uniform setting (8 threads) cuts ~39% off the default.
    reduction = 1.0 - runs[8]["total"] / runs[32]["total"]
    assert reduction > 0.30, reduction

    # BestFit (per-stage minima) is at least as good as any uniform setting.
    assert result["bestfit"]["total"] <= runs[best_uniform]["total"] * 1.05

    # Per-stage optima sit in the paper's 4-8 band, never at the default.
    for _stage, threads in result["bestfit_sizes"].items():
        assert threads in (4, 8), result["bestfit_sizes"]


def test_fig2_pagerank(benchmark, sweep_cache):
    result = benchmark.pedantic(
        sweep_cache, args=("pagerank",), rounds=1, iterations=1
    )
    write_result("fig2b_static_pagerank", _render(result))
    runs = result["runs"]

    # The static solution helps PageRank, but only modestly (~19% in the
    # paper): just the ingest and output stages are I/O-marked.
    best_uniform = min(runs, key=lambda t: runs[t]["total"])
    reduction = 1.0 - runs[best_uniform]["total"] / runs[32]["total"]
    assert 0.05 < reduction < 0.40, reduction

    # The I/O-marked stages pick non-default counts; shuffle stages are out
    # of the static solution's reach and keep the default (limitation L2).
    sizes = result["bestfit_sizes"]
    assert sizes[0] != 32
    assert sizes[len(sizes) - 1] != 32
    for middle in range(1, len(sizes) - 1):
        assert sizes[middle] == 32
