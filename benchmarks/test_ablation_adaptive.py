"""Ablations of the self-adaptive executor's design choices.

The paper motivates several knobs without sweeping them; these benchmarks
quantify each on Terasort (the workload with the clearest contention
structure):

* **hysteresis tolerance** -- our congestion-index comparison keeps climbing
  while ζ_j <= tol * ζ_(j/2) (DESIGN.md "Known deviations");
* **cmin** -- the paper starts every climb at 2 ("it is almost impossible
  that a single thread outperforms multiple ones") and argues bottom-up
  beats top-down;
* **per-stage adaptation** -- re-climbing each stage (vs freezing the first
  stage's choice) is what addresses limitation L1.
"""

from repro.harness.report import render_table, write_result
from repro.harness.runner import run_workload

from conftest import BENCH_SCALE

WORKLOAD_KW = {"scale": BENCH_SCALE}


def test_ablation_tolerance(benchmark, sweep_cache):
    """Strict rollback (tol=1.0) under-provisions; huge tolerance ignores
    contention; the shipped 2.0 recovers the stage optima."""

    def build():
        results = {}
        for tolerance in (1.0, 2.0, 8.0):
            run = run_workload(
                "terasort",
                policy=("dynamic", {"tolerance": tolerance}),
                workload_kwargs=WORKLOAD_KW,
            )
            results[tolerance] = run
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    default_total = sweep_cache("terasort")["runs"][32]["total"]
    rows = []
    for tolerance, run in sorted(results.items()):
        sizes = [sorted(s.final_pool_sizes().values()) for s in run.stages]
        rows.append(
            (tolerance, run.runtime,
             f"-{(1 - run.runtime / default_total) * 100:.1f}%", str(sizes))
        )
    write_result(
        "ablation_tolerance",
        render_table(
            ["Tolerance", "Runtime (s)", "vs default", "Stage pool sizes"],
            rows,
            title="Ablation: congestion-index hysteresis tolerance (Terasort)",
        ),
    )

    strict, shipped, loose = (results[t] for t in (1.0, 2.0, 8.0))
    # The shipped tolerance matches or beats the strict rule (which settles
    # at 2-4 and under-uses the disk at its latency-hiding optimum); the
    # 2% slack covers the near-tie at small input scales.
    assert shipped.runtime < strict.runtime * 1.02
    # A huge tolerance overshoots into contention and loses.
    assert shipped.runtime < loose.runtime
    # The mechanism: strict settles at a smaller pool than shipped on the
    # shuffle-write stage (whose optimum is 8); loose overshoots to 32.
    strict_stage1 = max(strict.stages[1].final_pool_sizes().values())
    shipped_stage1 = max(shipped.stages[1].final_pool_sizes().values())
    loose_stage1 = max(loose.stages[1].final_pool_sizes().values())
    assert strict_stage1 <= shipped_stage1 <= loose_stage1
    assert loose_stage1 == 32


def test_ablation_cmin(benchmark, sweep_cache):
    """Starting the climb higher skips exploration but risks starting past
    the optimum; cmin=2 (the paper's choice) stays near the best."""

    def build():
        return {
            cmin: run_workload(
                "terasort",
                policy=("dynamic", {"cmin": cmin}),
                workload_kwargs=WORKLOAD_KW,
            )
            for cmin in (2, 8, 32)
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    default_total = sweep_cache("terasort")["runs"][32]["total"]
    rows = [
        (cmin, run.runtime, f"-{(1 - run.runtime / default_total) * 100:.1f}%")
        for cmin, run in sorted(results.items())
    ]
    write_result(
        "ablation_cmin",
        render_table(
            ["cmin", "Runtime (s)", "vs default"],
            rows,
            title="Ablation: hill-climb starting point (Terasort)",
        ),
    )

    # Starting at the maximum pool size disables adaptation entirely (the
    # climb begins settled at cmax) and collapses to default behaviour.
    assert results[32].runtime > results[2].runtime * 1.3
    # Starting at 8 skips exploration but can overshoot (the first scored
    # interval is already past the read stage's optimum of 4); it stays in
    # the same band as the paper's bottom-up start without beating it
    # decisively -- the paper's argument for climbing from cmin.
    assert results[8].runtime <= results[2].runtime * 1.25


def test_ablation_per_stage_adaptation(benchmark, sweep_cache):
    """Freezing the first stage's choice for the whole job (what a
    single-knob tuner would do) forfeits part of the win: stage optima
    differ (limitation L1)."""

    def build():
        sweep = sweep_cache("terasort")
        # The best single uniform setting, applied to every stage:
        runs = sweep["runs"]
        best_uniform = min(runs, key=lambda t: runs[t]["total"])
        uniform_total = runs[best_uniform]["total"]
        per_stage_total = sweep["bestfit"]["total"]
        return best_uniform, uniform_total, per_stage_total

    best_uniform, uniform_total, per_stage_total = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    write_result(
        "ablation_per_stage",
        render_table(
            ["Strategy", "Runtime (s)"],
            [
                (f"best uniform ({best_uniform} threads)", uniform_total),
                ("per-stage BestFit", per_stage_total),
            ],
            title="Ablation: one global thread count vs per-stage tuning",
        ),
    )
    # Per-stage tuning is at least as good as the best global setting.
    assert per_stage_total <= uniform_total * 1.02
