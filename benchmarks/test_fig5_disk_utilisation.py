"""Fig. 5: average disk utilisation vs thread count in I/O stages."""

from repro.harness.experiments import fig5_disk_utilization
from repro.harness.report import render_table, write_result


def test_fig5_disk_utilisation(benchmark, sweep_cache):
    def build():
        sweeps = {
            name: sweep_cache(name)
            for name in ("terasort", "pagerank", "aggregation", "join")
        }
        return fig5_disk_utilization(sweeps)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    thread_counts = sorted(rows[0]["utilization_by_threads"], reverse=True)
    write_result(
        "fig5_disk_utilisation",
        render_table(
            ["Workload", "Stage"]
            + [f"{t} thr" for t in thread_counts]
            + ["Highest at"],
            [
                (
                    r["workload"],
                    r["stage"],
                    *[f"{r['utilization_by_threads'][t] * 100:.1f}%"
                      for t in thread_counts],
                    r["best_threads"],
                )
                for r in rows
            ],
            title="Fig. 5: average disk utilisation across nodes (I/O stages)",
        ),
    )
    by_key = {(r["workload"], r["stage"]): r for r in rows}

    # Terasort stages peak at moderate thread counts: the red bar in the
    # paper sits at 4/8/8, matching the static BestFit.
    for stage in (0, 1, 2):
        best = by_key[("terasort", stage)]["best_threads"]
        assert best in (4, 8, 16), (stage, best)

    # Aggregation/Join scans: utilisation *drops* sharply with fewer threads
    # (the CPU-heavy transformations starve the disk -- paper section 4).
    for workload in ("aggregation", "join"):
        util = by_key[(workload, 0)]["utilization_by_threads"]
        assert util[2] < util[32] * 0.7, (workload, util)
