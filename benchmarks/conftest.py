"""Shared fixtures for the reproduction benchmarks.

Expensive simulation runs (static sweeps, fixed-policy runs) are memoised in
session-scoped caches so figures that share a protocol (e.g. Fig. 2 -> Fig. 5,
Fig. 7 -> Fig. 12) re-use each other's runs.

``REPRO_BENCH_SCALE`` (default 1.0) scales every workload's input size; all
reported ratios are scale-invariant, so e.g. ``REPRO_BENCH_SCALE=0.25`` gives
a quick smoke pass of the whole evaluation.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.harness.experiments import fig2_static_sweep  # noqa: E402
from repro.harness.runner import run_workload  # noqa: E402

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def sweep_cache():
    """(workload, device) -> fig2_static_sweep result, memoised."""
    cache = {}

    def get(workload, device="hdd"):
        key = (workload, device)
        if key not in cache:
            cache[key] = fig2_static_sweep(workload, scale=BENCH_SCALE,
                                           device=device)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def fixed_run_cache():
    """(workload, threads, device) -> WorkloadRun, memoised."""
    cache = {}

    def get(workload, threads, device="hdd"):
        key = (workload, threads, device)
        if key not in cache:
            cache[key] = run_workload(
                workload,
                policy=("fixed", threads),
                device=device,
                workload_kwargs={"scale": BENCH_SCALE},
            )
        return cache[key]

    return get
