"""Table 2: I/O activity of Spark applications relative to input size."""

from repro.harness.experiments import table2_io_activity
from repro.harness.report import render_table, write_result


def test_table2_io_activity(benchmark):
    rows = benchmark.pedantic(table2_io_activity, rounds=1, iterations=1)
    table = render_table(
        ["Application", "Input (GiB)", "I/O activity (GiB)",
         "Amplification (measured)", "Amplification (paper)"],
        [
            (
                r["application"],
                r["input_gib"],
                r["io_activity_gib"],
                f"{r['measured_amplification']:.2f}x",
                f"{r['paper_amplification']:.2f}x",
            )
            for r in rows
        ],
        title="Table 2: cluster disk I/O relative to input size",
    )
    write_result("table2_io_activity", table)

    by_name = {r["application"]: r for r in rows}
    # Every application moves more bytes than its input (the paper's point).
    for row in rows:
        assert row["measured_amplification"] > 1.0, row

    # Join is the paper's smallest amplification; NWeight its largest.
    assert by_name["join"]["measured_amplification"] == min(
        r["measured_amplification"] for r in rows
    )
    assert by_name["nweight"]["measured_amplification"] == max(
        r["measured_amplification"] for r in rows
    )

    # Each measured ratio is within 45% of the paper's (different substrate,
    # same order of magnitude and ranking).
    for row in rows:
        ratio = row["measured_amplification"] / row["paper_amplification"]
        assert 0.55 < ratio < 1.8, row
