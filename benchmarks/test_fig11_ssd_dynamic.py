"""Fig. 11: the dynamic solution on SSDs (Terasort)."""

from repro.harness.experiments import fig8_end_to_end
from repro.harness.report import render_table, write_result


def test_fig11_ssd_dynamic(benchmark, sweep_cache):
    def build():
        return fig8_end_to_end(
            "terasort", device="ssd", sweep_result=sweep_cache("terasort", "ssd")
        )

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for system in ("default", "static_bestfit", "dynamic"):
        summary = result[system]
        rows.append(
            (
                system,
                summary["total"],
                " ".join(f"{d:.0f}" for d in summary["stages"]),
                " ".join(f"{t}/128" for t in summary["threads_per_stage"]),
            )
        )
    write_result(
        "fig11_ssd_dynamic",
        render_table(
            ["System", "Total (s)", "Stage durations", "Threads per stage"],
            rows,
            title=(
                "Fig. 11 (Terasort on SSD): "
                f"bestfit -{result['reduction_bestfit'] * 100:.1f}%, "
                f"dynamic -{result['reduction_dynamic'] * 100:.1f}%"
            ),
        ),
    )

    # Both solutions still help on SSDs (paper: 20.2% static, 16.7% dynamic),
    # but less than on HDDs (47.5% / 34.4%) -- SSDs are "less susceptible to
    # thread contention".
    assert 0.03 < result["reduction_dynamic"] < 0.30
    assert 0.05 < result["reduction_bestfit"] < 0.45
    # The dynamic policy still picks fewer threads than the default for the
    # write-heavy stages.
    assert result["dynamic"]["threads_per_stage"][1] < 128
    assert result["dynamic"]["threads_per_stage"][2] < 128
