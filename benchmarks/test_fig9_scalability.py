"""Fig. 9: Terasort scalability, 4 vs 16 nodes with input scaled 4x."""

import os

from repro.harness.experiments import fig9_scalability
from repro.harness.report import render_table, write_result

#: Fig. 9 runs a 4x-larger input on 16 nodes; half scale keeps the bench
#: affordable while preserving every ratio (override with REPRO_FIG9_SCALE).
FIG9_SCALE = float(os.environ.get("REPRO_FIG9_SCALE", "0.5"))


def test_fig9_scalability(benchmark):
    results = benchmark.pedantic(
        fig9_scalability, kwargs={"scale": FIG9_SCALE}, rounds=1, iterations=1
    )
    write_result(
        "fig9_scalability",
        render_table(
            ["Nodes", "Default (s)", "Static BestFit (s)", "Dynamic (s)"],
            [
                (nodes, row["default"], row["static_bestfit"], row["dynamic"])
                for nodes, row in sorted(results.items())
            ],
            title="Fig. 9: Terasort runtime, constant resources-to-input ratio",
        ),
    )
    four, sixteen = results[4], results[16]

    # "the default settings do not scale (execution time is significantly
    # higher in the 16 node experiment despite constant resources to problem
    # size ratio)"
    assert sixteen["default"] > four["default"] * 1.25

    # "while both the static and dynamic solution achieve nearly the same
    # execution time."
    assert sixteen["static_bestfit"] < four["static_bestfit"] * 1.25
    assert sixteen["dynamic"] < four["dynamic"] * 1.40

    # Both tuned systems beat the default at 16 nodes by a wide margin.
    assert sixteen["static_bestfit"] < sixteen["default"] * 0.55
    assert sixteen["dynamic"] < sixteen["default"] * 0.60
