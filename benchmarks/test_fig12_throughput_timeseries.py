"""Fig. 12: I/O throughput over time per thread count, HDD vs SSD."""

from repro.harness.report import render_series, write_result
from repro.monitoring.iostat import throughput_timeseries

MiB = 1024.0**2
THREAD_COUNTS = (32, 16, 8, 4, 2)


def test_fig12_throughput_timeseries(benchmark, fixed_run_cache):
    def build():
        rows = []
        for device in ("hdd", "ssd"):
            for threads in THREAD_COUNTS:
                run = fixed_run_cache("terasort", threads, device)
                for ordinal in (0, 1):
                    stage = run.stages[ordinal]
                    series = throughput_timeseries(
                        run.ctx.recorder, stage.stage_id, node_id=0
                    )
                    values = [v for _t, v in series]
                    rows.append(
                        {
                            "device": device,
                            "threads": threads,
                            "stage": ordinal,
                            "series": series,
                            "mean_throughput": sum(values) / len(values),
                        }
                    )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = []
    for row in rows:
        name = (
            f"{row['device']} stage {row['stage']} {row['threads']:>2} threads "
            f"(mean {row['mean_throughput'] / MiB:6.1f} MB/s)"
        )
        lines.append(render_series(name, row["series"], unit=" B/s"))
    write_result("fig12_throughput_timeseries", "\n".join(lines))

    def mean(device, stage, threads):
        for row in rows:
            if (row["device"], row["stage"], row["threads"]) == (
                device, stage, threads,
            ):
                return row["mean_throughput"]
        raise KeyError((device, stage, threads))

    # HDD stage 0: mean throughput varies strongly across thread counts and
    # peaks at a low setting (paper: 4 is the maximum).
    hdd0 = {t: mean("hdd", 0, t) for t in THREAD_COUNTS}
    assert max(hdd0, key=hdd0.get) in (4, 8)
    assert max(hdd0.values()) / min(hdd0.values()) > 1.5

    # SSD stage 0: throughput is far more uniform across thread counts in
    # the contention range (>= 8 streams): SSDs "support full random access
    # at a uniform latency".  (At 2-4 threads both devices are simply
    # concurrency-starved, which is not a contention effect.)
    contention_range = (8, 16, 32)
    ssd0 = {t: mean("ssd", 0, t) for t in contention_range}
    hdd0_high = {t: hdd0[t] for t in contention_range}
    ssd_spread = max(ssd0.values()) / min(ssd0.values())
    hdd_spread = max(hdd0_high.values()) / min(hdd0_high.values())
    assert ssd_spread < hdd_spread
    # On the HDD more threads collapse throughput; on the SSD they do not.
    assert hdd0[32] < hdd0[8] * 0.6
    assert mean("ssd", 0, 32) > mean("ssd", 0, 8) * 0.9

    # SSDs provide higher throughput than HDDs in the shuffle-write stage
    # and tolerate more threads there (paper: stage 1 best at 16 on SSD).
    ssd1 = {t: mean("ssd", 1, t) for t in THREAD_COUNTS}
    hdd1 = {t: mean("hdd", 1, t) for t in THREAD_COUNTS}
    assert max(ssd1.values()) > max(hdd1.values())
    assert max(ssd1, key=ssd1.get) >= max(hdd1, key=hdd1.get)
