"""Ablations of the simulation substrate's modelling choices.

DESIGN.md section 5 claims the thread-count optimum *emerges* from two
mechanisms: per-request access latency (starves the disk at low thread
counts) and the efficiency decay (collapses it at high counts), mediated by
task chunking.  These benchmarks disable each mechanism and verify the
phenomenon degenerates exactly as the model predicts -- evidence that the
reproduction reproduces for the right reason.
"""

import dataclasses

import pytest

from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine import SparkConf, SparkContext
from repro.engine.policy import FixedPolicy
from repro.harness.report import render_table, write_result
from repro.storage.device import HDD_PROFILE
from repro.workloads import Terasort

from conftest import BENCH_SCALE

THREADS = (32, 8, 2)
#: Below ~30 GiB the task count drops under the cluster's slot count and
#: contention effects dilute; floor the ablation scale there.
SUBSTRATE_SCALE = max(0.25, BENCH_SCALE * 0.25)


def run_terasort(profile, threads, chunk_bytes=None):
    conf = SparkConf()
    if chunk_bytes is not None:
        conf.set("repro.task.chunk.bytes", chunk_bytes)
    spec = ClusterSpec(num_nodes=4, disk_sigma=0.0, cpu_sigma=0.0,
                       node=NodeSpec(disk_profile=profile))
    ctx = SparkContext(Cluster(spec), conf=conf,
                       policy_factory=lambda ex: FixedPolicy(threads))
    return Terasort(scale=SUBSTRATE_SCALE).run(ctx)


def stage0(run):
    return run.stages[0].duration


def test_ablation_no_access_latency(benchmark):
    """Per-request latency is one of the two low-thread-count penalties
    (the other being CPU interleaving): removing it must measurably shrink
    the gap between 2 and 8 threads on the read stage."""

    def build():
        zero_latency = dataclasses.replace(
            HDD_PROFILE, read_latency=0.0, write_latency=0.0
        )
        return (
            {t: stage0(run_terasort(HDD_PROFILE, t)) for t in THREADS},
            {t: stage0(run_terasort(zero_latency, t)) for t in THREADS},
        )

    with_latency, without_latency = benchmark.pedantic(build, rounds=1,
                                                       iterations=1)
    write_result(
        "ablation_access_latency",
        render_table(
            ["Threads", "stage 0 with latency (s)", "stage 0 without (s)"],
            [(t, with_latency[t], without_latency[t]) for t in THREADS],
            title="Ablation: HDD per-request latency (Terasort read stage)",
        ),
    )
    # With latency, 2 threads clearly lose to 8 (latency gaps idle the disk).
    assert with_latency[2] > with_latency[8] * 1.3
    # Removing the latency closes part of that gap.
    gap_with = with_latency[2] / with_latency[8]
    gap_without = without_latency[2] / without_latency[8]
    assert gap_without < gap_with * 0.95
    # And 2 threads get absolutely faster without per-request latency.
    assert without_latency[2] < with_latency[2]


def test_ablation_no_efficiency_decay(benchmark):
    """Without the seek-thrash decay, more threads never hurt: the default
    (32) matches or beats 8, eliminating the paper's headline effect."""

    def build():
        no_decay = dataclasses.replace(
            HDD_PROFILE, read_alpha=0.0, write_alpha=0.0, min_efficiency=1.0
        )
        return (
            {t: run_terasort(HDD_PROFILE, t).runtime for t in THREADS},
            {t: run_terasort(no_decay, t).runtime for t in THREADS},
        )

    with_decay, without_decay = benchmark.pedantic(build, rounds=1,
                                                   iterations=1)
    write_result(
        "ablation_efficiency_decay",
        render_table(
            ["Threads", "total with decay (s)", "total without (s)"],
            [(t, with_decay[t], without_decay[t]) for t in THREADS],
            title="Ablation: HDD efficiency decay (Terasort totals)",
        ),
    )
    # With the decay, the default is far from optimal...
    assert with_decay[32] > with_decay[8] * 1.5
    # ...without it, the default is the best setting (no contention to flee).
    assert without_decay[32] <= min(without_decay.values()) * 1.02


def test_ablation_chunk_granularity(benchmark):
    """Coarse chunks serialise each task's I/O and CPU into long exclusive
    phases; the thread-count response must survive granularity changes
    (it is a property of the device, not of the chunking)."""

    def build():
        results = {}
        for chunk_mb in (4, 8, 32):
            results[chunk_mb] = {
                t: run_terasort(HDD_PROFILE, t,
                                chunk_bytes=chunk_mb * 1024 * 1024).runtime
                for t in (32, 8)
            }
        return results

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result(
        "ablation_chunk_granularity",
        render_table(
            ["Chunk (MiB)", "total @32 threads (s)", "total @8 threads (s)"],
            [(c, r[32], r[8]) for c, r in sorted(results.items())],
            title="Ablation: task I/O chunk size (Terasort totals)",
        ),
    )
    for chunk_mb, by_threads in results.items():
        assert by_threads[8] < by_threads[32], (
            f"8 threads should beat 32 at chunk={chunk_mb}MiB"
        )
