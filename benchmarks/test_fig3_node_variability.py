"""Fig. 3: inherent I/O performance variability across DAS-5 nodes."""

from repro.harness.experiments import fig3_node_variability
from repro.harness.report import render_table, write_result


def test_fig3_node_variability(benchmark):
    rows = benchmark.pedantic(
        fig3_node_variability, kwargs={"num_nodes": 44}, rounds=1, iterations=1
    )
    write_result(
        "fig3_node_variability",
        render_table(
            ["Node", "Write time (s)", "Read time (s)", "Disk speed factor"],
            [
                (r["node"], r["write_time"], r["read_time"],
                 f"{r['disk_speed_factor']:.3f}")
                for r in rows
            ],
            title="Fig. 3: 30 GB write/read time per node (44 nodes)",
        ),
    )
    assert len(rows) == 44

    read_times = [r["read_time"] for r in rows]
    write_times = [r["write_time"] for r in rows]

    # Nominally identical machines spread significantly (the paper's point).
    assert max(read_times) / min(read_times) > 1.2
    assert max(write_times) / min(write_times) > 1.2

    # Writes are slower than reads on the HDD model, as in the paper's plot.
    mean_read = sum(read_times) / len(read_times)
    mean_write = sum(write_times) / len(write_times)
    assert mean_write > mean_read

    # Faster disks (higher speed factor) finish sooner.
    fastest = max(rows, key=lambda r: r["disk_speed_factor"])
    slowest = min(rows, key=lambda r: r["disk_speed_factor"])
    assert fastest["read_time"] < slowest["read_time"]
