"""Fig. 6: the dynamic solution's per-executor thread choices (Terasort)."""

from repro.harness.experiments import fig6_dynamic_decisions
from repro.harness.report import render_table, write_result

from conftest import BENCH_SCALE


def test_fig6_dynamic_decisions(benchmark):
    rows = benchmark.pedantic(
        fig6_dynamic_decisions, kwargs={"scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    executors = sorted(rows[0]["per_executor"])
    write_result(
        "fig6_dynamic_decisions",
        render_table(
            ["Stage"] + [f"executor {e}" for e in executors] + ["Total/128"],
            [
                (r["stage"], *[r["per_executor"][e] for e in executors],
                 r["total_threads"])
                for r in rows
            ],
            title="Fig. 6: thread count chosen per executor per Terasort stage",
        ),
    )
    assert len(rows) == 3  # Terasort's three stages

    for row in rows:
        assert len(row["per_executor"]) == 4  # one executor per node
        for size in row["per_executor"].values():
            # Decisions stay within [cmin, cmax] and never at the default 32
            # for these I/O-heavy stages (paper: totals 14/32/34 of 128).
            assert 2 <= size <= 16, row
        assert row["total_threads"] < 128

    # Different stages may pick different sizes (limitation L1 addressed);
    # in aggregate the choices match the paper's 14-34 of 128 band.
    totals = [r["total_threads"] for r in rows]
    assert all(8 <= t <= 64 for t in totals), totals
