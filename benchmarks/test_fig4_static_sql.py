"""Fig. 4: the static solution does not help the SQL workloads."""

from repro.harness.report import render_table, write_result


def _render(result, label):
    rows = []
    for threads in sorted(result["runs"], reverse=True):
        run = result["runs"][threads]
        rows.append((threads, run["total"], *[f"{d:.0f}" for d in run["stages"]]))
    num_stages = len(result["bestfit"]["stages"])
    return render_table(
        ["Threads", "Total (s)"] + [f"Stage {i}" for i in range(num_stages)],
        rows,
        title=f"Fig. 4 ({label}): static solution on SQL workloads",
    )


def _check_sql_shape(result):
    """The default wins (or nearly wins) every static setting: the scan
    stages are compute-bound (68%/46% CPU), so cutting threads only removes
    CPU parallelism (paper section 4, limitation L3)."""
    runs = result["runs"]
    default_total = runs[32]["total"]
    best_total = min(run["total"] for run in runs.values())
    # No static setting beats the default by more than a whisker...
    assert best_total > default_total * 0.85
    # ...and aggressive reductions are catastrophically slower.
    assert runs[2]["total"] > default_total * 2.0
    # The compute-heavy scan stage (stage 0) is best at the default.
    scan_by_threads = {t: runs[t]["stages"][0] for t in runs}
    assert min(scan_by_threads, key=scan_by_threads.get) == 32


def test_fig4_aggregation(benchmark, sweep_cache):
    result = benchmark.pedantic(
        sweep_cache, args=("aggregation",), rounds=1, iterations=1
    )
    write_result("fig4a_static_aggregation", _render(result, "Aggregation"))
    _check_sql_shape(result)


def test_fig4_join(benchmark, sweep_cache):
    result = benchmark.pedantic(
        sweep_cache, args=("join",), rounds=1, iterations=1
    )
    write_result("fig4b_static_join", _render(result, "Join"))
    _check_sql_shape(result)
