"""Self-adaptive executors: the paper's contribution.

Three pool-size policies reproduce the paper's three compared systems:

* **Default Spark** -- :class:`repro.engine.policy.DefaultPolicy` (one thread
  per virtual core).
* **Static solution** (paper section 4) -- :class:`StaticIOPolicy`: a fixed,
  user-chosen thread count for stages whose RDD lineage contains explicit
  I/O operators; :class:`BestFitPolicy` is the per-stage oracle derived from
  sweeping the static solution (the paper's "static BestFit").
* **Dynamic solution** (paper section 5) -- :class:`AdaptivePolicy`: a
  MAPE-K feedback loop per executor that monitors epoll wait time (ε) and
  task I/O throughput (µ), computes the congestion index ζ = ε/µ, and
  hill-climbs the pool size from ``cmin`` by doubling, rolling back when ζ
  worsens.

The loop itself lives in :mod:`repro.adaptive.mapek` with one class per
MAPE-K role, mirroring the paper's presentation.
"""

from repro.adaptive.mapek import (
    AdaptiveControlLoop,
    Analyzer,
    Decision,
    Effector,
    KnowledgeBase,
    Monitor,
    Planner,
)
from repro.adaptive.policies import AdaptivePolicy, BestFitPolicy
from repro.adaptive.static_policy import StaticIOPolicy

__all__ = [
    "AdaptiveControlLoop",
    "AdaptivePolicy",
    "Analyzer",
    "BestFitPolicy",
    "Decision",
    "Effector",
    "KnowledgeBase",
    "Monitor",
    "Planner",
    "StaticIOPolicy",
]
