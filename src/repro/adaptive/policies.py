"""Pool-size policies for the paper's compared systems.

:class:`AdaptivePolicy` is the dynamic solution: one MAPE-K control loop per
(executor, stage).  :class:`BestFitPolicy` is the paper's "static BestFit"
baseline: the hypothetical optimum obtained by sweeping the static solution
and keeping the best per-stage thread count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adaptive.mapek import AdaptiveControlLoop
from repro.engine.metrics import TaskMetrics
from repro.engine.policy import ExecutorPolicy


class AdaptivePolicy(ExecutorPolicy):
    """The self-adaptive executor policy (paper section 5).

    Every stage starts a fresh hill-climb from ``cmin`` ("the algorithm
    always starts from the minimum number of threads in each stage"), so
    different stages -- and different executors, on heterogeneous nodes --
    can settle on different sizes (addresses limitations L1 and L4).
    """

    def __init__(self, cmin: Optional[int] = None, cmax: Optional[int] = None,
                 tolerance: Optional[float] = None) -> None:
        self._cmin = cmin
        self._cmax = cmax
        self._tolerance = tolerance
        self._loop: Optional[AdaptiveControlLoop] = None

    def bounds_for(self, executor) -> tuple:
        conf = executor.ctx.conf
        cmin = self._cmin if self._cmin is not None else int(conf.get("repro.adaptive.cmin"))
        cmax = self._cmax
        if cmax is None:
            configured = conf.get("repro.adaptive.cmax")
            cmax = int(configured) if configured else executor.node.cores
        tolerance = (
            self._tolerance
            if self._tolerance is not None
            else float(conf.get("repro.adaptive.tolerance"))
        )
        return cmin, cmax, tolerance

    @property
    def control_loop(self) -> Optional[AdaptiveControlLoop]:
        """The current stage's MAPE-K loop (for inspection/tests)."""
        return self._loop

    def on_stage_start(self, executor, stage) -> int:
        cmin, cmax, tolerance = self.bounds_for(executor)
        self._loop = AdaptiveControlLoop(executor, stage, cmin, cmax,
                                         tolerance=tolerance)
        return self._loop.initial_threads()

    def on_task_complete(self, executor, stage, metrics: TaskMetrics) -> Optional[int]:
        if self._loop is None or self._loop.stage is not stage:
            return None
        return self._loop.on_task_complete()

    def on_fault(self, executor, reason: str) -> None:
        if self._loop is not None:
            self._loop.invalidate_interval(reason)


class BestFitPolicy(ExecutorPolicy):
    """Per-stage oracle sizes (the paper's hypothetical "static BestFit").

    ``stage_sizes`` maps a stage's *ordinal position* in the run (0, 1, ...)
    to a thread count, since that is how the paper reports per-stage choices;
    unmapped stages use the executor default.
    """

    def __init__(self, stage_sizes: Dict[int, int]) -> None:
        for ordinal, size in stage_sizes.items():
            if size <= 0:
                raise ValueError(
                    f"stage {ordinal}: thread count must be positive, got {size}"
                )
        self.stage_sizes = dict(stage_sizes)
        self._seen_stages: Dict[int, int] = {}

    def _ordinal(self, stage) -> int:
        if stage.stage_id not in self._seen_stages:
            self._seen_stages[stage.stage_id] = len(self._seen_stages)
        return self._seen_stages[stage.stage_id]

    def on_stage_start(self, executor, stage) -> int:
        ordinal = self._ordinal(stage)
        return self.stage_sizes.get(ordinal, executor.default_pool_size)
