"""The MAPE-K feedback loop (paper section 5).

The paper follows IBM's autonomic-computing blueprint: a Monitor-Analyze-
Plan-Execute loop over a shared Knowledge base, with the executor's thread
pool as the managed element.  Each class below corresponds to one role in
the paper's sections 5.1-5.4:

* :class:`Monitor` (5.1) -- accumulates epoll wait time ε (strace analogue)
  and task I/O throughput µ (Spark-metrics analogue) over an *interval*;
  interval ``I_j`` ends once ``j`` tasks have completed at pool size ``j``.
* :class:`Analyzer` (5.2) -- computes the congestion index ζ = ε/µ and runs
  the doubling hill-climb: start at ``cmin``, double while ζ improves, roll
  back one step and settle when it worsens, cap at ``cmax``.
* :class:`Planner` (5.3) -- turns an analyzer decision into a concrete plan
  that preserves system integrity: resize the pool *and* notify the task
  scheduler, whose free-core registry would otherwise go stale.
* :class:`Effector` (5.4, "[E]xecute") -- applies the plan through the
  executor's effector methods (the ``setMaximumPoolSize`` analogue) and the
  extended driver message protocol.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.engine.metrics import IntervalRecord
from repro.monitoring.strace import EpollReading, EpollSensor


class Phase(enum.Enum):
    """Where the hill-climb currently stands for one stage."""

    CLIMBING = "climbing"
    SETTLED = "settled"


@dataclass
class IntervalResult:
    """One completed monitoring interval, scored."""

    threads: int
    reading: EpollReading
    congestion: float


@dataclass
class KnowledgeBase:
    """The K in MAPE-K: per-stage adaptation state shared by all roles."""

    cmin: int
    cmax: int
    current_threads: int = 0
    phase: Phase = Phase.CLIMBING
    history: List[IntervalResult] = field(default_factory=list)

    @property
    def previous(self) -> Optional[IntervalResult]:
        return self.history[-1] if self.history else None

    def record(self, result: IntervalResult) -> None:
        self.history.append(result)


def congestion_index(reading: EpollReading) -> float:
    """ζ = (ε / tasks) / µ (paper equation 1, per-task normalised).

    The paper divides the interval's accumulated epoll wait time ε by its
    I/O throughput µ.  Interval ``I_j`` monitors exactly ``j`` tasks, so the
    raw ε grows roughly linearly with ``j`` even when per-task service is
    unchanged; we therefore normalise ε by the interval's task count before
    dividing by µ.  Without this, the raw index in the simulator
    monotonically penalises concurrency and the hill-climb degenerates to
    always choosing ``cmin`` (see DESIGN.md, "Known deviations").

    Zero I/O activity gives ζ = 0 (a pure-CPU interval shows no congestion,
    so the climb continues toward ``cmax`` -- the desired behaviour for
    compute-bound stages like Aggregation's first stage).
    """
    throughput = reading.throughput
    mean_wait = reading.epoll_wait_seconds / max(1, reading.tasks_completed)
    if throughput <= 0:
        return float("inf") if mean_wait > 0 else 0.0
    return mean_wait / throughput


class Monitor:
    """[M]onitor: senses the managed thread pool through the epoll sensor."""

    def __init__(self, executor, knowledge: KnowledgeBase) -> None:
        self.sensor = EpollSensor(executor)
        self.knowledge = knowledge
        self.executor = executor
        self._warmup_left = 0
        self._interval_tasks = 0
        self._interval_start = executor.ctx.sim.now

    def begin_interval(self) -> None:
        """Start the next interval, including its warm-up half.

        When the pool is resized to ``j`` by doubling, up to ``j/2`` in-flight
        tasks launched under the *old* size are still completing; their
        completions would contaminate the reading, so the first ``j // 2``
        completions are discarded before the sensor is armed.
        """
        self._warmup_left = self.knowledge.current_threads // 2
        self._arm()

    def _arm(self) -> None:
        self._interval_tasks = 0
        self._interval_start = self.executor.ctx.sim.now
        self.sensor.reset()

    def task_completed(self) -> Optional[EpollReading]:
        """Returns the interval reading once I_j is complete, else None.

        The interval for ``j`` threads spans ``j`` task completions: "the
        interval for 16 threads starts by setting the thread pool size to 16
        and then monitors the performance of 16 concurrent tasks" (5.1).
        """
        if self._warmup_left > 0:
            self._warmup_left -= 1
            if self._warmup_left == 0:
                self._arm()
            return None
        self._interval_tasks += 1
        if self._interval_tasks < self.knowledge.current_threads:
            return None
        return self.sensor.read()

    def rearm(self) -> None:
        """Restart the interval in progress, discarding partial readings.

        Called after a fault: a killed or crashed task's partial I/O wait is
        already in the sensor counters, so the interval can no longer produce
        a trustworthy ζ.  Re-arming resets the sensor baseline; the interval
        simply monitors the next ``j`` clean completions instead.
        """
        self._warmup_left = 0
        self._arm()


@dataclass(frozen=True)
class Decision:
    """The analyzer's verdict for the next interval."""

    threads: int
    settled: bool
    reason: str


class Analyzer:
    """[A]nalyze: congestion-index hill-climbing (paper 5.2).

    ``tolerance`` adds hysteresis: the climb continues while
    ``ζ_j <= tolerance * ζ_(j/2)``.  Doubling the pool mechanically doubles
    the number of waiters, so some ζ growth is expected even at the optimum;
    the threshold separates that from the superlinear blow-up of real disk
    contention (the 8 -> 16 transitions in the Terasort stages grow ζ by
    6-12x, an order of magnitude above the threshold).
    """

    def __init__(self, knowledge: KnowledgeBase, tolerance: float = 2.0) -> None:
        if tolerance < 1.0:
            raise ValueError(f"tolerance must be >= 1.0, got {tolerance}")
        self.knowledge = knowledge
        self.tolerance = tolerance

    def analyze(self, reading: EpollReading) -> Decision:
        kb = self.knowledge
        current = kb.current_threads
        zeta = congestion_index(reading)
        previous = kb.previous
        kb.record(IntervalResult(current, reading, zeta))
        if previous is not None and zeta > self.tolerance * previous.congestion:
            # Performance regressed: roll back one step and stop adapting
            # for the remainder of the stage.  "If a specific number of
            # threads performs worse than half its size, then most probably
            # increasing the number of threads would only cause more
            # contention" (5.2).
            return Decision(previous.threads, settled=True, reason="rollback")
        if current >= kb.cmax:
            return Decision(kb.cmax, settled=True, reason="reached-cmax")
        return Decision(min(current * 2, kb.cmax), settled=False, reason="climb")


@dataclass(frozen=True)
class Plan:
    """What the effector should do: the [P] output."""

    resize_to: Optional[int]
    notify_scheduler: bool


class Planner:
    """[P]lan: devise the change while preserving system integrity (5.3).

    The only managed alteration is the pool size, but "changing something
    inside one component such as the executor is not necessarily cascaded
    through other components": any resize must also notify the scheduler so
    its free-core registry stays consistent.
    """

    def __init__(self, knowledge: KnowledgeBase) -> None:
        self.knowledge = knowledge

    def plan(self, decision: Decision) -> Plan:
        kb = self.knowledge
        if decision.settled:
            kb.phase = Phase.SETTLED
        if decision.threads == kb.current_threads:
            return Plan(resize_to=None, notify_scheduler=False)
        return Plan(resize_to=decision.threads, notify_scheduler=True)


class Effector:
    """[E]xecute: apply the plan to the managed element (5.4)."""

    def __init__(self, executor, knowledge: KnowledgeBase) -> None:
        self.executor = executor
        self.knowledge = knowledge

    def execute(self, plan: Plan) -> Optional[int]:
        """Returns the new pool size to apply, or None.

        The actual resize and driver notification are carried by the
        executor's policy-return path (the ``setMaximumPoolSize`` +
        messaging-protocol analogue), so this returns the target size.
        """
        if plan.resize_to is None:
            return None
        self.knowledge.current_threads = plan.resize_to
        return plan.resize_to


class AdaptiveControlLoop:
    """One stage's complete MAPE-K loop on one executor."""

    def __init__(self, executor, stage, cmin: int, cmax: int,
                 tolerance: float = 2.0) -> None:
        if cmin < 1 or cmax < cmin:
            raise ValueError(f"invalid thread bounds: cmin={cmin}, cmax={cmax}")
        self.executor = executor
        self.stage = stage
        self.knowledge = KnowledgeBase(cmin=cmin, cmax=cmax, current_threads=cmin)
        self.monitor = Monitor(executor, self.knowledge)
        self.analyzer = Analyzer(self.knowledge, tolerance=tolerance)
        self.planner = Planner(self.knowledge)
        self.effector = Effector(executor, self.knowledge)
        self.monitor.begin_interval()

    @property
    def settled(self) -> bool:
        return self.knowledge.phase is Phase.SETTLED

    def initial_threads(self) -> int:
        """The hill-climb "always starts from the minimum number of threads"."""
        return self.knowledge.cmin

    def invalidate_interval(self, reason: str) -> None:
        """Discard the contaminated interval after a fault (FAULTS.md).

        Rollback correctness is preserved: the knowledge base's history only
        ever records *completed* clean intervals, so discarding the one in
        flight cannot corrupt the hill-climb's reference point.  A settled
        loop stays settled -- re-adapting to a transient fault would leave
        the pool mis-sized once conditions recover.
        """
        if self.settled:
            return
        self.monitor.rearm()
        ctx = self.executor.ctx
        tracer = ctx.tracer
        if tracer.enabled:
            tracer.instant(
                "mapek", "interval-invalidated",
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                threads=self.knowledge.current_threads,
                reason=reason,
            )
        ctx.metrics.counter("mapek.intervals_invalidated").inc()

    def on_task_complete(self) -> Optional[int]:
        """Run one loop iteration; returns a new pool size if one is due."""
        if self.settled:
            return None
        reading = self.monitor.task_completed()
        if reading is None:
            return None
        ctx = self.executor.ctx
        tracer = ctx.tracer
        interval_start = self.monitor._interval_start
        interval_threads = self.knowledge.current_threads
        if tracer.enabled:
            tracer.instant(
                "mapek", "monitor",
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                threads=interval_threads,
                epoll_wait=reading.epoll_wait_seconds,
                io_bytes=reading.io_bytes,
                tasks=reading.tasks_completed,
            )
        decision = self.analyzer.analyze(reading)
        inv = ctx.invariants
        if inv is not None:
            inv.on_mapek_decision(self, decision)
        zeta = self.knowledge.history[-1].congestion
        if tracer.enabled:
            # ζ = inf (zero-throughput interval) would be invalid JSON;
            # event logs carry the string "inf" instead.
            zeta_json = zeta if math.isfinite(zeta) else "inf"
            tracer.instant(
                "mapek", "analyze",
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                zeta=zeta_json,
                decision=decision.reason,
                threads=decision.threads,
                settled=decision.settled,
            )
            tracer.complete(
                "mapek", "interval", interval_start, ctx.sim.now,
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                threads=interval_threads,
                zeta=zeta_json,
                decision=decision.reason,
            )
        ctx.metrics.counter("mapek.intervals").inc()
        ctx.metrics.histogram("mapek.zeta").observe(zeta)
        self._record_interval(reading, decision, interval_start)
        plan = self.planner.plan(decision)
        if tracer.enabled:
            tracer.instant(
                "mapek", "plan",
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                resize_to=plan.resize_to,
                notify_scheduler=plan.notify_scheduler,
            )
        new_size = self.effector.execute(plan)
        if tracer.enabled and new_size is not None:
            tracer.instant(
                "mapek", "execute",
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                pool_size=new_size,
            )
        self.monitor.begin_interval()
        return new_size

    def _record_interval(self, reading: EpollReading, decision: Decision,
                         interval_start: float) -> None:
        record = self.executor.stage_record
        if record is None:
            return
        now = self.executor.ctx.sim.now
        record.intervals.append(
            IntervalRecord(
                executor_id=self.executor.executor_id,
                stage_id=self.stage.stage_id,
                threads=self.knowledge.history[-1].threads,
                start_time=interval_start,
                end_time=now,
                epoll_wait=reading.epoll_wait_seconds,
                io_bytes=reading.io_bytes,
                decision=decision.reason,
            )
        )
