"""The static solution (paper section 4).

The first step beyond stock Spark: stages whose RDD lineage contains explicit
I/O operators (``textFile``, ``saveAsTextFile``, ``saveAsHadoopFile``) run
with a *user-supplied* thread count; every other stage keeps the default
(all virtual cores).  The classification is exactly the paper's: "the I/O
stages are considered to be the ones that read from or write to the disk
regardless of their input/output size", which deliberately misses shuffle
spills (limitation L2) and requires the user to pick the value (L5).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.policy import ExecutorPolicy


class StaticIOPolicy(ExecutorPolicy):
    """Fixed thread count for I/O-marked stages, default for the rest."""

    def __init__(self, io_threads: Optional[int] = None) -> None:
        if io_threads is not None and io_threads <= 0:
            raise ValueError(f"io_threads must be positive, got {io_threads}")
        self._io_threads = io_threads

    def io_threads_for(self, executor) -> int:
        if self._io_threads is not None:
            return self._io_threads
        return int(executor.ctx.conf.get("repro.static.io.threads"))

    def on_stage_start(self, executor, stage) -> int:
        if stage.is_io_marked:
            return self.io_threads_for(executor)
        return executor.default_pool_size
