"""Cluster model: nodes with CPUs, disks, NICs, and heterogeneity profiles.

The paper's testbed is the Dutch DAS-5 cluster: 4 or 16 worker nodes, each
with 32 virtual cores (16 physical + hyper-threading), 56 GB of memory, one
7'200 rpm HDD (or an SSD in section 6.3), connected by a fast fabric.  This
package reproduces that shape, including the per-node performance variability
the paper measures in Fig. 3.
"""

from repro.cluster.cluster import Cluster, ClusterSpec
from repro.cluster.node import Node, NodeSpec
from repro.cluster.scheduler import (
    ClusterScheduler,
    ServiceJob,
    ServiceResult,
    max_queue_admission,
)

__all__ = [
    "Cluster",
    "ClusterScheduler",
    "ClusterSpec",
    "Node",
    "NodeSpec",
    "ServiceJob",
    "ServiceResult",
    "max_queue_admission",
]
