"""One worker node: CPU bank, local disk, and NIC endpoints.

:class:`NodeSpec` carries the paper's DAS-5 node shape (32 virtual cores,
one 7'200 rpm HDD or an SSD, a gigabit-class NIC) plus the per-node speed
factors drawn by :mod:`repro.cluster.cluster`; :class:`Node` instantiates
the simulated devices against one :class:`~repro.simulation.core.Simulator`
and registers them with the shared network fabric.  A node is the unit the
cluster-level scheduler allocates to jobs (one executor slot per node --
SERVICE.md); everything it emits lands in the run's event log via the
node-scoped ``node.<id>.*`` metric names (see
:data:`repro.observability.metrics.METRIC_UNITS`).

The service layer keeps its own lightweight view of these slots
(``repro.cluster.scheduler._Node``: churn/flap/occupancy state for
cluster-scope fault plans, FAULTS.md section 8); this class stays the
device-level model inside one engine run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.fabric import GBIT, NetworkFabric
from repro.simulation.core import Simulator
from repro.simulation.resources import CpuResource
from repro.storage.device import HDD_PROFILE, DeviceProfile, StorageDevice


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of a worker node (defaults mirror DAS-5)."""

    cores: int = 32
    memory_bytes: float = 56.0 * 1024**3
    disk_profile: DeviceProfile = field(default=HDD_PROFILE)
    nic_bandwidth: float = 10.0 * GBIT
    cpu_speed_factor: float = 1.0
    disk_speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.cpu_speed_factor <= 0 or self.disk_speed_factor <= 0:
            raise ValueError("speed factors must be positive")


class Node:
    """A provisioned node bound to a simulator and network fabric."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        spec: NodeSpec,
        fabric: NetworkFabric,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.name = f"node{300 + node_id}"  # DAS-5 naming convention
        self.cpu = CpuResource(
            sim,
            f"cpu.{node_id}",
            cores=spec.cores,
            speed_factor=spec.cpu_speed_factor,
        )
        self.disk = StorageDevice(
            sim,
            f"disk.{node_id}",
            profile=spec.disk_profile,
            speed_factor=spec.disk_speed_factor,
        )
        fabric.register_node(node_id, bandwidth=spec.nic_bandwidth)
        self.fabric = fabric
        #: Flipped to False by fault injection (node loss); schedulers and
        #: read-path planners consult it before routing work here.
        self.alive = True

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def egress(self):
        return self.fabric.egress(self.node_id)

    @property
    def ingress(self):
        return self.fabric.ingress(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, name={self.name!r}, cores={self.cores})"
