"""Cluster builder with per-node hardware variability.

The paper's Fig. 3 measures reading/writing 30 GB on 44 nominally identical
DAS-5 nodes and finds a wide spread in effective I/O performance.  We model
this with log-normal speed factors applied to each node's disk and (more
tightly) CPU; ``ClusterSpec.disk_sigma = 0`` turns the jitter off for
experiments that need identical nodes.

:class:`Cluster` is what the harness builds once per run (``build_cluster``)
and what every layer above shares: the engine schedules tasks onto its
nodes' cores, the fault injector degrades its devices, and the service
layer (SERVICE.md) treats each node as one executor slot when allocating
across concurrent jobs -- under a cluster-scope fault plan
(``repro.faults/2``, FAULTS.md section 8) those slots additionally churn
down/up and flap, tracked by the service scheduler's own slot state, not
by this builder.  Node-level activity is reported through the
``node.<id>.*`` metric families that end up in ``repro.trace/1`` event
logs and ``repro.profile/1`` demand profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.cluster.node import Node, NodeSpec
from repro.network.fabric import NetworkFabric
from repro.simulation.core import Simulator
from repro.simulation.randomness import RandomStreams


@dataclass(frozen=True)
class ClusterSpec:
    """How many nodes, their hardware, and how much they vary."""

    num_nodes: int = 4
    node: NodeSpec = field(default_factory=NodeSpec)
    disk_sigma: float = 0.08
    cpu_sigma: float = 0.02
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.disk_sigma < 0 or self.cpu_sigma < 0:
            raise ValueError("sigmas must be non-negative")


class Cluster:
    """A set of nodes sharing one simulator and network fabric."""

    def __init__(
        self,
        spec: ClusterSpec,
        sim: Optional[Simulator] = None,
        streams: Optional[RandomStreams] = None,
        core: Optional[str] = None,
    ) -> None:
        if sim is not None and core is not None:
            raise ValueError("pass either a prebuilt sim or a kernel core, not both")
        self.spec = spec
        self.sim = sim if sim is not None else Simulator(core=core)
        self.streams = streams if streams is not None else RandomStreams(spec.seed)
        self.fabric = NetworkFabric(self.sim, bandwidth=spec.node.nic_bandwidth)
        self.nodes: List[Node] = []
        for node_id in range(spec.num_nodes):
            node_spec = self._vary(spec.node, node_id)
            self.nodes.append(Node(self.sim, node_id, node_spec, self.fabric))

    def _vary(self, base: NodeSpec, node_id: int) -> NodeSpec:
        disk_factor = base.disk_speed_factor * self.streams.lognormal_factor(
            f"disk-speed.{node_id}", self.spec.disk_sigma
        )
        cpu_factor = base.cpu_speed_factor * self.streams.lognormal_factor(
            f"cpu-speed.{node_id}", self.spec.cpu_sigma
        )
        return replace(
            base, disk_speed_factor=disk_factor, cpu_speed_factor=cpu_factor
        )

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def node_ids(self) -> List[int]:
        return [node.node_id for node in self.nodes]

    @property
    def total_cores(self) -> int:
        return sum(node.cores for node in self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def alive_node_ids(self) -> List[int]:
        return [node.node_id for node in self.nodes if node.alive]

    def total_disk_bytes(self) -> float:
        """Bytes moved through every disk (Table 2's cluster I/O activity)."""
        return sum(node.disk.total_bytes for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(nodes={self.num_nodes}, cores={self.total_cores})"
