"""Cluster-scope chaos machinery: the runtime half of ``repro.faults/2``.

:mod:`repro.faults.plan` *describes* cluster faults; this module holds the
seeded decision logic the service layer needs to act on them:

* :func:`backoff_delay` -- exponential backoff with jitter for requeued
  attempts, drawn from a dedicated :class:`~repro.simulation.randomness.
  RandomStreams` substream keyed on ``(job_id, attempt)``.  Keyed streams
  make every draw order-independent: adding a fault, a tenant, or a retry
  elsewhere never perturbs this job's delays, which is what keeps seeded
  chaos runs byte-identical across re-runs.
* :func:`poison_roll` / :func:`match_poison` -- per-attempt poison-job
  decisions for :class:`~repro.faults.plan.TenantPoison` rules.
* :class:`CircuitBreaker` -- the per-tenant closed -> open -> half-open ->
  closed state machine with a seeded cool-down.
* :func:`expand_surges` -- applies :class:`~repro.faults.plan.DemandSurge`
  windows to a generated arrival sequence by Poisson superposition
  (``factor > 1``) or thinning (``factor < 1``), without touching the base
  arrival draws (surge streams live under the *fault* plan's seed, not the
  arrival plan's).

Everything here is pure and wall-clock-free; the event-loop integration
lives in :class:`repro.cluster.scheduler.ClusterScheduler`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import (
    ClusterFaults,
    DemandSurge,
    ProtectionConfig,
    TenantPoison,
)
from repro.simulation.randomness import RandomStreams

#: Legal circuit-breaker transitions (enforced by the validation layer).
BREAKER_STATES = ("closed", "open", "half_open")
LEGAL_BREAKER_TRANSITIONS = {
    "closed": ("open",),
    "open": ("half_open",),
    "half_open": ("closed", "open"),
}


def backoff_delay(protection: ProtectionConfig, streams: RandomStreams,
                  job_id: str, attempt: int) -> float:
    """Seeded exponential backoff for retry ``attempt`` (1-based) of a job."""
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    base = min(protection.backoff_cap,
               protection.backoff_base * (2.0 ** (attempt - 1)))
    u = streams.stream(f"chaos.backoff.{job_id}.{attempt}").random()
    return base * (1.0 + protection.backoff_jitter * u)


def match_poison(chaos: ClusterFaults, tenant: str) -> Optional[Tuple[int, TenantPoison]]:
    """First poison rule matching ``tenant`` (exact or ``"*"``), with index."""
    for index, rule in enumerate(chaos.poison):
        if rule.tenant == tenant or rule.tenant == "*":
            return index, rule
    return None


def poison_roll(streams: RandomStreams, job_id: str, attempt: int) -> float:
    """The seeded uniform deciding whether this attempt is poisoned."""
    return streams.stream(f"chaos.poison.{job_id}.{attempt}").random()


class CircuitBreaker:
    """Per-tenant circuit breaker: K consecutive failures open the circuit.

    While *open* every submission from the tenant is shed.  After a seeded
    cool-down the breaker goes *half-open* and admits exactly one probe
    job; the probe's success closes the circuit (failure counter reset),
    its failure reopens it with a fresh cool-down.  All transitions are
    recorded (and reported) so the validation layer can check legality.
    """

    def __init__(self, tenant: str, protection: ProtectionConfig,
                 streams: RandomStreams,
                 on_transition: Optional[Callable[[float, str, str, str], None]] = None) -> None:
        self.tenant = tenant
        self.threshold = protection.breaker_failures
        self.cooldown = protection.breaker_cooldown
        self.jitter = protection.breaker_jitter
        self.state = "closed"
        self.consecutive = 0
        self.opens = 0
        self.probe_job: Optional[str] = None
        #: [(time, state), ...] -- every state entered, in order.
        self.transitions: List[Tuple[float, str]] = []
        self._streams = streams
        self._on_transition = on_transition

    def _enter(self, now: float, state: str) -> None:
        old = self.state
        self.state = state
        self.transitions.append((now, state))
        if self._on_transition is not None:
            self._on_transition(now, self.tenant, old, state)

    def allow(self, job_id: str) -> bool:
        """May this submission pass admission right now?"""
        if self.state == "closed":
            return True
        if self.state == "half_open" and self.probe_job is None:
            self.probe_job = job_id
            return True
        # A requeued attempt of the probe itself stays admitted.
        return self.state == "half_open" and self.probe_job == job_id

    def record_failure(self, now: float, job_id: str) -> Optional[float]:
        """Count one tenant-attributable failure.

        Returns the absolute time of the half-open probe when this failure
        opens (or reopens) the circuit, else ``None``.
        """
        self.consecutive += 1
        reopen = self.state == "half_open" and job_id == self.probe_job
        trip = (self.state == "closed" and self.threshold is not None
                and self.consecutive >= self.threshold)
        if not (reopen or trip):
            return None
        self.opens += 1
        self.probe_job = None
        self._enter(now, "open")
        u = self._streams.stream(
            f"chaos.breaker.{self.tenant}.{self.opens}"
        ).random()
        return now + self.cooldown * (1.0 + self.jitter * u)

    def record_success(self, now: float, job_id: str) -> None:
        self.consecutive = 0
        if self.state == "half_open" and job_id == self.probe_job:
            self.probe_job = None
            self._enter(now, "closed")

    def half_open(self, now: float) -> None:
        """Cool-down expired: admit one probe (no-op unless still open)."""
        if self.state == "open":
            self.probe_job = None
            self._enter(now, "half_open")


def expand_surges(plan, arrivals: Sequence, surges: Sequence[DemandSurge],
                  seed: int) -> List:
    """Apply demand surges to a generated arrival sequence, deterministically.

    ``plan`` is the :class:`~repro.workloads.arrivals.ArrivalPlan` the
    arrivals came from (needed for tenant rates and job mixes).  Returns a
    new time-sorted list with job ids reassigned ``j0000...``; with no
    surges the input ids are reproduced exactly.  Superposition only
    applies to Poisson tenants (a trace tenant has no base rate to
    multiply); thinning applies to every tenant.
    """
    streams = RandomStreams(seed)
    by_name = {tenant.name: tenant for tenant in plan.tenants}

    def thin_factor(tenant: str, time: float) -> float:
        """Combined keep-probability from every thinning surge covering t."""
        factor = 1.0
        for surge in surges:
            if surge.tenant is not None and surge.tenant != tenant:
                continue
            if surge.at <= time < surge.at + surge.duration and surge.factor < 1.0:
                factor *= surge.factor
        return factor

    # 1. thinning: keep each in-window arrival with the combined factor.
    kept = []
    thin_index: Dict[str, int] = {}
    for arrival in arrivals:
        factor = thin_factor(arrival.tenant, arrival.time)
        if factor < 1.0:
            index = thin_index.get(arrival.tenant, 0)
            thin_index[arrival.tenant] = index + 1
            u = streams.stream(f"chaos.thin.{arrival.tenant}.{index}").random()
            if u >= factor:
                continue
        kept.append(arrival)

    # 2. superposition: extra Poisson arrivals at (factor - 1) x base rate.
    extras = []
    for surge_index, surge in enumerate(surges):
        if surge.factor <= 1.0:
            continue
        for tenant in plan.tenants:
            if surge.tenant is not None and surge.tenant != tenant.name:
                continue
            if tenant.process[0] != "poisson":
                continue
            _kind, rate, start, end = tenant.process
            if end is None:
                end = plan.horizon
            lo = max(surge.at, start)
            hi = surge.at + surge.duration
            if end is not None:
                hi = min(hi, end)
            if hi <= lo:
                continue
            rng = streams.stream(f"chaos.surge.{tenant.name}.{surge_index}")
            weights = [template.weight for template in tenant.mix]
            total = sum(weights)
            t = lo
            while True:
                t += rng.expovariate(rate * (surge.factor - 1.0))
                if t > hi:
                    break
                draw = rng.random() * total
                cumulative = 0.0
                chosen = tenant.mix[-1]
                for template, weight in zip(tenant.mix, weights):
                    cumulative += weight
                    if draw < cumulative:
                        chosen = template
                        break
                extras.append((t, tenant.name, chosen))

    # 3. merge, re-sort with the generator's tie-break (time, tenant,
    #    per-tenant submission order), and reassign ids in final order.
    pending = [(a.time, a.tenant, 0, index, a.template)
               for index, a in enumerate(kept)]
    pending.extend((time, name, 1, index, template)
                   for index, (time, name, template) in enumerate(extras))
    pending.sort(key=lambda entry: entry[:4])
    from repro.workloads.arrivals import JobArrival

    return [
        JobArrival(
            job_id=f"j{index:04d}",
            tenant=name,
            time=time,
            template=template,
            slots=by_name[name].slots,
            tenant_weight=by_name[name].weight,
        )
        for index, (time, name, _src, _seq, template) in enumerate(pending)
    ]
