"""Cluster-level scheduler: whole jobs competing for executor slots.

The engine's DAG scheduler places *tasks* inside one job; this module
adds the layer above it -- the Elasecutor framing where executors are the
unit of allocation *across* competing applications.  A
:class:`ClusterScheduler` admits jobs from a multi-tenant arrival
sequence (:mod:`repro.workloads.arrivals`), queues them under a
discipline (``fifo`` | ``fair`` | ``wfair``), and grants each job a
fixed block of executor slots for its whole service time.  Service times
come from the deterministic inner engine via the runtime oracle in
:mod:`repro.harness.service`, so the outer loop here is a pure,
wall-clock-free discrete-event simulation: same arrivals + same runtimes
-> same schedule, byte for byte.

Slots are backed by named *nodes* (one slot per node), which is what the
cluster-scope chaos layer (``repro.faults/2``, FAULTS.md "Cluster failure
model") acts on: node churn kills the jobs holding a node and requeues
them with a per-job retry budget and seeded exponential backoff; slot
flaps drain a node out of the grantable pool without killing its work;
per-tenant poison rules fail attempts partway through; and the
:class:`~repro.faults.plan.ProtectionConfig` guards push back -- deadline
aborts, queue/wait admission shedding, per-tenant circuit breakers, and
graceful degradation that shrinks slot grants under sustained pressure.
A chaos-free run takes none of these paths and is byte-identical to the
pre-chaos scheduler.

Disciplines (all starvation-free by head-of-line blocking -- when the
chosen queue's head does not fit in the free slots, dispatch stops
rather than skipping ahead, so a wide job can never be overtaken
forever):

* ``fifo``  -- one global queue in arrival order.
* ``fair``  -- pick the tenant with the fewest running slots, then its
  earliest job (max-min slot fairness, unit weights).
* ``wfair`` -- like ``fair`` but normalised by tenant weight
  (``running_slots / weight``).

Admission and preemption are pluggable hooks: admission sees each job at
arrival and may reject it (e.g. :func:`max_queue_admission`); preemption
runs after every event and may evict running jobs, which requeue through
the same single admission path as arrivals and retries (so a full queue
sheds them too), and later restart from scratch (lost work is accounted
as wasted slot-seconds).  Service-level metrics (job latency, queueing
delay, per-tenant splits, resilience counters) flow through the shared
observability registry under the ``service.*`` names;
:mod:`repro.harness.service` folds them into the versioned
``repro.service/1`` SLO report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.observability.metrics import MetricsRegistry, tenant_metric

if TYPE_CHECKING:  # imported lazily at runtime: workloads -> engine -> cluster
    from repro.faults.plan import ClusterFaults
    from repro.validation.cluster import ClusterInvariantMonitor
    from repro.workloads.arrivals import JobArrival

#: Queue disciplines accepted by :class:`ClusterScheduler` and `repro serve`.
DISCIPLINES = ("fifo", "fair", "wfair")


@dataclass
class ServiceJob:
    """One job's trip through the service: arrival -> queue -> slots -> done.

    ``runtime`` is the inner-engine service time (simulated seconds) the
    job needs once granted ``slots`` executors; it is supplied by the
    runtime oracle before the outer simulation starts.
    ``runtime_by_slots`` optionally adds service times at alternative
    (degraded) grant sizes.
    """

    job_id: str
    tenant: str
    workload: str
    arrival: float
    slots: int
    runtime: float
    tenant_weight: float = 1.0
    #: Oracle runtimes at alternative grant sizes (graceful degradation).
    runtime_by_slots: Dict[int, float] = field(default_factory=dict)

    # -- state mutated by the scheduler --
    start: Optional[float] = None          #: start of the final (successful) execution
    end: Optional[float] = None            #: completion time
    rejected: bool = False
    preemptions: int = 0
    served: float = 0.0                    #: seconds of service received, incl. failed attempts
    retries: int = 0                       #: fault-triggered re-executions
    failures: int = 0                      #: tenant-attributable attempt failures
    aborted: bool = False
    abort_reason: Optional[str] = None
    shed_reason: Optional[str] = None      #: why admission shed this job, if it did
    granted: Optional[int] = None          #: slots granted in the latest attempt
    degraded: int = 0                      #: attempts run with a shrunken grant
    node_ids: Tuple[int, ...] = ()         #: nodes held by the running attempt
    _generation: int = 0                   #: invalidates stale completion events
    _attempt_slots: int = 0
    _attempt_runtime: float = 0.0

    def runtime_for(self, slots: int) -> float:
        """Service time at a given grant size (the oracle must have it)."""
        if slots == self.slots:
            return self.runtime
        return self.runtime_by_slots[slots]

    def degraded_slots(self) -> Optional[int]:
        """The shrunken grant size, when the oracle priced one."""
        candidates = [size for size in self.runtime_by_slots
                      if size < self.slots]
        return min(candidates) if candidates else None

    @property
    def latency(self) -> Optional[float]:
        """Sojourn time (arrival -> completion), None if not completed."""
        if self.end is None:
            return None
        return self.end - self.arrival

    @property
    def queue_delay(self) -> Optional[float]:
        """Time spent waiting, i.e. sojourn minus all time in service."""
        if self.end is None:
            return None
        return (self.end - self.arrival) - self.served


class _Node:
    """One service-layer node = one executor slot, with chaos state."""

    __slots__ = ("down", "flaps", "job")

    def __init__(self) -> None:
        self.down = 0        #: overlapping churn episodes holding it down
        self.flaps = 0       #: overlapping slot flaps draining it
        self.job: Optional[str] = None

    @property
    def grantable(self) -> bool:
        return self.down == 0 and self.flaps == 0 and self.job is None


@dataclass
class SchedulerState:
    """Read-only view handed to admission and preemption hooks."""

    now: float
    total_slots: int
    free_slots: int
    running: Tuple[ServiceJob, ...]
    queued: Tuple[ServiceJob, ...]
    #: Slots on live (non-down, non-flapped) nodes; == total_slots chaos-free.
    up_slots: int = -1


AdmissionHook = Callable[[ServiceJob, SchedulerState], bool]
PreemptionHook = Callable[[SchedulerState], Sequence[ServiceJob]]


def max_queue_admission(limit: int) -> AdmissionHook:
    """Canned admission hook: reject submissions once ``limit`` jobs queue."""
    if limit < 0:
        raise ValueError(f"queue limit must be >= 0, got {limit}")

    def admit(job: ServiceJob, state: SchedulerState) -> bool:
        return len(state.queued) < limit

    return admit


def max_wait_admission(limit: float) -> AdmissionHook:
    """Canned admission hook: shed when the estimated wait exceeds ``limit``.

    Estimated wait is queued work (runtime x slots) over live capacity --
    the simplest load-aware shed rule, and the same estimate the
    ``max_wait`` protection guard uses.
    """
    if limit <= 0:
        raise ValueError(f"wait limit must be > 0, got {limit}")

    def admit(job: ServiceJob, state: SchedulerState) -> bool:
        capacity = state.up_slots if state.up_slots > 0 else state.total_slots
        work = sum(queued.runtime * queued.slots for queued in state.queued)
        return work / max(1, capacity) <= limit

    return admit


@dataclass
class ServiceResult:
    """Outcome of one scheduled scenario, ready for report assembly."""

    jobs: List[ServiceJob]
    discipline: str
    total_slots: int
    makespan: float
    submitted: int
    completed: int
    rejected: int
    preempted: int
    #: slot-seconds of completed service, per tenant (fairness input).
    slot_seconds: Dict[str, float]
    #: slot-seconds thrown away by preemption and faults (lost work).
    wasted_slot_seconds: float
    registry: MetricsRegistry
    # -- resilience (all zero / empty on a chaos-free run) --
    aborted: int = 0
    retried: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    slo_violations: int = 0
    wasted_fault_slot_seconds: float = 0.0
    degraded_grants: int = 0
    #: One record per node-churn episode that killed work, resolution order.
    mttr: List[Dict[str, Any]] = field(default_factory=list)
    #: tenant -> {state, opens, transitions} for armed circuit breakers.
    breakers: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    node_downtime: float = 0.0

    @property
    def utilization(self) -> float:
        """Useful slot-seconds over capacity slot-seconds (0 if empty)."""
        capacity = self.total_slots * self.makespan
        if capacity <= 0:
            return 0.0
        return sum(self.slot_seconds.values()) / capacity

    @property
    def goodput(self) -> float:
        """Completed jobs per simulated second (0 if makespan is 0)."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def fairness_index(self, weights: Dict[str, float]) -> float:
        """Jain's fairness index over weight-normalised tenant service.

        1.0 means every tenant received slot-seconds exactly proportional
        to its weight; 1/n means one tenant got everything.  Degenerate
        cases (no service, single tenant) read as perfectly fair.
        """
        shares = [
            self.slot_seconds.get(tenant, 0.0) / weights.get(tenant, 1.0)
            for tenant in sorted(weights)
        ]
        total = sum(shares)
        if len(shares) <= 1 or total <= 0:
            return 1.0
        squares = sum(share * share for share in shares)
        return (total * total) / (len(shares) * squares)


class ClusterScheduler:
    """Deterministic event-driven service loop over executor slots."""

    def __init__(
        self,
        total_slots: int,
        discipline: str = "fifo",
        admission: Optional[AdmissionHook] = None,
        preemption: Optional[PreemptionHook] = None,
        registry: Optional[MetricsRegistry] = None,
        chaos: Optional["ClusterFaults"] = None,
        chaos_seed: int = 0,
        monitor: Optional["ClusterInvariantMonitor"] = None,
    ) -> None:
        if total_slots < 1:
            raise ValueError(f"total_slots must be >= 1, got {total_slots}")
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; expected one of "
                f"{DISCIPLINES}"
            )
        self.total_slots = total_slots
        self.discipline = discipline
        self.admission = admission
        self.preemption = preemption
        self.registry = registry if registry is not None else MetricsRegistry()
        self.chaos = chaos
        self.chaos_seed = chaos_seed
        self.monitor = monitor
        if chaos is not None:
            for episode in list(chaos.node_churn) + list(chaos.slot_flaps):
                if episode.node_id >= total_slots:
                    raise ValueError(
                        f"chaos plan targets node {episode.node_id} but the "
                        f"cluster has {total_slots} node(s)"
                    )

    # -- public API --------------------------------------------------------

    def run(self, jobs: Sequence[ServiceJob]) -> ServiceResult:
        """Schedule ``jobs`` to completion and return the service result.

        Raises :class:`~repro.workloads.arrivals.ArrivalPlanError` when a
        job demands more slots than the cluster has (it could never run).
        """
        from repro.workloads.arrivals import ArrivalPlanError

        for job in jobs:
            if job.slots > self.total_slots:
                raise ArrivalPlanError(
                    f"job {job.job_id} ({job.tenant}) needs {job.slots} "
                    f"slots but the cluster has {self.total_slots}"
                )
            if job.runtime < 0:
                raise ValueError(
                    f"job {job.job_id}: runtime must be >= 0, "
                    f"got {job.runtime}"
                )

        arrivals = sorted(jobs, key=lambda job: (job.arrival, job.job_id))
        # Queue entries keep (arrival, submit_seq) so requeued preempted
        # jobs fall back into arrival order deterministically.
        queued: List[Tuple[float, int, ServiceJob]] = []
        running: Dict[str, ServiceJob] = {}
        run_start: Dict[str, float] = {}
        completions: List[Tuple[float, int, str, int, str]] = []
        nodes = [_Node() for _ in range(self.total_slots)]
        now = 0.0
        seq = 0
        next_arrival = 0
        completed = 0
        rejected = 0
        aborted = 0
        retried = 0
        preempted_events = 0
        degraded_grants = 0
        slo_violations = 0
        pending_retries = 0
        wasted = 0.0
        wasted_faults = 0.0
        node_downtime = 0.0
        slot_seconds: Dict[str, float] = {}
        shed_counts: Dict[str, int] = {}
        makespan = 0.0

        metrics = self.registry
        monitor = self.monitor
        submitted_counter = metrics.counter("service.jobs.submitted")
        completed_counter = metrics.counter("service.jobs.completed")
        rejected_counter = metrics.counter("service.jobs.rejected")
        preempted_counter = metrics.counter("service.jobs.preempted")
        latency_hist = metrics.histogram("service.job_latency")
        delay_hist = metrics.histogram("service.queue_delay")

        # -- chaos machinery (untouched, and metrics uncreated, chaos-free) --
        chaos = self.chaos
        protection = chaos.protection if chaos is not None else None
        if chaos is not None:
            from repro.cluster.chaos import (
                CircuitBreaker,
                backoff_delay,
                match_poison,
                poison_roll,
            )
            from repro.simulation.randomness import RandomStreams

            streams = RandomStreams(self.chaos_seed)
            retried_counter = metrics.counter("service.jobs.retried")
            shed_counter = metrics.counter("service.jobs.shed")
            aborted_counter = metrics.counter("service.jobs.aborted")
            slo_counter = metrics.counter("service.slo_violations")
            breaker_opens_counter = metrics.counter("service.breaker.opens")
            backoff_hist = metrics.histogram("service.retry_backoff")
            mttr_hist = metrics.histogram("service.mttr")
        else:
            streams = None
            shed_counter = None

        # Timed chaos events: (time, tseq, kind, payload); tseq keeps the
        # heap total-ordered without ever comparing payloads.
        timed: List[Tuple[float, int, str, Any]] = []
        tseq = 0

        def push_timed(at: float, kind: str, payload: Any) -> None:
            nonlocal tseq
            tseq += 1
            heapq.heappush(timed, (at, tseq, kind, payload))

        breakers: Dict[str, Any] = {}
        poison_budget: Dict[int, int] = {}
        down_since: Dict[int, float] = {}
        episode_victims: Dict[int, Set[str]] = {}
        episode_sizes: Dict[int, int] = {}
        mttr_records: List[Dict[str, Any]] = []

        if chaos is not None:
            for index, rule in enumerate(chaos.poison):
                poison_budget[index] = rule.max_poisoned
            for index, churn in enumerate(chaos.node_churn):
                push_timed(churn.down_at, "node_down", index)
                if churn.duration is not None:
                    push_timed(churn.down_at + churn.duration, "node_up",
                               churn.node_id)
            for flap in chaos.slot_flaps:
                push_timed(flap.at, "flap_start", flap.node_id)
                push_timed(flap.at + flap.duration, "flap_end", flap.node_id)

        def on_breaker_transition(at: float, tenant: str, old: str,
                                  new: str) -> None:
            if new == "open":
                breaker_opens_counter.inc()
            if monitor is not None:
                monitor.on_breaker(at, tenant, old, new)

        def get_breaker(tenant: str):
            breaker = breakers.get(tenant)
            if breaker is None:
                breaker = CircuitBreaker(tenant, protection, streams,
                                         on_transition=on_breaker_transition)
                breakers[tenant] = breaker
            return breaker

        def available_nodes() -> List[int]:
            return [index for index, node in enumerate(nodes)
                    if node.grantable]

        def up_slots() -> int:
            return sum(1 for node in nodes
                       if node.down == 0 and node.flaps == 0)

        def state() -> SchedulerState:
            return SchedulerState(
                now=now,
                total_slots=self.total_slots,
                free_slots=len(available_nodes()),
                running=tuple(
                    running[job_id] for job_id in sorted(running)
                ),
                queued=tuple(entry[2] for entry in sorted(queued)),
                up_slots=up_slots(),
            )

        def resolve_victim(job_id: str) -> None:
            """A churn victim reached a terminal state; close episodes."""
            for index in list(episode_victims):
                victims = episode_victims[index]
                if job_id not in victims:
                    continue
                victims.discard(job_id)
                if victims:
                    continue
                churn = chaos.node_churn[index]
                mttr = now - churn.down_at
                mttr_hist.observe(mttr)
                mttr_records.append({
                    "node": churn.node_id,
                    "down_at": churn.down_at,
                    "recovered_at": now,
                    "mttr_s": mttr,
                    "victims": episode_sizes[index],
                })
                del episode_victims[index]

        def shed(job: ServiceJob, reason: str) -> None:
            nonlocal rejected, makespan
            job.rejected = True
            job.shed_reason = reason
            rejected += 1
            rejected_counter.inc()
            if shed_counter is not None:
                shed_counter.inc()
            shed_counts[reason] = shed_counts.get(reason, 0) + 1
            makespan = max(makespan, now)
            if chaos is not None:
                resolve_victim(job.job_id)

        def admit(job: ServiceJob, kind: str) -> bool:
            """The single admission path: arrivals, retries, and requeues."""
            nonlocal seq
            if protection is not None:
                if protection.breaker_failures is not None:
                    breaker = get_breaker(job.tenant)
                    if not breaker.allow(job.job_id):
                        shed(job, "breaker")
                        return False
                if (protection.max_queue is not None
                        and len(queued) >= protection.max_queue):
                    shed(job, "queue")
                    return False
                if protection.max_wait is not None:
                    work = sum(entry[2].runtime * entry[2].slots
                               for entry in queued)
                    if work / max(1, up_slots()) > protection.max_wait:
                        shed(job, "wait")
                        return False
            if (self.admission is not None
                    and not self.admission(job, state())):
                shed(job, "admission")
                return False
            seq += 1
            queued.append((job.arrival, seq, job))
            if (kind == "arrival" and protection is not None
                    and protection.deadline is not None):
                push_timed(job.arrival + protection.deadline, "deadline", job)
            return True

        def abort(job: ServiceJob, reason: str) -> None:
            nonlocal aborted, makespan, slo_violations
            job.aborted = True
            job.abort_reason = reason
            aborted += 1
            aborted_counter.inc()
            makespan = max(makespan, now)
            if reason == "deadline":
                slo_violations += 1
                slo_counter.inc()
            resolve_victim(job.job_id)

        def breaker_failure(job: ServiceJob) -> None:
            job.failures += 1
            if protection is None or protection.breaker_failures is None:
                return
            probe_at = get_breaker(job.tenant).record_failure(now, job.job_id)
            if probe_at is not None:
                push_timed(probe_at, "probe", job.tenant)

        def kill_attempt(job: ServiceJob) -> None:
            """Tear down a running attempt without deciding the job's fate."""
            nonlocal wasted_faults
            lost = now - run_start[job.job_id]
            job.served += lost
            wasted_faults += lost * job._attempt_slots
            for index in job.node_ids:
                nodes[index].job = None
            job.node_ids = ()
            del running[job.job_id]
            job.start = None

        def retry_or_abort(job: ServiceJob, reason: str) -> None:
            nonlocal retried, pending_retries
            job.retries += 1
            if job.retries > protection.max_retries:
                abort(job, reason)
                return
            delay = backoff_delay(protection, streams, job.job_id,
                                  job.retries)
            retried += 1
            retried_counter.inc()
            backoff_hist.observe(delay)
            pending_retries += 1
            push_timed(now + delay, "retry", job)

        def grant_slots(job: ServiceJob) -> int:
            if (protection is None or protection.degrade_queue is None
                    or len(queued) < protection.degrade_queue):
                return job.slots
            degraded = job.degraded_slots()
            return degraded if degraded is not None else job.slots

        def start_job(job: ServiceJob, node_ids: List[int],
                      granted: int) -> None:
            nonlocal seq, degraded_grants
            if monitor is not None:
                monitor.on_grant(now, job, node_ids, nodes)
            job.start = now
            job._generation += 1
            runtime = job.runtime_for(granted)
            outcome = "ok"
            duration = runtime
            if chaos is not None and chaos.poison:
                match = match_poison(chaos, job.tenant)
                if match is not None:
                    rule_index, rule = match
                    if (poison_budget.get(rule_index, 0) > 0
                            and poison_roll(streams, job.job_id,
                                            job.retries) < rule.probability):
                        poison_budget[rule_index] -= 1
                        outcome = "poison"
                        duration = runtime * rule.at_fraction
            job.granted = granted
            job._attempt_slots = granted
            job._attempt_runtime = runtime
            if granted < job.slots:
                degraded_grants += 1
                job.degraded += 1
            running[job.job_id] = job
            run_start[job.job_id] = now
            for index in node_ids:
                nodes[index].job = job.job_id
            job.node_ids = tuple(node_ids)
            seq += 1
            heapq.heappush(
                completions,
                (now + duration, seq, job.job_id, job._generation, outcome),
            )

        def dispatch() -> None:
            while queued:
                entry = self._pick(queued, running)
                job = entry[2]
                granted = grant_slots(job)
                free_ids = available_nodes()
                if granted > len(free_ids):
                    break  # head-of-line blocking: never skip ahead
                queued.remove(entry)
                start_job(job, free_ids[:granted], granted)

        def handle_timed(kind: str, payload: Any) -> None:
            nonlocal pending_retries, node_downtime
            if kind == "node_down":
                churn = chaos.node_churn[payload]
                node = nodes[churn.node_id]
                node.down += 1
                if node.down == 1:
                    down_since[churn.node_id] = now
                    job_id = node.job
                    if job_id is not None:
                        job = running[job_id]
                        kill_attempt(job)
                        episode_victims.setdefault(payload, set()).add(job_id)
                        episode_sizes[payload] = (
                            episode_sizes.get(payload, 0) + 1
                        )
                        retry_or_abort(job, "node-loss")
            elif kind == "node_up":
                node = nodes[payload]
                node.down -= 1
                if node.down == 0:
                    node_downtime += now - down_since.pop(payload)
            elif kind == "flap_start":
                nodes[payload].flaps += 1
            elif kind == "flap_end":
                nodes[payload].flaps -= 1
            elif kind == "retry":
                pending_retries -= 1
                job = payload
                if not (job.aborted or job.rejected or job.end is not None):
                    admit(job, "retry")
            elif kind == "deadline":
                job = payload
                if job.aborted or job.rejected or job.end is not None:
                    return
                if job.job_id in running:
                    kill_attempt(job)
                elif any(entry[2] is job for entry in queued):
                    queued[:] = [entry for entry in queued
                                 if entry[2] is not job]
                breaker_failure(job)
                abort(job, "deadline")
            elif kind == "probe":
                breaker = breakers.get(payload)
                if breaker is not None:
                    breaker.half_open(now)

        while (next_arrival < len(arrivals) or completions or queued
               or pending_retries):
            times: List[float] = []
            if next_arrival < len(arrivals):
                times.append(arrivals[next_arrival].arrival)
            if completions:
                times.append(completions[0][0])
            if timed:
                times.append(timed[0][0])
            if not times:
                if chaos is not None:
                    # Permanent capacity loss: the queue can never drain.
                    for entry in sorted(queued):
                        abort(entry[2], "capacity")
                    queued.clear()
                    continue
                # Only queued jobs remain but nothing is running and no
                # arrivals are due: the head does not fit even in an idle
                # cluster, which the slot check above already excluded.
                raise AssertionError("scheduler stalled with queued jobs")
            now = min(times)

            # 1. completions at `now` free their slots first.
            while completions and completions[0][0] <= now:
                _end, _seq, job_id, generation, outcome = heapq.heappop(
                    completions)
                job = running.get(job_id)
                if job is None or job._generation != generation:
                    continue  # stale event from a preempted/killed attempt
                if outcome == "poison":
                    kill_attempt(job)
                    breaker_failure(job)
                    retry_or_abort(job, "poison")
                    continue
                del running[job_id]
                for index in job.node_ids:
                    nodes[index].job = None
                job.node_ids = ()
                job.end = now
                job.served += job._attempt_runtime
                completed += 1
                makespan = max(makespan, now)
                slot_seconds[job.tenant] = (
                    slot_seconds.get(job.tenant, 0.0)
                    + job._attempt_runtime * job._attempt_slots
                )
                completed_counter.inc()
                latency_hist.observe(job.latency)
                delay_hist.observe(job.queue_delay)
                metrics.histogram(
                    tenant_metric(job.tenant, "job_latency")
                ).observe(job.latency)
                metrics.histogram(
                    tenant_metric(job.tenant, "queue_delay")
                ).observe(job.queue_delay)
                if chaos is not None:
                    if job.tenant in breakers:
                        breakers[job.tenant].record_success(now, job_id)
                    if (protection.slo_latency is not None
                            and job.latency > protection.slo_latency):
                        slo_violations += 1
                        slo_counter.inc()
                    resolve_victim(job_id)

            # 2. timed chaos events at `now` (node churn, flaps, retries,
            #    deadlines, breaker probes); empty heap chaos-free.
            while timed and timed[0][0] <= now:
                _at, _tseq, kind, payload = heapq.heappop(timed)
                handle_timed(kind, payload)

            # 3. arrivals at `now` pass admission and enqueue.
            while (next_arrival < len(arrivals)
                   and arrivals[next_arrival].arrival <= now):
                job = arrivals[next_arrival]
                next_arrival += 1
                submitted_counter.inc()
                admit(job, "arrival")

            # 4. preemption hook may evict running jobs back to the queue.
            if self.preemption is not None:
                victims = list(self.preemption(state()))
                for victim in victims:
                    current = running.get(victim.job_id)
                    if current is not victim:
                        continue  # hook returned a job that is not running
                    del running[victim.job_id]
                    for index in victim.node_ids:
                        nodes[index].job = None
                    victim.node_ids = ()
                    lost = now - run_start[victim.job_id]
                    victim.served += lost
                    wasted += lost * victim._attempt_slots
                    victim.preemptions += 1
                    victim.start = None
                    preempted_events += 1
                    preempted_counter.inc()
                    admit(victim, "requeue")

            # 5. fill freed slots under the discipline.
            dispatch()

        for node_id, since in down_since.items():
            node_downtime += max(0.0, makespan - since)

        total = len(arrivals)
        if monitor is not None:
            monitor.on_final(now, submitted=total, completed=completed,
                             rejected=rejected, aborted=aborted)
        return ServiceResult(
            jobs=list(arrivals),
            discipline=self.discipline,
            total_slots=self.total_slots,
            makespan=makespan,
            submitted=total,
            completed=completed,
            rejected=rejected,
            preempted=preempted_events,
            slot_seconds=slot_seconds,
            wasted_slot_seconds=wasted + wasted_faults,
            registry=metrics,
            aborted=aborted,
            retried=retried,
            shed=dict(sorted(shed_counts.items())),
            slo_violations=slo_violations,
            wasted_fault_slot_seconds=wasted_faults,
            degraded_grants=degraded_grants,
            mttr=mttr_records,
            breakers={
                tenant: {
                    "state": breaker.state,
                    "opens": breaker.opens,
                    "transitions": [[at, state_name]
                                    for at, state_name in breaker.transitions],
                }
                for tenant, breaker in sorted(breakers.items())
            },
            node_downtime=node_downtime,
        )

    # -- discipline --------------------------------------------------------

    def _pick(
        self,
        queued: List[Tuple[float, int, ServiceJob]],
        running: Dict[str, ServiceJob],
    ) -> Tuple[float, int, ServiceJob]:
        """Choose the next queue entry to consider (head-of-line)."""
        if self.discipline == "fifo":
            return min(queued, key=lambda entry: (entry[0], entry[1]))
        # fair / wfair: tenant with the smallest normalised running-slot
        # share goes first; ties break by tenant name for determinism.
        usage: Dict[str, float] = {}
        for job in running.values():
            usage[job.tenant] = usage.get(job.tenant, 0.0) + job.slots
        best: Optional[Tuple[float, str]] = None
        for _arrival, _seq, job in queued:
            weight = job.tenant_weight if self.discipline == "wfair" else 1.0
            share = usage.get(job.tenant, 0.0) / weight
            key = (share, job.tenant)
            if best is None or key < best:
                best = key
        assert best is not None
        tenant = best[1]
        return min(
            (entry for entry in queued if entry[2].tenant == tenant),
            key=lambda entry: (entry[0], entry[1]),
        )


def jobs_from_arrivals(
    arrivals: Sequence["JobArrival"],
    runtimes: Dict[str, float],
    degraded_runtimes: Optional[Dict[str, Tuple[int, float]]] = None,
) -> List[ServiceJob]:
    """Bind expanded arrivals to oracle runtimes, keyed by ``job_id``.

    ``degraded_runtimes`` optionally maps job ids to ``(slots, runtime)``
    at the shrunken grant size used under graceful degradation.
    """
    jobs: List[ServiceJob] = []
    for arrival in arrivals:
        if arrival.job_id not in runtimes:
            raise KeyError(f"no runtime for job {arrival.job_id}")
        by_slots: Dict[int, float] = {}
        if degraded_runtimes and arrival.job_id in degraded_runtimes:
            slots, runtime = degraded_runtimes[arrival.job_id]
            by_slots[slots] = runtime
        jobs.append(
            ServiceJob(
                job_id=arrival.job_id,
                tenant=arrival.tenant,
                workload=arrival.template.label,
                arrival=arrival.time,
                slots=arrival.slots,
                runtime=runtimes[arrival.job_id],
                tenant_weight=arrival.tenant_weight,
                runtime_by_slots=by_slots,
            )
        )
    return jobs
