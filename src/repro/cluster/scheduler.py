"""Cluster-level scheduler: whole jobs competing for executor slots.

The engine's DAG scheduler places *tasks* inside one job; this module
adds the layer above it -- the Elasecutor framing where executors are the
unit of allocation *across* competing applications.  A
:class:`ClusterScheduler` admits jobs from a multi-tenant arrival
sequence (:mod:`repro.workloads.arrivals`), queues them under a
discipline (``fifo`` | ``fair`` | ``wfair``), and grants each job a
fixed block of executor slots for its whole service time.  Service times
come from the deterministic inner engine via the runtime oracle in
:mod:`repro.harness.service`, so the outer loop here is a pure,
wall-clock-free discrete-event simulation: same arrivals + same runtimes
-> same schedule, byte for byte.

Disciplines (all starvation-free by head-of-line blocking -- when the
chosen queue's head does not fit in the free slots, dispatch stops
rather than skipping ahead, so a wide job can never be overtaken
forever):

* ``fifo``  -- one global queue in arrival order.
* ``fair``  -- pick the tenant with the fewest running slots, then its
  earliest job (max-min slot fairness, unit weights).
* ``wfair`` -- like ``fair`` but normalised by tenant weight
  (``running_slots / weight``).

Admission and preemption are pluggable hooks: admission sees each job at
arrival and may reject it (e.g. :func:`max_queue_admission`); preemption
runs after every event and may evict running jobs, which requeue and
later restart from scratch (lost work is accounted as wasted
slot-seconds).  Service-level metrics (job latency, queueing delay,
per-tenant splits) flow through the shared observability registry under
the ``service.*`` names; :mod:`repro.harness.service` folds them into
the versioned ``repro.service/1`` SLO report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.observability.metrics import MetricsRegistry, tenant_metric

if TYPE_CHECKING:  # imported lazily at runtime: workloads -> engine -> cluster
    from repro.workloads.arrivals import JobArrival

#: Queue disciplines accepted by :class:`ClusterScheduler` and `repro serve`.
DISCIPLINES = ("fifo", "fair", "wfair")


@dataclass
class ServiceJob:
    """One job's trip through the service: arrival -> queue -> slots -> done.

    ``runtime`` is the inner-engine service time (simulated seconds) the
    job needs once granted ``slots`` executors; it is supplied by the
    runtime oracle before the outer simulation starts.
    """

    job_id: str
    tenant: str
    workload: str
    arrival: float
    slots: int
    runtime: float
    tenant_weight: float = 1.0

    # -- state mutated by the scheduler --
    start: Optional[float] = None          #: start of the final (successful) execution
    end: Optional[float] = None            #: completion time
    rejected: bool = False
    preemptions: int = 0
    served: float = 0.0                    #: seconds of service received, incl. preempted attempts
    _generation: int = 0                   #: invalidates stale completion events after preemption

    @property
    def latency(self) -> Optional[float]:
        """Sojourn time (arrival -> completion), None if not completed."""
        if self.end is None:
            return None
        return self.end - self.arrival

    @property
    def queue_delay(self) -> Optional[float]:
        """Time spent waiting, i.e. sojourn minus all time in service."""
        if self.end is None:
            return None
        return (self.end - self.arrival) - self.served


@dataclass
class SchedulerState:
    """Read-only view handed to admission and preemption hooks."""

    now: float
    total_slots: int
    free_slots: int
    running: Tuple[ServiceJob, ...]
    queued: Tuple[ServiceJob, ...]


AdmissionHook = Callable[[ServiceJob, SchedulerState], bool]
PreemptionHook = Callable[[SchedulerState], Sequence[ServiceJob]]


def max_queue_admission(limit: int) -> AdmissionHook:
    """Canned admission hook: reject arrivals once ``limit`` jobs queue."""
    if limit < 0:
        raise ValueError(f"queue limit must be >= 0, got {limit}")

    def admit(job: ServiceJob, state: SchedulerState) -> bool:
        return len(state.queued) < limit

    return admit


@dataclass
class ServiceResult:
    """Outcome of one scheduled scenario, ready for report assembly."""

    jobs: List[ServiceJob]
    discipline: str
    total_slots: int
    makespan: float
    submitted: int
    completed: int
    rejected: int
    preempted: int
    #: slot-seconds of completed service, per tenant (fairness input).
    slot_seconds: Dict[str, float]
    #: slot-seconds thrown away by preemption (lost work).
    wasted_slot_seconds: float
    registry: MetricsRegistry

    @property
    def utilization(self) -> float:
        """Useful slot-seconds over capacity slot-seconds (0 if empty)."""
        capacity = self.total_slots * self.makespan
        if capacity <= 0:
            return 0.0
        return sum(self.slot_seconds.values()) / capacity

    @property
    def goodput(self) -> float:
        """Completed jobs per simulated second (0 if makespan is 0)."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    def fairness_index(self, weights: Dict[str, float]) -> float:
        """Jain's fairness index over weight-normalised tenant service.

        1.0 means every tenant received slot-seconds exactly proportional
        to its weight; 1/n means one tenant got everything.  Degenerate
        cases (no service, single tenant) read as perfectly fair.
        """
        shares = [
            self.slot_seconds.get(tenant, 0.0) / weights.get(tenant, 1.0)
            for tenant in sorted(weights)
        ]
        total = sum(shares)
        if len(shares) <= 1 or total <= 0:
            return 1.0
        squares = sum(share * share for share in shares)
        return (total * total) / (len(shares) * squares)


class ClusterScheduler:
    """Deterministic event-driven service loop over executor slots."""

    def __init__(
        self,
        total_slots: int,
        discipline: str = "fifo",
        admission: Optional[AdmissionHook] = None,
        preemption: Optional[PreemptionHook] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if total_slots < 1:
            raise ValueError(f"total_slots must be >= 1, got {total_slots}")
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"unknown discipline {discipline!r}; expected one of "
                f"{DISCIPLINES}"
            )
        self.total_slots = total_slots
        self.discipline = discipline
        self.admission = admission
        self.preemption = preemption
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- public API --------------------------------------------------------

    def run(self, jobs: Sequence[ServiceJob]) -> ServiceResult:
        """Schedule ``jobs`` to completion and return the service result.

        Raises :class:`~repro.workloads.arrivals.ArrivalPlanError` when a
        job demands more slots than the cluster has (it could never run).
        """
        from repro.workloads.arrivals import ArrivalPlanError

        for job in jobs:
            if job.slots > self.total_slots:
                raise ArrivalPlanError(
                    f"job {job.job_id} ({job.tenant}) needs {job.slots} "
                    f"slots but the cluster has {self.total_slots}"
                )
            if job.runtime < 0:
                raise ValueError(
                    f"job {job.job_id}: runtime must be >= 0, "
                    f"got {job.runtime}"
                )

        arrivals = sorted(jobs, key=lambda job: (job.arrival, job.job_id))
        # Queue entries keep (arrival, submit_seq) so requeued preempted
        # jobs fall back into arrival order deterministically.
        queued: List[Tuple[float, int, ServiceJob]] = []
        running: Dict[str, ServiceJob] = {}
        run_start: Dict[str, float] = {}
        completions: List[Tuple[float, int, str, int]] = []
        free = self.total_slots
        now = 0.0
        seq = 0
        next_arrival = 0
        completed = 0
        rejected = 0
        preempted_events = 0
        wasted = 0.0
        slot_seconds: Dict[str, float] = {}
        makespan = 0.0

        metrics = self.registry
        submitted_counter = metrics.counter("service.jobs.submitted")
        completed_counter = metrics.counter("service.jobs.completed")
        rejected_counter = metrics.counter("service.jobs.rejected")
        preempted_counter = metrics.counter("service.jobs.preempted")
        latency_hist = metrics.histogram("service.job_latency")
        delay_hist = metrics.histogram("service.queue_delay")

        def state() -> SchedulerState:
            return SchedulerState(
                now=now,
                total_slots=self.total_slots,
                free_slots=free,
                running=tuple(
                    running[job_id] for job_id in sorted(running)
                ),
                queued=tuple(entry[2] for entry in sorted(queued)),
            )

        def start_job(job: ServiceJob) -> None:
            nonlocal free, seq
            job.start = now
            job._generation += 1
            running[job.job_id] = job
            run_start[job.job_id] = now
            free -= job.slots
            seq += 1
            heapq.heappush(
                completions,
                (now + job.runtime, seq, job.job_id, job._generation),
            )

        def dispatch() -> None:
            nonlocal free
            while queued:
                entry = self._pick(queued, running)
                job = entry[2]
                if job.slots > free:
                    break  # head-of-line blocking: never skip ahead
                queued.remove(entry)
                start_job(job)

        while next_arrival < len(arrivals) or completions or queued:
            times: List[float] = []
            if next_arrival < len(arrivals):
                times.append(arrivals[next_arrival].arrival)
            if completions:
                times.append(completions[0][0])
            if not times:
                # Only queued jobs remain but nothing is running and no
                # arrivals are due: the head does not fit even in an idle
                # cluster, which the slot check above already excluded.
                raise AssertionError("scheduler stalled with queued jobs")
            now = min(times)

            # 1. completions at `now` free their slots first.
            while completions and completions[0][0] <= now:
                _end, _seq, job_id, generation = heapq.heappop(completions)
                job = running.get(job_id)
                if job is None or job._generation != generation:
                    continue  # stale event from a preempted attempt
                del running[job_id]
                free += job.slots
                job.end = now
                job.served += job.runtime
                completed += 1
                makespan = max(makespan, now)
                slot_seconds[job.tenant] = (
                    slot_seconds.get(job.tenant, 0.0)
                    + job.runtime * job.slots
                )
                completed_counter.inc()
                latency_hist.observe(job.latency)
                delay_hist.observe(job.queue_delay)
                metrics.histogram(
                    tenant_metric(job.tenant, "job_latency")
                ).observe(job.latency)
                metrics.histogram(
                    tenant_metric(job.tenant, "queue_delay")
                ).observe(job.queue_delay)

            # 2. arrivals at `now` pass admission and enqueue.
            while (next_arrival < len(arrivals)
                   and arrivals[next_arrival].arrival <= now):
                job = arrivals[next_arrival]
                next_arrival += 1
                submitted_counter.inc()
                if (self.admission is not None
                        and not self.admission(job, state())):
                    job.rejected = True
                    rejected += 1
                    rejected_counter.inc()
                    makespan = max(makespan, now)
                    continue
                seq += 1
                queued.append((job.arrival, seq, job))

            # 3. preemption hook may evict running jobs back to the queue.
            if self.preemption is not None:
                victims = list(self.preemption(state()))
                for victim in victims:
                    current = running.get(victim.job_id)
                    if current is not victim:
                        continue  # hook returned a job that is not running
                    del running[victim.job_id]
                    free += victim.slots
                    lost = now - run_start[victim.job_id]
                    victim.served += lost
                    wasted += lost * victim.slots
                    victim.preemptions += 1
                    victim.start = None
                    preempted_events += 1
                    preempted_counter.inc()
                    seq += 1
                    queued.append((victim.arrival, seq, victim))

            # 4. fill freed slots under the discipline.
            dispatch()

        total = len(arrivals)
        return ServiceResult(
            jobs=list(arrivals),
            discipline=self.discipline,
            total_slots=self.total_slots,
            makespan=makespan,
            submitted=total,
            completed=completed,
            rejected=rejected,
            preempted=preempted_events,
            slot_seconds=slot_seconds,
            wasted_slot_seconds=wasted,
            registry=metrics,
        )

    # -- discipline --------------------------------------------------------

    def _pick(
        self,
        queued: List[Tuple[float, int, ServiceJob]],
        running: Dict[str, ServiceJob],
    ) -> Tuple[float, int, ServiceJob]:
        """Choose the next queue entry to consider (head-of-line)."""
        if self.discipline == "fifo":
            return min(queued, key=lambda entry: (entry[0], entry[1]))
        # fair / wfair: tenant with the smallest normalised running-slot
        # share goes first; ties break by tenant name for determinism.
        usage: Dict[str, float] = {}
        for job in running.values():
            usage[job.tenant] = usage.get(job.tenant, 0.0) + job.slots
        best: Optional[Tuple[float, str]] = None
        for _arrival, _seq, job in queued:
            weight = job.tenant_weight if self.discipline == "wfair" else 1.0
            share = usage.get(job.tenant, 0.0) / weight
            key = (share, job.tenant)
            if best is None or key < best:
                best = key
        assert best is not None
        tenant = best[1]
        return min(
            (entry for entry in queued if entry[2].tenant == tenant),
            key=lambda entry: (entry[0], entry[1]),
        )


def jobs_from_arrivals(
    arrivals: Sequence["JobArrival"],
    runtimes: Dict[str, float],
) -> List[ServiceJob]:
    """Bind expanded arrivals to oracle runtimes, keyed by ``job_id``."""
    jobs: List[ServiceJob] = []
    for arrival in arrivals:
        if arrival.job_id not in runtimes:
            raise KeyError(f"no runtime for job {arrival.job_id}")
        jobs.append(
            ServiceJob(
                job_id=arrival.job_id,
                tenant=arrival.tenant,
                workload=arrival.template.label,
                arrival=arrival.time,
                slots=arrival.slots,
                runtime=runtimes[arrival.job_id],
                tenant_weight=arrival.tenant_weight,
            )
        )
    return jobs
