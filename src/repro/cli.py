"""Command-line interface: run workloads and comparisons without writing code.

Examples::

    python -m repro run terasort --policy dynamic --scale 0.25
    python -m repro run terasort --policy dynamic --events out.jsonl
    python -m repro run terasort --faults examples/faults/node-loss.json
    python -m repro faults generate node-loss --at 60 --out plan.json
    python -m repro compare pagerank --scale 0.5 --parallel 2
    python -m repro sweep terasort --device ssd --trace sweep.json
    python -m repro sweep terasort --scale 0.1 --parallel 0   # one per core
    python -m repro bench --smoke --check benchmarks/perf/baseline.json
    python -m repro history out.jsonl
    python -m repro list

Every run subcommand accepts ``--events PATH`` (Spark-style JSONL event log,
replayable with ``repro history``) and ``--trace PATH`` (Chrome ``trace_event``
JSON, loadable in Perfetto / ``chrome://tracing``).  Subcommands that launch
several runs (``sweep``, ``compare``) write one file per run with a suffix
before the extension (``sweep.t8.json``, ``out.dynamic.jsonl``).  ``--json``
switches the report from tables to a machine-readable JSON document.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.atomicio import atomic_write_json
from repro.faults.plan import (
    CANNED_CHAOS,
    CANNED_PLANS,
    FaultPlan,
    FaultPlanError,
)
from repro.harness.fork import ForkBarrierNotReached, ForkUnavailableError
from repro.harness.parallel import (
    QuarantinedConfigError,
    RunConfig,
    SweepInterrupted,
    map_runs,
    map_runs_durable,
    resolve_parallel,
)
from repro.harness.report import render_table
from repro.harness.runner import (
    derive_bestfit,
    finish_trace,
    run_workload,
    static_sweep,
)
from repro.observability.chrome import ChromeTraceSink
from repro.observability.history import load_events, reconstruct
from repro.observability.sinks import JsonLinesSink
from repro.observability.tracer import Tracer
from repro.simulation.kernel import CORE_NAMES, CoreUnavailableError, resolve_core
from repro.workloads.arrivals import (
    CANNED_PLANS as CANNED_ARRIVALS,
    ArrivalPlan,
    ArrivalPlanError,
)
from repro.workloads.catalog import WORKLOADS, workload_names

POLICY_CHOICES = ("default", "dynamic", "static", "fixed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Self-adaptive Executors for Big Data "
            "Processing' (Middleware 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload under one policy")
    _common_args(run)
    run.add_argument("--policy", choices=POLICY_CHOICES, default="default")
    run.add_argument("--threads", type=int, default=8,
                     help="thread count for static/fixed policies")
    run.add_argument("--validate", action="store_true",
                     help="check engine invariants continuously during the "
                          "run (exit 1 on any violation)")
    _fork_arg(run)

    compare = sub.add_parser(
        "compare", help="default vs static BestFit vs dynamic (Fig. 8)"
    )
    _common_args(compare)
    _parallel_arg(compare)
    _fork_arg(compare)

    sweep = sub.add_parser(
        "sweep", help="static solution at each thread count (Fig. 2/4/10)"
    )
    _common_args(sweep)
    _parallel_arg(sweep)
    _fork_arg(sweep)
    sweep.add_argument("--journal", metavar="PATH", default=None,
                       help="journal each finished point to PATH "
                            "(crash-safe; see --resume)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip points already journaled under --journal")
    sweep.add_argument("--run-timeout", type=float, default=None,
                       metavar="SECS",
                       help="watchdog: kill and retry a point that runs "
                            "longer than SECS wall-clock seconds")
    sweep.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="attempts per point before quarantine "
                            "(default 3; needs --journal to persist)")
    sweep.add_argument("--stop-after", type=int, default=None, metavar="N",
                       help="stop (exit 3) after N newly computed points; "
                            "for testing crash/resume behaviour")

    bench = sub.add_parser(
        "bench", help="kernel/e2e/sweep performance suite (see PERFORMANCE.md)"
    )
    bench.add_argument("--out", metavar="PATH", default="BENCH_kernel.json",
                       help="where to write the results document")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny inputs and single repeats (CI mode)")
    bench.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="workers for the sweep benchmark (0 = all cores)")
    bench.add_argument("--only", metavar="NAME", action="append", default=None,
                       help="run only the named benchmark (repeatable)")
    bench.add_argument("--check", metavar="BASELINE.json", default=None,
                       help="fail on >25%% regression vs a baseline document")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed fractional regression for --check")
    bench.add_argument("--json", action="store_true",
                       help="print the results document as JSON to stdout "
                            "(--check output moves to stderr)")
    _core_arg(bench)

    faults = sub.add_parser(
        "faults", help="fault-plan utilities (see FAULTS.md)"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    generate = faults_sub.add_parser(
        "generate", help="write a canned fault plan as JSON"
    )
    generate.add_argument("kind", choices=sorted(CANNED_PLANS))
    generate.add_argument("--out", metavar="PATH", default=None,
                          help="output path (default: stdout)")
    generate.add_argument("--at", type=float, default=None,
                          help="fault time in simulated seconds")
    generate.add_argument("--node", type=int, default=None,
                          help="target node id")
    generate.add_argument("--executor", type=int, default=None,
                          help="target executor id (executor-loss)")
    generate.add_argument("--duration", type=float, default=None,
                          help="episode length (disk-degrade / stragglers)")
    generate.add_argument("--factor", type=float, default=None,
                          help="speed multiplier during the episode")
    generate.add_argument("--probability", type=float, default=None,
                          help="per-attempt crash probability (task-crashes)")
    generate.add_argument("--max-crashes", type=int, default=None,
                          help="total crash budget (task-crashes)")
    generate.add_argument("--plan-seed", type=int, default=0,
                          help="seed for the plan's pseudo-random decisions")
    generate.add_argument("--no-speculation", action="store_true",
                          help="stragglers: do not enable speculation")
    show = faults_sub.add_parser(
        "show", help="validate a fault-plan file and summarise it"
    )
    show.add_argument("plan", help="fault plan JSON (see FAULTS.md)")

    chaos = sub.add_parser(
        "chaos",
        help="cluster-scope chaos plans for 'repro serve --faults' "
             "(see FAULTS.md, 'Cluster failure model')",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    cgen = chaos_sub.add_parser(
        "generate", help="write a canned repro.faults/2 chaos plan as JSON"
    )
    cgen.add_argument("kind", choices=sorted(CANNED_CHAOS))
    cgen.add_argument("--out", metavar="PATH", default=None,
                      help="output path (default: stdout)")
    cgen.add_argument("--node", type=int, default=None,
                      help="target node id (node-churn / slot-flaps / "
                           "overload)")
    cgen.add_argument("--at", type=float, default=None,
                      help="first episode start in simulated seconds")
    cgen.add_argument("--duration", type=float, default=None,
                      help="episode length in simulated seconds")
    cgen.add_argument("--count", type=int, default=None,
                      help="number of episodes (node-churn / slot-flaps)")
    cgen.add_argument("--every", type=float, default=None,
                      help="episode period in simulated seconds")
    cgen.add_argument("--factor", type=float, default=None,
                      help="arrival-rate multiplier (surge / overload)")
    cgen.add_argument("--tenant", default=None,
                      help="target tenant ('*' matches all; poison-tenant / "
                           "surge)")
    cgen.add_argument("--probability", type=float, default=None,
                      help="per-attempt poison probability (poison-tenant)")
    cgen.add_argument("--max-poisoned", type=int, default=None,
                      help="total poison budget (poison-tenant)")
    cgen.add_argument("--plan-seed", type=int, default=0,
                      help="seed for backoff/cool-down/surge draws")
    cgen.add_argument("--retries", type=int, default=None,
                      help="override the per-job retry budget")
    cgen.add_argument("--deadline", type=float, default=None,
                      help="override the per-job deadline (seconds after "
                           "arrival)")
    cgen.add_argument("--max-queue", type=int, default=None,
                      help="override the admission queue-length limit")
    cshow = chaos_sub.add_parser(
        "show", help="validate a chaos plan and summarise its cluster scope"
    )
    cshow.add_argument("plan", help="fault plan JSON (repro.faults/2)")

    history = sub.add_parser(
        "history", help="reconstruct a finished run from its event log"
    )
    history.add_argument("eventlog", help="JSONL event log from --events")
    history.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of tables")

    profile = sub.add_parser(
        "profile",
        help="resource demand profile from an event log (offline) -- "
             "identical to what --profile produces live",
    )
    profile.add_argument("eventlog", help="JSONL event log from --events")
    profile.add_argument("--out", metavar="PATH", default=None,
                         help="write the demand-profile JSON to PATH")
    profile.add_argument("--trace", metavar="PATH", default=None,
                         help="write Chrome counter tracks (Perfetto) to PATH")
    profile.add_argument("--interval", type=float, default=1.0,
                         metavar="SECS",
                         help="sampling grid in simulated seconds "
                              "(default 1.0; must match the live run's "
                              "--profile-interval for identical output)")
    profile.add_argument("--json", action="store_true",
                         help="print the demand profile as JSON to stdout")

    validate = sub.add_parser(
        "validate",
        help="replay an event log through the engine invariant checkers",
    )
    validate.add_argument("eventlog", help="JSONL event log from --events")
    validate.add_argument("--max-failures", type=int, default=4,
                          metavar="N",
                          help="spark.task.maxFailures for the retry-budget "
                               "check (default 4)")
    validate.add_argument("--strict", action="store_true",
                          help="hold the log to fault-free invariants even "
                               "if it contains fault events")
    validate.add_argument("--json", action="store_true",
                          help="emit the report as JSON instead of text")

    whatif = sub.add_parser(
        "whatif",
        help="fork one run at t=T and compare alternative futures "
             "(copy-on-write; see PERFORMANCE.md)",
    )
    whatif.add_argument("workload", choices=sorted(WORKLOADS))
    whatif.add_argument("--at", type=float, required=True, metavar="SECS",
                        help="fork point in simulated seconds")
    whatif.add_argument("--alt", action="append", default=None,
                        metavar="SPEC",
                        help="an alternative future to try; repeatable. "
                             "SPECs: continue | pool=N | "
                             "policy=dynamic|default|fixed:N|static:N | "
                             "conf:KEY=VALUE | faults=PLAN.json | "
                             "reseed[=KEY] "
                             "(a 'continue' baseline is added if missing)")
    whatif.add_argument("--policy", choices=POLICY_CHOICES, default="default",
                        help="base policy for the shared warm-up prefix")
    whatif.add_argument("--threads", type=int, default=8,
                        help="thread count for static/fixed base policies")
    whatif.add_argument("--scale", type=float, default=1.0)
    whatif.add_argument("--nodes", type=int, default=4)
    whatif.add_argument("--cores", type=_positive_int, default=32)
    whatif.add_argument("--device", choices=("hdd", "ssd"), default="hdd")
    whatif.add_argument("--seed", type=int, default=42)
    whatif.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="base fault plan for the shared prefix")
    whatif.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="forked children to run at once (0 = one per "
                             "core)")
    whatif.add_argument("--no-fork", action="store_true",
                        help="sequential re-simulation instead of forking "
                             "(identical results, no shared warm-up)")
    whatif.add_argument("--out", metavar="PATH", default=None,
                        help="write the report JSON to PATH")
    whatif.add_argument("--json", action="store_true",
                        help="print the report as JSON instead of a table")
    _core_arg(whatif)

    serve = sub.add_parser(
        "serve",
        help="multi-tenant cluster service: arrival plan in, "
             "repro.service/1 SLO report out (see SERVICE.md)",
    )
    serve.add_argument("--plan", metavar="PLAN.json", required=True,
                       help="repro.arrivals/1 plan (see 'repro arrivals')")
    serve.add_argument("--scheduler", choices=("fifo", "fair", "wfair"),
                       default="fifo",
                       help="cluster queue discipline (default fifo)")
    serve.add_argument("--nodes", type=int, default=4,
                       help="total executor slots shared by all tenants")
    serve.add_argument("--cores", type=_positive_int, default=32,
                       help="virtual cores per node for the inner runs")
    serve.add_argument("--device", choices=("hdd", "ssd"), default="hdd")
    serve.add_argument("--seed", type=int, default=None,
                       help="override the plan's arrival seed")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission control: reject arrivals once N jobs "
                            "queue (default: admit everything)")
    serve.add_argument("--max-wait", type=float, default=None, metavar="SECS",
                       help="admission control: shed arrivals when the "
                            "estimated queue wait exceeds SECS")
    serve.add_argument("--faults", metavar="PLAN.json", default=None,
                       help="inject this fault plan; engine-scope faults go "
                            "into every inner run, a repro.faults/2 cluster "
                            "section drives the service layer (node churn, "
                            "surges, overload protection)")
    serve.add_argument("--validate", action="store_true",
                       help="attach the cluster invariant monitor (job "
                            "conservation, grant legality, breaker "
                            "legality); violations exit 1")
    serve.add_argument("--events", metavar="PATH", default=None,
                       help="per-job JSONL event logs (out.j0007.jsonl; a "
                            "single-job plan writes PATH exactly)")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="per-job Chrome trace_event JSON for Perfetto")
    serve.add_argument("--profile", metavar="PATH", default=None,
                       help="per-job demand-profile JSON (see 'repro profile')")
    serve.add_argument("--profile-interval", type=float, default=1.0,
                       metavar="SECS",
                       help="profiler sampling grid in simulated seconds")
    _parallel_arg(serve)
    serve.add_argument("--out", metavar="PATH", default=None,
                       help="write the repro.service/1 report JSON to PATH")
    serve.add_argument("--json", action="store_true",
                       help="print the report as JSON instead of tables")
    _core_arg(serve)

    arrivals = sub.add_parser(
        "arrivals", help="arrival-plan utilities (see SERVICE.md)"
    )
    arrivals_sub = arrivals.add_subparsers(dest="arrivals_command",
                                           required=True)
    agen = arrivals_sub.add_parser(
        "generate", help="write a canned arrival plan as JSON"
    )
    agen.add_argument("kind", choices=sorted(CANNED_ARRIVALS))
    agen.add_argument("--out", metavar="PATH", default=None,
                      help="output path (default: stdout)")
    agen.add_argument("--tenants", type=int, default=None,
                      help="number of identical tenants (poisson)")
    agen.add_argument("--rate", type=float, default=None,
                      help="per-tenant arrivals per simulated second (poisson)")
    agen.add_argument("--horizon", type=float, default=None,
                      help="arrival window end in simulated seconds (poisson)")
    agen.add_argument("--workload", action="append", default=None,
                      choices=sorted(WORKLOADS), metavar="NAME",
                      help="job-mix workload; repeatable (poisson default: "
                           "terasort wordcount; single default: terasort)")
    agen.add_argument("--scale", type=float, default=None,
                      help="input-size multiplier for every job")
    agen.add_argument("--slots", type=int, default=None,
                      help="nodes granted to each job")
    agen.add_argument("--plan-seed", type=int, default=0,
                      help="seed for the plan's arrival draws")
    agen.add_argument("--job-seed", type=int, default=42,
                      help="cluster seed for the inner engine runs")
    ashow = arrivals_sub.add_parser(
        "show", help="validate an arrival-plan file and summarise it"
    )
    ashow.add_argument("plan", help="arrival plan JSON (see SERVICE.md)")

    sub.add_parser("list", help="list available workloads")
    return parser


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0,
                        help="input-size multiplier (ratios are invariant)")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--cores", type=_positive_int, default=32,
                        help="virtual cores per node (the default pool size)")
    parser.add_argument("--device", choices=("hdd", "ssd"), default="hdd")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject faults from a plan file (see FAULTS.md)")
    parser.add_argument("--events", metavar="PATH", default=None,
                        help="write a JSONL event log (see 'repro history')")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON for Perfetto")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="profile resource demand live and write the "
                             "demand-profile JSON (see 'repro profile')")
    parser.add_argument("--profile-interval", type=float, default=1.0,
                        metavar="SECS",
                        help="profiler sampling grid in simulated seconds "
                             "(default 1.0)")
    parser.add_argument("--json", action="store_true",
                        help="emit results as JSON instead of tables")
    _core_arg(parser)


def _core_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--core", choices=CORE_NAMES, default=None,
        help="simulation kernel backend: 'python' (reference, default) or "
             "'vector' (numpy-vectorized fair-share engine; byte-identical "
             "results, exits 2 if numpy is unavailable)")


def _parallel_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan independent runs out over N worker processes "
             "(0 = one per core); results are deterministic either way")


def _fork_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fork", action="store_true",
        help="run on the copy-on-write fork engine: simulate the setup "
             "prefix once, continue each point in a forked child "
             "(byte-identical results; falls back to sequential "
             "re-simulation where os.fork is unavailable)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _policy_spec(args):
    if args.policy == "static":
        return ("static", args.threads)
    if args.policy == "fixed":
        return ("fixed", args.threads)
    return args.policy


def _run_kwargs(args):
    kwargs = dict(
        num_nodes=args.nodes,
        cores=args.cores,
        device=args.device,
        seed=args.seed,
        workload_kwargs={"scale": args.scale},
    )
    core = _core_choice(args)
    if core is not None:
        kwargs["core"] = core
    if getattr(args, "faults", None):
        try:
            kwargs["fault_plan"] = FaultPlan.load(args.faults)
        except FileNotFoundError:
            raise FaultPlanError(f"no such file: {args.faults}") from None
    return kwargs


def _core_choice(args) -> Optional[str]:
    """The validated --core selection, failing fast (exit 2) up front
    rather than deep inside a sweep's first worker."""
    core = getattr(args, "core", None)
    if core is not None:
        resolve_core(core)
    return core


def _thread_counts(cores: int) -> tuple:
    """The sweep's ladder: cores, cores/2, ... down to 2 (paper Fig. 2)."""
    if cores < 1:
        raise ValueError(f"cores must be positive, got {cores}")
    counts = []
    threads = cores
    while threads >= 2:
        counts.append(threads)
        threads //= 2
    return tuple(counts) if counts else (cores,)


def _suffix_path(path: str, suffix: str) -> str:
    """Insert ``suffix`` before the extension: out.jsonl -> out.t8.jsonl."""
    root, ext = os.path.splitext(path)
    return f"{root}.{suffix}{ext}" if ext else f"{path}.{suffix}"


def _build_tracer(args, suffix: Optional[str] = None) -> Optional[Tracer]:
    """A tracer for one run, or None when no output was requested."""
    sinks = []
    if args.events:
        path = args.events if suffix is None else _suffix_path(args.events, suffix)
        sinks.append(JsonLinesSink(path))
    if args.trace:
        path = args.trace if suffix is None else _suffix_path(args.trace, suffix)
        sinks.append(ChromeTraceSink(path))
    if getattr(args, "profile", None):
        from repro.observability.profiler import ProfilerSink

        path = (args.profile if suffix is None
                else _suffix_path(args.profile, suffix))
        sinks.append(ProfilerSink(interval=args.profile_interval, out=path))
    if not sinks:
        return None
    return Tracer(sinks=sinks)


def cmd_list(_args) -> int:
    rows = []
    for name in workload_names():
        cls = WORKLOADS[name]
        rows.append(
            (
                name,
                cls.category,
                f"{cls.input_size / 1024**3:.2f}",
                f"{cls.paper_io_activity / 1024**3:.2f}" if cls.paper_io_activity else "--",
            )
        )
    print(render_table(
        ["workload", "category", "input (GiB)", "paper I/O activity (GiB)"],
        rows,
    ))
    return 0


def cmd_run(args) -> int:
    if args.fork:
        return _cmd_run_forked(args)
    tracer = _build_tracer(args)
    monitor = None
    if args.validate:
        from repro.validation import InvariantMonitor

        monitor = InvariantMonitor(mode="collect")
    run = run_workload(args.workload, policy=_policy_spec(args),
                       tracer=tracer, invariants=monitor, **_run_kwargs(args))
    if tracer is not None:
        finish_trace(run)
    if monitor is not None:
        # stderr, so --json output on stdout stays machine-parseable.
        report = monitor.finish()
        print(f"invariants: {report.summary()}", file=sys.stderr)
        if not report.ok:
            return 1
    if args.json:
        payload = {
            "command": "run",
            "workload": args.workload,
            "policy": args.policy,
            **run.ctx.recorder.summary_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.workload} [{args.policy}] finished in "
          f"{run.runtime:.1f} simulated seconds\n")
    rows = []
    for stage in run.stages:
        sizes = stage.final_pool_sizes()
        rows.append(
            (
                stage.stage_id,
                "I/O" if stage.is_io_marked else "shuffle",
                stage.num_tasks,
                f"{stage.duration:.1f}",
                " ".join(str(sizes[e]) for e in sorted(sizes)),
            )
        )
    print(render_table(
        ["stage", "kind", "tasks", "duration (s)", "threads/executor"], rows
    ))
    return 0


def _cmd_run_forked(args) -> int:
    """``repro run --fork``: setup in the parent, the run in a forked child.

    Mostly a determinism probe for the fork engine (CI diffs the child's
    event log against a from-scratch run), since a single run has no
    warm-up to share.  Results and output files are byte-identical to a
    plain ``repro run``.
    """
    from repro.harness.fork import fork_map_runs

    if args.validate:
        raise ValueError("--validate requires an in-process run; "
                         "drop --fork")
    kwargs = _run_kwargs(args)
    fault_plan = kwargs.pop("fault_plan", None)
    workload_kwargs = kwargs.pop("workload_kwargs", {})
    config = RunConfig(
        workload=args.workload,
        policy=_policy_spec(args),
        key=args.workload,
        workload_kwargs=workload_kwargs,
        cluster_kwargs=kwargs,
        fault_plan_doc=fault_plan.to_dict() if fault_plan else None,
        events_path=args.events,
        trace_path=args.trace,
        profile_path=args.profile,
        profile_interval=args.profile_interval,
    )
    run = fork_map_runs([config])[0]
    if args.json:
        payload = {
            "command": "run",
            "workload": args.workload,
            "policy": args.policy,
            **run.recorder.summary_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{args.workload} [{args.policy}] finished in "
          f"{run.runtime:.1f} simulated seconds\n")
    rows = []
    for stage in run.stages:
        sizes = stage.final_pool_sizes()
        rows.append(
            (
                stage.stage_id,
                "I/O" if stage.is_io_marked else "shuffle",
                stage.num_tasks,
                f"{stage.duration:.1f}",
                " ".join(str(sizes[e]) for e in sorted(sizes)),
            )
        )
    print(render_table(
        ["stage", "kind", "tasks", "duration (s)", "threads/executor"], rows
    ))
    return 0


def _run_sweep_durable(args, thread_counts) -> dict:
    """A journaled (crash-safe, resumable) sweep; see ``map_runs_durable``."""
    from repro.harness.journal import SweepJournal

    kwargs = _run_kwargs(args)
    fault_plan = kwargs.pop("fault_plan", None)
    workload_kwargs = kwargs.pop("workload_kwargs", {})
    configs = [
        RunConfig(
            workload=args.workload,
            policy=("static", threads),
            key=threads,
            workload_kwargs=workload_kwargs,
            cluster_kwargs=kwargs,
            fault_plan_doc=fault_plan.to_dict() if fault_plan else None,
            events_path=(
                _suffix_path(args.events, f"t{threads}")
                if args.events else None
            ),
            trace_path=(
                _suffix_path(args.trace, f"t{threads}")
                if args.trace else None
            ),
            profile_path=(
                _suffix_path(args.profile, f"t{threads}")
                if args.profile else None
            ),
            profile_interval=args.profile_interval,
        )
        for threads in thread_counts
    ]
    journal = SweepJournal(args.journal) if args.journal else None
    summaries = map_runs_durable(
        configs,
        parallel=resolve_parallel(args.parallel),
        journal=journal,
        resume=args.resume,
        timeout=args.run_timeout,
        max_attempts=args.max_attempts,
        stop_after=args.stop_after,
    )
    return {summary.key: summary for summary in summaries
            if summary is not None}


def _run_sweep(args, thread_counts) -> dict:
    """Dispatch a static sweep sequentially, over workers, or forked."""
    fork = getattr(args, "fork", False)
    if (getattr(args, "journal", None) or getattr(args, "resume", False)
            or getattr(args, "run_timeout", None) is not None
            or getattr(args, "stop_after", None) is not None):
        if fork:
            raise ValueError(
                "--fork does not combine with the durable-sweep options "
                "(--journal/--resume/--run-timeout/--stop-after); forked "
                "children are not journaled"
            )
        return _run_sweep_durable(args, thread_counts)
    parallel = resolve_parallel(args.parallel)
    if parallel > 1 or fork:
        return static_sweep(
            args.workload, thread_counts=thread_counts, parallel=parallel,
            fork=fork,
            events_path_factory=(
                (lambda t: _suffix_path(args.events, f"t{t}"))
                if args.events else None
            ),
            trace_path_factory=(
                (lambda t: _suffix_path(args.trace, f"t{t}"))
                if args.trace else None
            ),
            profile_path_factory=(
                (lambda t: _suffix_path(args.profile, f"t{t}"))
                if args.profile else None
            ),
            profile_interval=args.profile_interval,
            **_run_kwargs(args),
        )
    tracer_factory = None
    if args.events or args.trace or args.profile:
        tracer_factory = lambda threads: _build_tracer(args, f"t{threads}")
    return static_sweep(args.workload, thread_counts=thread_counts,
                        tracer_factory=tracer_factory, **_run_kwargs(args))


def cmd_sweep(args) -> int:
    thread_counts = _thread_counts(args.cores)
    sweep = _run_sweep(args, thread_counts)
    sizes = derive_bestfit(sweep, default_threads=max(sweep))
    if args.json:
        payload = {
            "command": "sweep",
            "workload": args.workload,
            "device": args.device,
            "thread_counts": list(thread_counts),
            "runs": {
                str(threads): {
                    "runtime": run.runtime,
                    "stage_durations": run.stage_durations(),
                }
                for threads, run in sorted(sweep.items())
            },
            "bestfit": {str(ordinal): threads
                        for ordinal, threads in sorted(sizes.items())},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    num_stages = next(iter(sweep.values())).num_stages
    rows = [
        (threads, f"{run.runtime:.1f}",
         *[f"{d:.0f}" for d in run.stage_durations()])
        for threads, run in sorted(sweep.items(), reverse=True)
    ]
    print(render_table(
        ["threads", "total (s)"] + [f"stage {i}" for i in range(num_stages)],
        rows,
        title=f"Static solution sweep: {args.workload} on {args.device}",
    ))
    print(f"\nper-stage BestFit: {sizes}")
    return 0


def cmd_compare(args) -> int:
    thread_counts = _thread_counts(args.cores)
    parallel = resolve_parallel(args.parallel)
    sweep = _run_sweep(args, thread_counts)
    default_threads = max(sweep)
    bestfit_sizes = derive_bestfit(sweep, default_threads=default_threads)
    # The static solution at all cores is stock Spark, so the sweep's top
    # run doubles as the "Default Spark" baseline (no hardcoded 32).
    default = sweep[default_threads]

    if parallel > 1 or args.fork:
        kwargs = _run_kwargs(args)
        fault_plan = kwargs.pop("fault_plan", None)
        workload_kwargs = kwargs.pop("workload_kwargs", {})
        configs = [
            RunConfig(
                workload=args.workload, policy=policy, key=label,
                workload_kwargs=workload_kwargs, cluster_kwargs=kwargs,
                fault_plan_doc=fault_plan.to_dict() if fault_plan else None,
                events_path=(
                    _suffix_path(args.events, label) if args.events else None
                ),
                trace_path=(
                    _suffix_path(args.trace, label) if args.trace else None
                ),
                profile_path=(
                    _suffix_path(args.profile, label) if args.profile else None
                ),
                profile_interval=args.profile_interval,
            )
            for label, policy in (
                ("bestfit", ("bestfit", bestfit_sizes)),
                ("dynamic", "dynamic"),
            )
        ]
        if args.fork:
            from repro.harness.fork import fork_map_runs

            bestfit, dynamic = fork_map_runs(configs, parallel=parallel)
        else:
            bestfit, dynamic = map_runs(configs, parallel)
    else:
        kwargs = _run_kwargs(args)
        tracer = _build_tracer(args, "bestfit")
        bestfit = run_workload(args.workload, policy=("bestfit", bestfit_sizes),
                               tracer=tracer, **kwargs)
        if tracer is not None:
            finish_trace(bestfit)
        tracer = _build_tracer(args, "dynamic")
        dynamic = run_workload(args.workload, policy="dynamic",
                               tracer=tracer, **kwargs)
        if tracer is not None:
            finish_trace(dynamic)

    systems = (("default", default), ("static bestfit", bestfit),
               ("self-adaptive", dynamic))
    if args.json:
        payload = {
            "command": "compare",
            "workload": args.workload,
            "device": args.device,
            "nodes": args.nodes,
            "cores": args.cores,
            "scale": args.scale,
            "systems": {
                label.replace(" ", "_").replace("-", "_"): {
                    "runtime": run.runtime,
                    "reduction_vs_default":
                        None if run is default
                        else 1 - run.runtime / default.runtime,
                }
                for label, run in systems
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for label, run in systems:
        reduction = (
            "--" if run is default
            else f"-{(1 - run.runtime / default.runtime) * 100:.1f}%"
        )
        rows.append((label, f"{run.runtime:.1f}", reduction))
    print(render_table(
        ["system", "runtime (s)", "vs default"],
        rows,
        title=f"{args.workload} on {args.nodes} {args.device.upper()} nodes "
              f"(scale {args.scale})",
    ))
    return 0


def cmd_faults(args) -> int:
    if args.faults_command == "show":
        try:
            plan = FaultPlan.load(args.plan)  # load() validates
        except FileNotFoundError:
            raise FaultPlanError(f"no such file: {args.plan}") from None
        counts = {
            "task_crashes": len(plan.task_crashes),
            "executor_losses": len(plan.executor_losses),
            "node_losses": len(plan.node_losses),
            "disk_degradations": len(plan.disk_degradations),
            "stragglers": len(plan.stragglers),
        }
        print(f"valid fault plan (seed {plan.seed})")
        for name, count in counts.items():
            if count:
                print(f"  {name}: {count}")
        if plan.crash_rate is not None:
            print(f"  crash_rate: p={plan.crash_rate.probability} "
                  f"max={plan.crash_rate.max_crashes}")
        if plan.speculation is not None:
            spec = plan.speculation
            print(f"  speculation: enabled={spec.enabled} "
                  f"multiplier={spec.multiplier} quantile={spec.quantile}")
        if plan.cluster is not None:
            cluster = plan.cluster
            print(f"  cluster: {len(cluster.node_churn)} churn episode(s), "
                  f"{len(cluster.slot_flaps)} slot flap(s), "
                  f"{len(cluster.poison)} poison rule(s), "
                  f"{len(cluster.surges)} surge(s) "
                  f"(see 'repro chaos show')")
        if plan.is_empty:
            print("  (empty: no faults will be injected)")
        return 0

    # generate: map the generic flags onto the chosen builder's kwargs.
    option_names = {
        "node-loss": {"node": "node_id", "at": "at"},
        "executor-loss": {"executor": "executor_id", "at": "at"},
        "task-crashes": {"probability": "probability",
                         "max_crashes": "max_crashes"},
        "disk-degrade": {"node": "node_id", "at": "at",
                         "duration": "duration", "factor": "factor"},
        "stragglers": {"node": "node_id", "at": "at",
                       "duration": "duration", "factor": "factor"},
    }[args.kind]
    kwargs = {"seed": args.plan_seed}
    for flag, param in option_names.items():
        value = getattr(args, flag)
        if value is not None:
            kwargs[param] = value
    if args.kind == "stragglers" and args.no_speculation:
        kwargs["speculation"] = False
    plan = CANNED_PLANS[args.kind](**kwargs)
    if args.out is None:
        print(plan.to_json())
    else:
        plan.save(args.out)
        print(f"wrote {args.kind} plan to {args.out}")
    return 0


def cmd_chaos(args) -> int:
    from dataclasses import replace

    if args.chaos_command == "show":
        try:
            plan = FaultPlan.load(args.plan)  # load() validates
        except FileNotFoundError:
            raise FaultPlanError(f"no such file: {args.plan}") from None
        if plan.cluster is None:
            print(f"valid fault plan (seed {plan.seed}) with no cluster "
                  f"scope; see 'repro faults show'")
            return 0
        cluster = plan.cluster
        print(f"valid chaos plan (seed {plan.seed})")
        for churn in cluster.node_churn:
            until = ("forever" if churn.duration is None
                     else f"for {churn.duration:g}s")
            print(f"  node-churn: node {churn.node_id} down at "
                  f"{churn.down_at:g}s {until}")
        for flap in cluster.slot_flaps:
            print(f"  slot-flap: node {flap.node_id} drained at "
                  f"{flap.at:g}s for {flap.duration:g}s")
        for rule in cluster.poison:
            print(f"  poison: tenant {rule.tenant} p={rule.probability:g} "
                  f"budget {rule.max_poisoned} at {rule.at_fraction:g} of "
                  f"runtime")
        for surge in cluster.surges:
            scope = "all tenants" if surge.tenant is None else surge.tenant
            print(f"  surge: x{surge.factor:g} for {scope} at "
                  f"{surge.at:g}s for {surge.duration:g}s")
        protection = cluster.protection
        guards = [f"retries {protection.max_retries}",
                  f"backoff {protection.backoff_base:g}s "
                  f"cap {protection.backoff_cap:g}s"]
        if protection.deadline is not None:
            guards.append(f"deadline {protection.deadline:g}s")
        if protection.slo_latency is not None:
            guards.append(f"slo {protection.slo_latency:g}s")
        if protection.max_queue is not None:
            guards.append(f"max-queue {protection.max_queue}")
        if protection.max_wait is not None:
            guards.append(f"max-wait {protection.max_wait:g}s")
        if protection.breaker_failures is not None:
            guards.append(f"breaker K={protection.breaker_failures} "
                          f"cool-down {protection.breaker_cooldown:g}s")
        if protection.degrade_queue is not None:
            guards.append(f"degrade at queue {protection.degrade_queue} "
                          f"to x{protection.degrade_factor:g} slots")
        print(f"  protection: {', '.join(guards)}")
        return 0

    # generate: map the generic flags onto the chosen builder's kwargs.
    option_names = {
        "node-churn": {"node": "node_id", "at": "at", "duration": "duration",
                       "count": "count", "every": "every"},
        "slot-flaps": {"node": "node_id", "at": "at", "duration": "duration",
                       "count": "count", "every": "every"},
        "poison-tenant": {"tenant": "tenant", "probability": "probability",
                          "max_poisoned": "max_poisoned"},
        "surge": {"at": "at", "duration": "duration", "factor": "factor",
                  "tenant": "tenant"},
        "overload": {"node": "node_id", "at": "at", "duration": "duration",
                     "factor": "factor"},
    }[args.kind]
    kwargs = {"seed": args.plan_seed}
    for flag, param in option_names.items():
        value = getattr(args, flag)
        if value is not None:
            kwargs[param] = value
    plan = CANNED_CHAOS[args.kind](**kwargs)
    overrides = {}
    if args.retries is not None:
        overrides["max_retries"] = args.retries
    if args.deadline is not None:
        overrides["deadline"] = args.deadline
    if args.max_queue is not None:
        overrides["max_queue"] = args.max_queue
    if overrides:
        protection = replace(plan.cluster.protection, **overrides)
        plan = replace(plan,
                       cluster=replace(plan.cluster, protection=protection))
        plan.validate()
    if args.out is None:
        print(plan.to_json())
    else:
        plan.save(args.out)
        print(f"wrote {args.kind} chaos plan to {args.out}")
    return 0


def cmd_whatif(args) -> int:
    from repro.harness.fork import (
        fork_available,
        parse_alternative,
        run_whatif,
    )

    specs = list(args.alt or [])
    if "continue" not in specs:
        specs.insert(0, "continue")
    alternatives = [parse_alternative(spec) for spec in specs]
    kwargs = _run_kwargs(args)
    fault_plan = kwargs.pop("fault_plan", None)
    workload_kwargs = kwargs.pop("workload_kwargs", {})
    use_fork = None if not args.no_fork else False
    report = run_whatif(
        args.workload,
        at=args.at,
        alternatives=alternatives,
        policy=_policy_spec(args),
        workload_kwargs=workload_kwargs,
        fault_plan=fault_plan,
        parallel=resolve_parallel(args.parallel),
        use_fork=use_fork,
        **kwargs,
    )
    doc = report.to_dict()
    if args.out:
        atomic_write_json(args.out, doc)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    mode = "forked" if report.forked else "sequential re-simulation"
    if not report.forked and not args.no_fork and not fork_available():
        mode += " (os.fork unavailable)"
    print(f"{args.workload}: forked at t={args.at:g}s into "
          f"{len(alternatives)} future(s) [{mode}]\n")
    rows = []
    for row in doc["alternatives"]:
        if row.get("quarantined"):
            rows.append((row["key"], "quarantined", "--"))
            continue
        delta = row.get("vs_continue")
        rows.append(
            (
                row["key"],
                f"{row['runtime']:.1f}",
                "--" if delta is None or row["kind"] == "continue"
                else f"{delta:+.1%}",
            )
        )
    print(render_table(["alternative", "runtime (s)", "vs continue"], rows))
    if args.out:
        print(f"\nwrote report to {args.out}")
    return 0


def cmd_bench(args) -> int:
    from repro.harness.bench import check_regression, run_suite

    core = _core_choice(args)
    # With --json the document itself goes to stdout, so the human-facing
    # table/summary chatter moves to stderr and stays pipeline-safe.
    out = sys.stderr if args.json else sys.stdout
    doc = run_suite(smoke=args.smoke, parallel=args.parallel,
                    only=args.only, core=core)
    atomic_write_json(args.out, doc)
    rows = []
    for name, result in sorted(doc["benchmarks"].items()):
        if result.get("skipped"):
            rows.append((name, f"skipped: {result['skipped']}", "-"))
            continue
        merit = result.get("events_per_sec") or result.get("runs_per_min") or 0
        unit = "events/s" if result.get("events_per_sec") else "runs/min"
        wall = result.get("wall_s", result.get("parallel_wall_s", 0.0))
        rows.append((name, f"{merit:,.0f} {unit}", f"{wall:.3f}"))
    print(render_table(["benchmark", "figure of merit", "wall (s)"], rows,
                       title=f"repro bench [{doc['mode']}] -> {args.out}"),
          file=out)
    active = doc.get("cores", {}).get("active", {})
    print(f"\nkernel core: {active.get('core', 'python')} "
          f"(numpy {doc.get('cores', {}).get('numpy') or 'absent'})",
          file=out)
    for base_name in ("kernel_terasort", "kernel_fairshare"):
        base = doc["benchmarks"].get(base_name)
        vector = doc["benchmarks"].get(f"{base_name}_vector")
        if (base and vector and base.get("events_per_sec")
                and vector.get("events_per_sec")):
            ratio = vector["events_per_sec"] / base["events_per_sec"]
            print(f"{base_name}: vector core {ratio:.2f}x python",
                  file=out)
    sweep = doc["benchmarks"].get("sweep")
    if sweep is not None:
        print(f"sweep: {sweep['points']} points, {sweep['workers']} worker(s), "
              f"speedup {sweep['speedup']:.2f}x over sequential", file=out)
    fork_sweep = doc["benchmarks"].get("fork_sweep")
    if fork_sweep is not None and fork_sweep.get("forked_wall_s"):
        print(f"fork sweep: {fork_sweep['points']} futures forked at "
              f"t={fork_sweep['fork_at_s']:.0f}s, speedup "
              f"{fork_sweep['speedup']:.2f}x over sequential re-simulation",
              file=out)
    overhead = doc["benchmarks"].get("profiler_overhead")
    if overhead is not None:
        print(f"profiler overhead: {overhead['overhead_frac']:+.1%} wall "
              f"time vs untraced (scale {overhead['scale']})", file=out)
    status = 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regression(doc, baseline, tolerance=args.tolerance)
        if failures:
            # Standard perf-gate retry: a real regression reproduces on a
            # fresh measurement, a scheduler-noise spike does not.  Only
            # the failing benchmark(s) are re-measured -- re-running the
            # whole suite would give every *passing* benchmark a fresh
            # chance to flake and cost minutes on a one-benchmark blip.
            failing = sorted({f.split(":", 1)[0] for f in failures})
            print(f"\nbelow baseline on first pass, re-measuring "
                  f"{', '.join(failing)}: {'; '.join(failures)}",
                  file=sys.stderr)
            retry = run_suite(smoke=args.smoke, parallel=args.parallel,
                              only=failing, core=core)
            doc["benchmarks"].update(retry["benchmarks"])
            atomic_write_json(args.out, doc)
            failures = check_regression(doc, baseline,
                                        tolerance=args.tolerance)
        if failures:
            print(f"\nPERF REGRESSION vs {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"\nno regression vs {args.check} "
                  f"(tolerance {args.tolerance:.0%})", file=out)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    return status


def cmd_history(args) -> int:
    try:
        events = load_events(args.eventlog, allow_truncated=True)
    except FileNotFoundError:
        print(f"cannot read event log: no such file: {args.eventlog}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read event log: {exc}", file=sys.stderr)
        return 1
    report = reconstruct(events)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    app = report.application
    if app:
        print(f"application: {app.get('num_nodes', '?')} nodes x "
              f"{app.get('cores_per_node', '?')} cores on "
              f"{app.get('device', '?')}")
    print(f"total runtime: {report.total_runtime:.1f} simulated seconds "
          f"({len(events)} events)\n")
    rows = []
    for stage in report.stages:
        sizes = stage.final_pool_sizes
        rows.append(
            (
                stage.stage_id,
                stage.name,
                "I/O" if stage.is_io_marked else "shuffle",
                f"{stage.tasks_seen}/{stage.num_tasks}",
                f"{stage.duration:.1f}",
                " ".join(str(sizes[e]) for e in sorted(sizes)) or "--",
            )
        )
    print(render_table(
        ["stage", "name", "kind", "tasks", "duration (s)",
         "final threads/executor"],
        rows,
    ))
    if report.pool_decisions:
        print(f"\npool-size decisions ({len(report.pool_decisions)}):")
        rows = [
            (f"{d.time:.1f}", d.executor_id, d.stage_id, d.pool_size, d.reason)
            for d in report.pool_decisions
        ]
        print(render_table(
            ["time (s)", "executor", "stage", "size", "reason"], rows
        ))
    if report.intervals:
        print(f"\nMAPE-K intervals ({len(report.intervals)}):")
        rows = [
            (f"{i.start_time:.1f}", f"{i.end_time:.1f}", i.executor_id,
             i.stage_id, i.threads,
             "inf" if i.zeta == float("inf") else f"{i.zeta:.3g}", i.decision)
            for i in report.intervals
        ]
        print(render_table(
            ["start", "end", "executor", "stage", "threads", "zeta",
             "decision"],
            rows,
        ))
    if report.metrics:
        print(f"\nmetrics snapshot: {len(report.metrics)} series "
              f"(use --json for values)")
    if report.open_spans:
        detail = ", ".join(f"{cat}: {count}"
                           for cat, count in sorted(report.open_spans.items()))
        print(f"\nwarning: {sum(report.open_spans.values())} span(s) never "
              f"ended ({detail}) -- the run likely crashed or the log is "
              f"truncated", file=sys.stderr)
    return 0


def _format_rate(value: float) -> str:
    """Human bytes/sec (or plain count) for the profile report tables."""
    for threshold, unit in ((1024 ** 3, "GiB/s"), (1024 ** 2, "MiB/s"),
                            (1024, "KiB/s")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {unit}"
    return f"{value:.2f}"


def cmd_profile(args) -> int:
    from repro.observability.profiler import profile_events

    try:
        events = load_events(args.eventlog, allow_truncated=True)
    except FileNotFoundError:
        print(f"cannot read event log: no such file: {args.eventlog}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read event log: {exc}", file=sys.stderr)
        return 1
    sink = profile_events(events, interval=args.interval,
                          out=args.out, trace_out=args.trace)
    doc = sink.demand_profile()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    app = doc["application"]
    if app:
        print(f"application: {app.get('num_nodes', '?')} nodes x "
              f"{app.get('cores_per_node', '?')} cores on "
              f"{app.get('device', '?')}")
    print(f"demand profile ({len(events)} events, "
          f"{args.interval:g}s sampling grid)\n")
    rows = []
    for stage in doc["stages"]:
        resources = stage["resources"]

        def cell(key):
            entry = resources.get(key)
            if entry is None:
                return "--"
            return (f"{_format_rate(entry['peak'])} / "
                    f"{_format_rate(entry['mean'])}")

        rows.append(
            (
                stage["stage_id"],
                stage["name"],
                f"{stage['duration']:.1f}",
                cell("cpu_util"),
                cell("disk_read_bps"),
                cell("disk_write_bps"),
                cell("nic_out_bps"),
            )
        )
    print(render_table(
        ["stage", "name", "duration (s)", "cpu peak/mean",
         "disk read peak/mean", "disk write peak/mean", "nic out peak/mean"],
        rows,
    ))
    distributions = doc.get("distributions", {})
    if distributions:
        rows = [
            (name, dist["count"], f"{dist['mean']:.3f}",
             f"{dist['p50']:.3f}", f"{dist['p90']:.3f}",
             f"{dist['p99']:.3f}", f"{dist['max']:.3f}")
            for name, dist in sorted(distributions.items())
        ]
        print("\ndistributions (seconds):")
        print(render_table(
            ["metric", "count", "mean", "p50", "p90", "p99", "max"], rows
        ))
    executors = doc.get("executors", [])
    if executors:
        rows = [
            (ex["executor_id"], ex["tasks"], ex["crashed_tasks"],
             f"{ex['io_bytes'] / 1024 ** 2:.0f}",
             f"{ex['io_wait_seconds']:.1f}",
             f"{ex['peak_active_tasks']:.0f}",
             _format_rate(ex["peak_io_bps"]))
            for ex in executors
        ]
        print("\nexecutors:")
        print(render_table(
            ["executor", "tasks", "crashed", "I/O (MiB)", "I/O wait (s)",
             "peak active", "peak I/O"],
            rows,
        ))
    if args.out:
        print(f"\nwrote demand profile to {args.out}")
    if args.trace:
        print(f"wrote counter tracks to {args.trace}")
    return 0


def cmd_validate(args) -> int:
    from repro.validation import validate_events, validate_service_report

    # A repro.service/* report is one JSON document, not an event log;
    # sniff it first and route it to the cluster-level checkers.
    try:
        with open(args.eventlog, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        print(f"error: no such event log: {args.eventlog}", file=sys.stderr)
        return 2
    except (OSError, ValueError):
        doc = None  # JSONL (or garbage): fall through to the event path
    if (isinstance(doc, dict)
            and str(doc.get("schema", "")).startswith("repro.service/")):
        report = validate_service_report(doc)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
        return 0 if report.ok else 1

    try:
        events = load_events(args.eventlog)
    except FileNotFoundError:
        print(f"error: no such event log: {args.eventlog}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        # Unreadable file or not a repro.trace/1 event log.
        print(f"error: cannot replay {args.eventlog}: {exc}", file=sys.stderr)
        return 2
    report = validate_events(
        events,
        max_failures=args.max_failures,
        strict=True if args.strict else None,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from repro.cluster.scheduler import max_queue_admission, max_wait_admission
    from repro.harness.service import run_service, validate_report

    try:
        plan = ArrivalPlan.load(args.plan)
    except FileNotFoundError:
        raise ArrivalPlanError(f"no such file: {args.plan}") from None
    fault_plan_doc = None
    if args.faults:
        try:
            fault_plan_doc = FaultPlan.load(args.faults).to_dict()
        except FileNotFoundError:
            raise FaultPlanError(f"no such file: {args.faults}") from None
    hooks = []
    if args.max_queue is not None:
        hooks.append(max_queue_admission(args.max_queue))
    if args.max_wait is not None:
        hooks.append(max_wait_admission(args.max_wait))
    if len(hooks) > 1:
        admission = lambda job, state: all(hook(job, state)  # noqa: E731
                                           for hook in hooks)
    else:
        admission = hooks[0] if hooks else None
    monitor = None
    if args.validate:
        from repro.validation import ClusterInvariantMonitor

        monitor = ClusterInvariantMonitor(mode="collect")
    report = run_service(
        plan,
        total_nodes=args.nodes,
        discipline=args.scheduler,
        cores=args.cores,
        device=args.device,
        seed=args.seed,
        fault_plan_doc=fault_plan_doc,
        parallel=resolve_parallel(args.parallel),
        events_path=args.events,
        trace_path=args.trace,
        profile_path=args.profile,
        profile_interval=args.profile_interval,
        admission=admission,
        core=_core_choice(args),
        monitor=monitor,
    )
    doc = report.to_dict()
    validate_report(doc)
    if args.out:
        report.save(args.out)
    violations = 0
    if monitor is not None and not monitor.report.ok:
        violations = len(monitor.report.violations)
        for violation in monitor.report.violations:
            print(f"invariant violation: {violation.render()}",
                  file=sys.stderr)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 1 if violations else 0
    totals = doc["totals"]
    print(f"serve: {totals['submitted']} job(s) from {len(doc['tenants'])} "
          f"tenant(s) on {doc['cluster']['nodes']} slots "
          f"[{doc['scheduler']}] "
          f"({totals['distinct_engine_runs']} distinct engine run(s))")
    print(f"makespan {doc['makespan_s']:.1f} s | goodput "
          f"{doc['goodput_jobs_per_s'] * 60:.2f} jobs/min | utilization "
          f"{doc['utilization']:.0%} | fairness {doc['fairness_index']:.3f}")
    latency = doc["latency"]["job_latency"]
    delay = doc["latency"]["queue_delay"]
    print(f"job latency p50/p99 {latency['p50']:.1f}/{latency['p99']:.1f} s "
          f"| queue delay p50/p99 {delay['p50']:.1f}/{delay['p99']:.1f} s")
    if totals["rejected"] or totals["preemptions"]:
        print(f"rejected {totals['rejected']} | preemptions "
              f"{totals['preemptions']} | wasted "
              f"{doc['wasted_slot_seconds']:.1f} slot-seconds")
    resilience = doc.get("resilience")
    if resilience:
        shed_total = sum(resilience["shed"].values())
        print(f"resilience: retries {resilience['retries']} | shed "
              f"{shed_total} | aborted {resilience['aborted']} | slo "
              f"violations {resilience['slo_violations']} | fault waste "
              f"{resilience['wasted_fault_slot_seconds']:.1f} slot-seconds")
        episodes = resilience["mttr"]["episodes"]
        if episodes:
            worst = max(episode["mttr_s"] for episode in episodes)
            print(f"node loss: {len(episodes)} recovered episode(s) | "
                  f"worst mttr {worst:.1f} s | node downtime "
                  f"{resilience['node_downtime_s']:.1f} s")
        availability = " ".join(
            f"{tenant}={value:.0%}"
            for tenant, value in sorted(resilience["availability"].items())
        )
        print(f"availability: {availability}")
    print()
    rows = [
        (
            tenant["name"],
            f"{tenant['weight']:g}",
            tenant["slots_per_job"],
            tenant["submitted"],
            tenant["completed"],
            tenant["rejected"],
            f"{tenant['job_latency']['p50']:.1f}",
            f"{tenant['job_latency']['p99']:.1f}",
            f"{tenant['queue_delay']['p99']:.1f}",
            f"{tenant['slot_seconds']:.0f}",
        )
        for tenant in doc["tenants"]
    ]
    print(render_table(
        ["tenant", "weight", "slots", "jobs", "done", "rej",
         "p50 lat (s)", "p99 lat (s)", "p99 queue (s)", "slot-s"],
        rows,
    ))
    if args.out:
        print(f"\nwrote report to {args.out}")
    return 1 if violations else 0


def cmd_arrivals(args) -> int:
    if args.arrivals_command == "show":
        try:
            plan = ArrivalPlan.load(args.plan)  # load() validates
        except FileNotFoundError:
            raise ArrivalPlanError(f"no such file: {args.plan}") from None
        arrivals = plan.generate()
        horizon = "--" if plan.horizon is None else f"{plan.horizon:g}s"
        print(f"valid arrival plan (seed {plan.seed}, horizon {horizon}): "
              f"{len(arrivals)} job(s) from {len(plan.tenants)} tenant(s)")
        for tenant in plan.tenants:
            count = sum(1 for a in arrivals if a.tenant == tenant.name)
            kind = tenant.process[0]
            if kind == "poisson":
                detail = f"poisson rate {tenant.process[1]:g}/s"
            else:
                detail = f"trace ({len(tenant.process[1])} time(s))"
            mix = ", ".join(template.label for template in tenant.mix)
            print(f"  {tenant.name}: {count} job(s), {detail}, weight "
                  f"{tenant.weight:g}, {tenant.slots} slot(s)/job, "
                  f"mix [{mix}]")
        return 0

    # generate: map the generic flags onto the chosen builder's kwargs.
    kwargs = {"seed": args.plan_seed, "job_seed": args.job_seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if args.slots is not None:
        kwargs["slots"] = args.slots
    if args.kind == "poisson":
        if args.tenants is not None:
            kwargs["tenants"] = args.tenants
        if args.rate is not None:
            kwargs["rate"] = args.rate
        if args.horizon is not None:
            kwargs["horizon"] = args.horizon
        if args.workload:
            kwargs["workloads"] = tuple(args.workload)
    else:  # single
        if args.workload:
            kwargs["workload"] = args.workload[0]
    plan = CANNED_ARRIVALS[args.kind](**kwargs)
    if args.out is None:
        print(plan.to_json())
    else:
        plan.save(args.out)
        print(f"wrote {args.kind} plan to {args.out}")
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
    "faults": cmd_faults,
    "chaos": cmd_chaos,
    "bench": cmd_bench,
    "history": cmd_history,
    "profile": cmd_profile,
    "validate": cmd_validate,
    "whatif": cmd_whatif,
    "serve": cmd_serve,
    "arrivals": cmd_arrivals,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except BrokenPipeError:
        # Reader went away (e.g. | head); exit quietly like other CLIs.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except SweepInterrupted as exc:
        print(f"sweep interrupted: {exc}", file=sys.stderr)
        return 3
    except QuarantinedConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ForkBarrierNotReached, ForkUnavailableError) as exc:
        # Barrier past the end of the run, fork on an unsupported platform.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FaultPlanError as exc:
        # Malformed or unknown-schema fault plan: a usage error, not a crash.
        print(f"error: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    except ArrivalPlanError as exc:
        # Malformed or unknown-schema arrival plan: same contract as faults.
        print(f"error: invalid arrival plan: {exc}", file=sys.stderr)
        return 2
    except CoreUnavailableError as exc:
        # Explicitly requested kernel core cannot run here: a usage error.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # Unwritable --events/--trace path, unreadable log, and friends.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        # Malformed event log or bad parameter combination.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
