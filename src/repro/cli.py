"""Command-line interface: run workloads and comparisons without writing code.

Examples::

    python -m repro run terasort --policy dynamic --scale 0.25
    python -m repro compare pagerank --scale 0.5
    python -m repro sweep terasort --device ssd
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.report import render_table
from repro.harness.runner import derive_bestfit, run_workload, static_sweep
from repro.workloads.catalog import WORKLOADS, workload_names

POLICY_CHOICES = ("default", "dynamic", "static", "fixed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Self-adaptive Executors for Big Data "
            "Processing' (Middleware 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload under one policy")
    _common_args(run)
    run.add_argument("--policy", choices=POLICY_CHOICES, default="default")
    run.add_argument("--threads", type=int, default=8,
                     help="thread count for static/fixed policies")

    compare = sub.add_parser(
        "compare", help="default vs static BestFit vs dynamic (Fig. 8)"
    )
    _common_args(compare)

    sweep = sub.add_parser(
        "sweep", help="static solution at each thread count (Fig. 2/4/10)"
    )
    _common_args(sweep)

    sub.add_parser("list", help="list available workloads")
    return parser


def _common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload", choices=sorted(WORKLOADS))
    parser.add_argument("--scale", type=float, default=1.0,
                        help="input-size multiplier (ratios are invariant)")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--device", choices=("hdd", "ssd"), default="hdd")
    parser.add_argument("--seed", type=int, default=42)


def _policy_spec(args):
    if args.policy == "static":
        return ("static", args.threads)
    if args.policy == "fixed":
        return ("fixed", args.threads)
    return args.policy


def _run_kwargs(args):
    return dict(
        num_nodes=args.nodes,
        device=args.device,
        seed=args.seed,
        workload_kwargs={"scale": args.scale},
    )


def cmd_list(_args) -> int:
    rows = []
    for name in workload_names():
        cls = WORKLOADS[name]
        rows.append(
            (
                name,
                cls.category,
                f"{cls.input_size / 1024**3:.2f}",
                f"{cls.paper_io_activity / 1024**3:.2f}" if cls.paper_io_activity else "--",
            )
        )
    print(render_table(
        ["workload", "category", "input (GiB)", "paper I/O activity (GiB)"],
        rows,
    ))
    return 0


def cmd_run(args) -> int:
    run = run_workload(args.workload, policy=_policy_spec(args),
                       **_run_kwargs(args))
    print(f"{args.workload} [{args.policy}] finished in "
          f"{run.runtime:.1f} simulated seconds\n")
    rows = []
    for stage in run.stages:
        sizes = stage.final_pool_sizes()
        rows.append(
            (
                stage.stage_id,
                "I/O" if stage.is_io_marked else "shuffle",
                stage.num_tasks,
                f"{stage.duration:.1f}",
                " ".join(str(sizes[e]) for e in sorted(sizes)),
            )
        )
    print(render_table(
        ["stage", "kind", "tasks", "duration (s)", "threads/executor"], rows
    ))
    return 0


def cmd_sweep(args) -> int:
    sweep = static_sweep(args.workload, **_run_kwargs(args))
    num_stages = next(iter(sweep.values())).num_stages
    rows = [
        (threads, f"{run.runtime:.1f}",
         *[f"{d:.0f}" for d in run.stage_durations()])
        for threads, run in sorted(sweep.items(), reverse=True)
    ]
    print(render_table(
        ["threads", "total (s)"] + [f"stage {i}" for i in range(num_stages)],
        rows,
        title=f"Static solution sweep: {args.workload} on {args.device}",
    ))
    sizes = derive_bestfit(sweep)
    print(f"\nper-stage BestFit: {sizes}")
    return 0


def cmd_compare(args) -> int:
    kwargs = _run_kwargs(args)
    sweep = static_sweep(args.workload, **kwargs)
    bestfit_sizes = derive_bestfit(sweep)
    default = sweep[32]
    bestfit = run_workload(args.workload, policy=("bestfit", bestfit_sizes),
                           **kwargs)
    dynamic = run_workload(args.workload, policy="dynamic", **kwargs)
    rows = []
    for label, run in (("default", default), ("static bestfit", bestfit),
                       ("self-adaptive", dynamic)):
        reduction = (
            "--" if run is default
            else f"-{(1 - run.runtime / default.runtime) * 100:.1f}%"
        )
        rows.append((label, f"{run.runtime:.1f}", reduction))
    print(render_table(
        ["system", "runtime (s)", "vs default"],
        rows,
        title=f"{args.workload} on {args.nodes} {args.device.upper()} nodes "
              f"(scale {args.scale})",
    ))
    return 0


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "sweep": cmd_sweep,
    "compare": cmd_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
