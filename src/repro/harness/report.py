"""Plain-text rendering of experiment results (the "figures" of this repo).

Every CLI subcommand that prints a table goes through :func:`render_table`,
so column alignment and ``--``-for-missing conventions are uniform across
``run``, ``sweep``, ``compare``, ``serve``, and friends.  :func:`write_result`
persists a rendered report atomically next to the machine-readable
documents.  This module is deliberately schema-free: the versioned JSON
artifacts (``repro.trace/1``, ``repro.profile/1``, ``repro.whatif/1``,
``repro.service/1``) are produced by their owning subsystems; what lands
here is already formatted text.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from repro.atomicio import atomic_write_text

RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "results"),
)


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """A fixed-width ASCII table."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, points: Sequence, unit: str = "",
                  width: int = 50) -> str:
    """A labelled series with a text sparkline (for time-series figures)."""
    values = [float(v) for _x, v in points]
    top = max(values) if values else 0.0
    blocks = " .:-=+*#%@"
    chars = []
    for value in values:
        level = 0 if top == 0 else int(round(value / top * (len(blocks) - 1)))
        chars.append(blocks[level])
    summary = (
        f"min={min(values):.3g} max={max(values):.3g} "
        f"mean={sum(values) / len(values):.3g}{unit}"
        if values
        else "empty"
    )
    return f"{name}: |{''.join(chars[:width])}| {summary}"


def write_result(name: str, content: str,
                 directory: Optional[str] = None) -> str:
    """Persist a rendered experiment result under ``results/``."""
    directory = directory or RESULTS_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    atomic_write_text(path, content.rstrip() + "\n")
    return path


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3g}"
    return str(cell)
