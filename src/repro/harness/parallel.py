"""Parallel execution of independent simulation runs.

A sweep or comparison replays dozens of fully independent deterministic
runs; on a multi-core host there is no reason to run them one after the
other.  This module fans runs out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping two properties the harness relies on:

* **Determinism.**  Each run is seeded and self-contained, and results are
  returned in the order their configs were submitted (``Executor.map``
  semantics), so a parallel sweep produces byte-for-byte the same report as
  a sequential one.
* **Picklability.**  A :class:`RunConfig` is plain data (names, numbers,
  dicts) and a :class:`RunSummary` carries the full
  :class:`~repro.engine.metrics.RunRecorder` -- everything the figure
  pipeline reads -- but not the live simulator, whose generator-based
  processes cannot cross a process boundary.

``parallel <= 1`` runs everything in-process (no pool, no pickling), which
is also the fallback for the interactive default.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.metrics import RunRecorder, StageRecord


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalise a ``--parallel`` value: ``0``/``None`` means all cores."""
    if not parallel:
        return os.cpu_count() or 1
    if parallel < 0:
        raise ValueError(f"parallel must be >= 0, got {parallel}")
    return parallel


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every harness pool uses: ``fork``.

    Pinned explicitly rather than trusting the platform default: ``fork``
    workers start in milliseconds from the parent's warm interpreter (no
    re-import, no re-pickle of module state), which keeps parallel-sweep
    startup consistent with the copy-on-write fork engine
    (:mod:`repro.harness.fork`).  On platforms without the ``fork`` start
    method (Windows; macOS deprecations notwithstanding, ``fork`` is still
    registered there) we fall back to ``spawn`` with a warning -- runs stay
    correct, worker startup just costs a fresh interpreter each.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        warnings.warn(
            "multiprocessing 'fork' start method unavailable on this "
            "platform; falling back to 'spawn' (slower worker startup)",
            RuntimeWarning,
            stacklevel=2,
        )
        return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class RunConfig:
    """One independent run, described entirely by picklable data.

    ``key`` is an opaque caller label (e.g. the sweep's thread count) echoed
    back on the matching :class:`RunSummary`.  ``policy`` uses the harness
    spec vocabulary (string or ``(kind, arg)`` tuple); callable specs cannot
    cross a process boundary and are rejected up front.

    The kernel core selection (``--core``) rides in ``cluster_kwargs`` as
    ``{"core": name}`` -- it is part of how the cluster's simulator is
    built, so it crosses worker pools, the fork engine's shared prefix, and
    journal fingerprints with no extra plumbing.  :attr:`core` exposes it.
    """

    workload: str
    policy: Any = "default"
    key: Any = None
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    conf_overrides: Dict[str, Any] = field(default_factory=dict)
    cluster_kwargs: Dict[str, Any] = field(default_factory=dict)
    fault_plan_doc: Optional[Dict[str, Any]] = None
    events_path: Optional[str] = None
    trace_path: Optional[str] = None
    profile_path: Optional[str] = None
    profile_interval: float = 1.0

    def __post_init__(self) -> None:
        if callable(self.policy):
            raise ValueError(
                "callable policy specs cannot be executed in a worker "
                "process; use a string or (kind, arg) spec"
            )

    @property
    def core(self) -> Optional[str]:
        """The kernel core this run builds its simulator with (or None)."""
        return self.cluster_kwargs.get("core")


@dataclass
class RunSummary:
    """The picklable slice of a :class:`~repro.workloads.WorkloadRun`.

    Duck-types the attributes the report/figure pipeline reads (``runtime``,
    ``stages``, ``stage_durations`` ...) so :func:`~repro.harness.runner.
    derive_bestfit` and the CLI renderers accept either type.  ``ctx`` is a
    minimal view exposing ``recorder`` for the monitoring analyses.
    """

    workload: str
    key: Any
    runtime: float
    recorder: RunRecorder
    cluster_io_bytes: float = 0.0
    #: The run's demand-profile document (``repro.profile/1``), present
    #: when the config requested profiling (``profile_path``).
    demand_profile: Optional[Dict[str, Any]] = None

    @property
    def stages(self) -> List[StageRecord]:
        return self.recorder.stages

    @property
    def num_stages(self) -> int:
        return len(self.recorder.stages)

    def stage_durations(self) -> List[float]:
        return [stage.duration for stage in self.recorder.stages]

    @property
    def ctx(self) -> "_RecorderView":
        return _RecorderView(self.recorder)


@dataclass(frozen=True)
class _RecorderView:
    """Stand-in for the bits of SparkContext that survive pickling."""

    recorder: RunRecorder


def build_run_tracer(config: RunConfig):
    """``(tracer, profiler)`` for one config's requested outputs (or Nones).

    Shared by the pool worker entry point below and the fork engine's
    children (:mod:`repro.harness.fork`), so a forked run writes exactly
    the files a pooled run with the same config would.
    """
    from repro.observability.chrome import ChromeTraceSink
    from repro.observability.profiler import ProfilerSink
    from repro.observability.sinks import JsonLinesSink
    from repro.observability.tracer import Tracer

    sinks = []
    if config.events_path:
        sinks.append(JsonLinesSink(config.events_path))
    if config.trace_path:
        sinks.append(ChromeTraceSink(config.trace_path))
    profiler = None
    if config.profile_path:
        profiler = ProfilerSink(interval=config.profile_interval,
                                out=config.profile_path)
        sinks.append(profiler)
    return (Tracer(sinks=sinks) if sinks else None), profiler


def summarize_run(run, key: Any, profiler=None) -> RunSummary:
    """The picklable summary of a finished run (pool and fork paths)."""
    return RunSummary(
        workload=run.workload,
        key=key,
        runtime=run.runtime,
        recorder=run.ctx.recorder,
        cluster_io_bytes=run.cluster_io_bytes,
        demand_profile=(
            profiler.demand_profile() if profiler is not None else None
        ),
    )


def execute_run_config(config: RunConfig) -> RunSummary:
    """Run one config to completion; the pool's worker entry point.

    Imports stay inside the function so a worker only pays for what the
    run actually uses (and so this module stays import-light for the
    parent process).
    """
    from repro.faults.plan import FaultPlan
    from repro.harness.runner import finish_trace, run_workload

    tracer, profiler = build_run_tracer(config)

    fault_plan = None
    if config.fault_plan_doc is not None:
        fault_plan = FaultPlan.from_dict(config.fault_plan_doc)

    run = run_workload(
        config.workload,
        policy=config.policy,
        conf_overrides=dict(config.conf_overrides) or None,
        workload_kwargs=dict(config.workload_kwargs) or None,
        tracer=tracer,
        fault_plan=fault_plan,
        **dict(config.cluster_kwargs),
    )
    if tracer is not None:
        finish_trace(run)
    return summarize_run(run, config.key, profiler)


def map_runs(configs: List[RunConfig], parallel: int = 1) -> List[RunSummary]:
    """Execute every config; results come back in submission order.

    With ``parallel > 1`` the configs are spread over a process pool (capped
    at the number of configs -- idle workers are pure fork overhead); with
    ``parallel <= 1`` they run sequentially in-process, bit-identically to
    the pool path because each run owns a private simulator either way.
    """
    configs = list(configs)
    if parallel <= 1 or len(configs) <= 1:
        return [execute_run_config(config) for config in configs]
    workers = min(parallel, len(configs))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as pool:
        return list(pool.map(execute_run_config, configs))


# -- crash-safe execution ---------------------------------------------------------


def summary_to_doc(summary: RunSummary) -> Dict[str, Any]:
    """Serialise a summary for the sweep journal (JSON-safe keys only)."""
    doc = {
        "workload": summary.workload,
        "key": summary.key,
        "runtime": summary.runtime,
        "cluster_io_bytes": summary.cluster_io_bytes,
        "recorder": summary.recorder.to_dict(),
    }
    if summary.demand_profile is not None:
        doc["demand_profile"] = summary.demand_profile
    return doc


def summary_from_doc(doc: Dict[str, Any]) -> RunSummary:
    """Rebuild a journaled summary; floats round-trip exactly through JSON,
    so aggregates over resumed points match an uninterrupted run bit for
    bit."""
    return RunSummary(
        workload=doc["workload"],
        key=doc["key"],
        runtime=doc["runtime"],
        recorder=RunRecorder.from_dict(doc["recorder"]),
        cluster_io_bytes=doc.get("cluster_io_bytes", 0.0),
        demand_profile=doc.get("demand_profile"),
    )


class SweepInterrupted(RuntimeError):
    """The sweep stopped early (``stop_after``); progress is journaled."""

    def __init__(self, completed: int, total: int) -> None:
        super().__init__(
            f"stopped after {completed} new run(s) of {total} point(s); "
            f"progress is journaled -- rerun with --resume to finish"
        )
        self.completed = completed
        self.total = total


class QuarantinedConfigError(RuntimeError):
    """A config exhausted its retry budget (or was already quarantined)."""

    def __init__(self, config: RunConfig, attempts: int, reason: str) -> None:
        super().__init__(
            f"config key={config.key!r} quarantined after {attempts} "
            f"failed attempt(s): {reason}"
        )
        self.config = config
        self.attempts = attempts
        self.reason = reason


def _durable_worker(index: int, config: RunConfig, queue) -> None:
    """Worker entry point: always report back, success or failure."""
    try:
        summary = execute_run_config(config)
    except BaseException as exc:  # a worker must never die silently
        queue.put((index, False, f"{type(exc).__name__}: {exc}"))
    else:
        queue.put((index, True, summary))


class _Attempt:
    """One config's position in the retry state machine."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.failures = 0
        self.ready_at = 0.0  # wall-clock time the next attempt may start
        self.last_reason = ""


def map_runs_durable(
    configs: List[RunConfig],
    parallel: int = 1,
    journal=None,
    resume: bool = False,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff: float = 0.5,
    stop_after: Optional[int] = None,
    allow_quarantine: bool = False,
) -> List[Optional[RunSummary]]:
    """:func:`map_runs` with a crash-safe journal around every point.

    * Each finished run is journaled atomically before the next one starts,
      so a killed sweep loses at most the points in flight.
    * With ``resume=True``, configs whose fingerprint is already journaled
      are **not** re-run; their summaries are rebuilt from the journal and
      the aggregate output is byte-identical to an uninterrupted run.
    * ``timeout`` arms a per-run watchdog: a worker that exceeds it is
      killed and counted as a failure.
    * Failures (crash or timeout) are retried with bounded exponential
      backoff (``backoff * 2**(failures-1)`` seconds, up to
      ``max_attempts`` attempts); a config that keeps failing is
      quarantined in the journal and raises :class:`QuarantinedConfigError`
      unless ``allow_quarantine`` is set, in which case its slot in the
      result list is ``None``.
    * ``stop_after`` ends the sweep after that many *new* completions by
      raising :class:`SweepInterrupted` (the CI resume smoke test's hook
      for "kill the sweep mid-flight").

    Results come back in config order.  The watchdog needs real worker
    processes, so ``timeout`` requires ``parallel >= 1`` workers even for a
    sequential sweep; without a timeout and with ``parallel <= 1``
    everything runs in-process exactly like :func:`map_runs`.
    """
    from repro.harness.journal import config_fingerprint

    configs = list(configs)
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    fingerprints = [config_fingerprint(config) for config in configs]
    results: List[Optional[RunSummary]] = [None] * len(configs)
    pending: List[int] = []
    for index, fingerprint in enumerate(fingerprints):
        # Explicit None checks: the journal's __len__ counts successful
        # runs, so an empty-but-present journal is falsy.
        journaled = (journal.get_run(fingerprint)
                     if journal is not None else None)
        if resume and journaled is not None:
            results[index] = summary_from_doc(journaled)
            continue
        quarantined = (journal.get_quarantine(fingerprint)
                       if journal is not None else None)
        if resume and quarantined is not None:
            if not allow_quarantine:
                raise QuarantinedConfigError(
                    configs[index], quarantined.get("attempts", 0),
                    quarantined.get("reason", "quarantined"),
                )
            continue
        pending.append(index)

    completed_new = 0

    def _record(index: int, summary: RunSummary) -> None:
        nonlocal completed_new
        results[index] = summary
        if journal is not None:
            journal.record_run(fingerprints[index], summary_to_doc(summary))
        completed_new += 1
        if stop_after is not None and completed_new >= stop_after:
            raise SweepInterrupted(completed_new, len(configs))

    def _quarantine(index: int, attempts: int, reason: str) -> None:
        if journal is not None:
            journal.record_quarantine(fingerprints[index], attempts, reason)
        if not allow_quarantine:
            raise QuarantinedConfigError(configs[index], attempts, reason)

    if timeout is None and parallel <= 1:
        # In-process fast path: same execution as map_runs/sequential
        # sweeps, so resumed aggregates can be compared byte for byte.
        for index in pending:
            failures = 0
            while True:
                try:
                    summary = execute_run_config(configs[index])
                except SweepInterrupted:
                    raise
                except Exception as exc:
                    failures += 1
                    reason = f"{type(exc).__name__}: {exc}"
                    if failures >= max_attempts:
                        _quarantine(index, failures, reason)
                        break
                    time.sleep(min(backoff * (2.0 ** (failures - 1)), 30.0))
                else:
                    _record(index, summary)
                    break
        return results

    _run_worker_pool(
        configs, pending, max(1, parallel), timeout, max_attempts, backoff,
        _record, _quarantine,
    )
    return results


def _run_worker_pool(configs, pending, parallel, timeout, max_attempts,
                     backoff, record, quarantine) -> None:
    """Watchdogged worker-process pool with retry/backoff scheduling."""
    mp = pool_context()
    queue: Any = mp.Queue()
    waiting = deque(_Attempt(index) for index in pending)
    running: Dict[int, tuple] = {}  # index -> (process, deadline, attempt)
    resolved: set = set()

    def _drain() -> List[tuple]:
        messages = []
        while True:
            try:
                messages.append(queue.get_nowait())
            except Exception:
                return messages

    def _handle(messages: List[tuple]) -> None:
        for index, ok, payload in messages:
            entry = running.pop(index, None)
            if entry is None or index in resolved:
                continue  # stale result from a worker we already killed
            process, _deadline, attempt = entry
            process.join()
            if ok:
                resolved.add(index)
                record(index, payload)
            else:
                _failed(attempt, str(payload))

    def _failed(attempt: _Attempt, reason: str) -> None:
        attempt.failures += 1
        attempt.last_reason = reason
        if attempt.failures >= max_attempts:
            resolved.add(attempt.index)
            quarantine(attempt.index, attempt.failures, reason)
            return
        delay = min(backoff * (2.0 ** (attempt.failures - 1)), 30.0)
        attempt.ready_at = time.monotonic() + delay
        waiting.append(attempt)

    try:
        while waiting or running:
            _handle(_drain())
            now = time.monotonic()
            for index, (process, deadline, attempt) in list(running.items()):
                if index in resolved or index not in running:
                    continue
                if deadline is not None and now >= deadline:
                    process.kill()
                    process.join()
                    running.pop(index, None)
                    _failed(attempt, f"timed out after {timeout:.1f}s")
                elif process.exitcode is not None:
                    # Dead without (yet) a result: give the queue's feeder
                    # thread one more chance to deliver before declaring a
                    # crash.
                    _handle(_drain())
                    if index in running and index not in resolved:
                        running.pop(index, None)
                        _failed(
                            attempt,
                            f"worker died with exit code {process.exitcode}",
                        )
            now = time.monotonic()
            launched = False
            for _ in range(len(waiting)):
                if len(running) >= parallel:
                    break
                attempt = waiting.popleft()
                if attempt.ready_at > now:
                    waiting.append(attempt)  # still backing off; rotate
                    continue
                process = mp.Process(
                    target=_durable_worker,
                    args=(attempt.index, configs[attempt.index], queue),
                )
                process.start()
                deadline = now + timeout if timeout is not None else None
                running[attempt.index] = (process, deadline, attempt)
                launched = True
            if (waiting or running) and not launched:
                time.sleep(0.01)
    finally:
        for process, _deadline, _attempt in running.values():
            if process.is_alive():
                process.kill()
            process.join()
