"""Parallel execution of independent simulation runs.

A sweep or comparison replays dozens of fully independent deterministic
runs; on a multi-core host there is no reason to run them one after the
other.  This module fans runs out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while keeping two properties the harness relies on:

* **Determinism.**  Each run is seeded and self-contained, and results are
  returned in the order their configs were submitted (``Executor.map``
  semantics), so a parallel sweep produces byte-for-byte the same report as
  a sequential one.
* **Picklability.**  A :class:`RunConfig` is plain data (names, numbers,
  dicts) and a :class:`RunSummary` carries the full
  :class:`~repro.engine.metrics.RunRecorder` -- everything the figure
  pipeline reads -- but not the live simulator, whose generator-based
  processes cannot cross a process boundary.

``parallel <= 1`` runs everything in-process (no pool, no pickling), which
is also the fallback for the interactive default.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.metrics import RunRecorder, StageRecord


def resolve_parallel(parallel: Optional[int]) -> int:
    """Normalise a ``--parallel`` value: ``0``/``None`` means all cores."""
    if not parallel:
        return os.cpu_count() or 1
    if parallel < 0:
        raise ValueError(f"parallel must be >= 0, got {parallel}")
    return parallel


@dataclass(frozen=True)
class RunConfig:
    """One independent run, described entirely by picklable data.

    ``key`` is an opaque caller label (e.g. the sweep's thread count) echoed
    back on the matching :class:`RunSummary`.  ``policy`` uses the harness
    spec vocabulary (string or ``(kind, arg)`` tuple); callable specs cannot
    cross a process boundary and are rejected up front.
    """

    workload: str
    policy: Any = "default"
    key: Any = None
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    conf_overrides: Dict[str, Any] = field(default_factory=dict)
    cluster_kwargs: Dict[str, Any] = field(default_factory=dict)
    fault_plan_doc: Optional[Dict[str, Any]] = None
    events_path: Optional[str] = None
    trace_path: Optional[str] = None

    def __post_init__(self) -> None:
        if callable(self.policy):
            raise ValueError(
                "callable policy specs cannot be executed in a worker "
                "process; use a string or (kind, arg) spec"
            )


@dataclass
class RunSummary:
    """The picklable slice of a :class:`~repro.workloads.WorkloadRun`.

    Duck-types the attributes the report/figure pipeline reads (``runtime``,
    ``stages``, ``stage_durations`` ...) so :func:`~repro.harness.runner.
    derive_bestfit` and the CLI renderers accept either type.  ``ctx`` is a
    minimal view exposing ``recorder`` for the monitoring analyses.
    """

    workload: str
    key: Any
    runtime: float
    recorder: RunRecorder
    cluster_io_bytes: float = 0.0

    @property
    def stages(self) -> List[StageRecord]:
        return self.recorder.stages

    @property
    def num_stages(self) -> int:
        return len(self.recorder.stages)

    def stage_durations(self) -> List[float]:
        return [stage.duration for stage in self.recorder.stages]

    @property
    def ctx(self) -> "_RecorderView":
        return _RecorderView(self.recorder)


@dataclass(frozen=True)
class _RecorderView:
    """Stand-in for the bits of SparkContext that survive pickling."""

    recorder: RunRecorder


def execute_run_config(config: RunConfig) -> RunSummary:
    """Run one config to completion; the pool's worker entry point.

    Imports stay inside the function so a worker only pays for what the
    run actually uses (and so this module stays import-light for the
    parent process).
    """
    from repro.faults.plan import FaultPlan
    from repro.harness.runner import finish_trace, run_workload
    from repro.observability.chrome import ChromeTraceSink
    from repro.observability.sinks import JsonLinesSink
    from repro.observability.tracer import Tracer

    sinks = []
    if config.events_path:
        sinks.append(JsonLinesSink(config.events_path))
    if config.trace_path:
        sinks.append(ChromeTraceSink(config.trace_path))
    tracer = Tracer(sinks=sinks) if sinks else None

    fault_plan = None
    if config.fault_plan_doc is not None:
        fault_plan = FaultPlan.from_dict(config.fault_plan_doc)

    run = run_workload(
        config.workload,
        policy=config.policy,
        conf_overrides=dict(config.conf_overrides) or None,
        workload_kwargs=dict(config.workload_kwargs) or None,
        tracer=tracer,
        fault_plan=fault_plan,
        **dict(config.cluster_kwargs),
    )
    if tracer is not None:
        finish_trace(run)
    return RunSummary(
        workload=run.workload,
        key=config.key,
        runtime=run.runtime,
        recorder=run.ctx.recorder,
        cluster_io_bytes=run.cluster_io_bytes,
    )


def map_runs(configs: List[RunConfig], parallel: int = 1) -> List[RunSummary]:
    """Execute every config; results come back in submission order.

    With ``parallel > 1`` the configs are spread over a process pool (capped
    at the number of configs -- idle workers are pure fork overhead); with
    ``parallel <= 1`` they run sequentially in-process, bit-identically to
    the pool path because each run owns a private simulator either way.
    """
    configs = list(configs)
    if parallel <= 1 or len(configs) <= 1:
        return [execute_run_config(config) for config in configs]
    workers = min(parallel, len(configs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(execute_run_config, configs))
