"""One function per table/figure of the paper's evaluation.

Each function runs the simulation protocol behind that exhibit and returns a
plain data structure; ``benchmarks/`` renders and checks them, and
EXPERIMENTS.md records paper-vs-measured values.  ``scale`` shrinks inputs
proportionally for quick runs (ratios are scale-invariant by construction).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engine.conf import SparkConf
from repro.harness.parallel import RunConfig, map_runs
from repro.harness.runner import (
    build_cluster,
    derive_bestfit,
    run_workload,
    static_sweep,
)
from repro.monitoring import (
    stage_cpu_usage,
    stage_disk_utilization,
    stage_io_wait,
)
from repro.monitoring.iostat import throughput_timeseries
from repro.workloads.base import GiB, MiB
from repro.workloads.catalog import TABLE2_WORKLOADS, get_workload

THREAD_COUNTS = (32, 16, 8, 4, 2)
DEFAULT_THREADS = 32


def table1_parameters() -> Dict[str, int]:
    """Table 1: functional Spark parameters per category."""
    return SparkConf.category_counts()


def table2_io_activity(scale: float = 0.05, parallel: int = 1) -> List[dict]:
    """Table 2: cluster I/O activity relative to input size, 9 workloads.

    Amplification ratios are scale-invariant, so the default runs each
    workload on 5% of the paper's input size.  ``parallel`` fans the nine
    independent runs over worker processes (row order is unaffected).
    """
    configs = [
        RunConfig(workload=name, policy="default", key=name,
                  workload_kwargs={"scale": scale})
        for name in TABLE2_WORKLOADS
    ]
    rows = []
    for run in map_runs(configs, parallel):
        workload = get_workload(run.workload, scale=scale)
        measured = run.cluster_io_bytes
        input_bytes = workload.scaled_input_size
        rows.append(
            {
                "application": run.workload,
                "input_gib": input_bytes / GiB,
                "io_activity_gib": measured / GiB,
                "measured_amplification": measured / input_bytes,
                "paper_amplification": workload.paper_amplification,
            }
        )
    return rows


def fig1_cpu_iowait(scale: float = 1.0) -> Dict[str, List[dict]]:
    """Fig. 1: per-stage CPU usage and I/O wait under default Spark."""
    results: Dict[str, List[dict]] = {}
    for name in ("aggregation", "join", "pagerank", "terasort"):
        run = run_workload(name, policy="default",
                           workload_kwargs={"scale": scale})
        recorder = run.ctx.recorder
        results[name] = [
            {
                "stage": ordinal,
                "duration": stage.duration,
                "cpu_usage": stage_cpu_usage(recorder, stage.stage_id),
                "io_wait": stage_io_wait(recorder, stage.stage_id),
            }
            for ordinal, stage in enumerate(run.stages)
        ]
    return results


def fig2_static_sweep(workload: str, scale: float = 1.0,
                      device: str = "hdd", parallel: int = 1,
                      fork: bool = False) -> dict:
    """Figs. 2/4/10: the static solution at each thread count + BestFit.

    ``parallel`` spreads the sweep's independent points over worker
    processes; the result dict is identical either way (parallel runs hand
    back the full per-run recorder, so Fig. 5's utilisation analysis keeps
    working on ``_sweep_runs``).  ``fork=True`` runs the sweep on the
    copy-on-write fork engine instead: the setup prefix is simulated once
    and each thread count diverges in a forked child (same summaries,
    shared warm-up).
    """
    sweep = static_sweep(workload, THREAD_COUNTS, device=device,
                         workload_kwargs={"scale": scale}, parallel=parallel,
                         fork=fork)
    bestfit_sizes = derive_bestfit(sweep, DEFAULT_THREADS)
    bestfit = run_workload(workload, policy=("bestfit", bestfit_sizes),
                           device=device, workload_kwargs={"scale": scale})
    return {
        "workload": workload,
        "device": device,
        "runs": {
            threads: {
                "total": run.runtime,
                "stages": run.stage_durations(),
            }
            for threads, run in sweep.items()
        },
        "bestfit_sizes": bestfit_sizes,
        "bestfit": {
            "total": bestfit.runtime,
            "stages": bestfit.stage_durations(),
        },
        "_sweep_runs": sweep,
    }


def fig3_node_variability(num_nodes: int = 44, gib: float = 30.0,
                          streams: int = 8, disk_sigma: float = 0.10,
                          seed: int = 42) -> List[dict]:
    """Fig. 3: reading/writing 30 GB on nominally identical DAS-5 nodes.

    Mirrors the paper's probe: each node writes then reads 30 GB through its
    local disk with a fixed stream count; the spread comes from the
    log-normal per-node speed factors.
    """
    cluster = build_cluster(num_nodes=num_nodes, disk_sigma=disk_sigma,
                            seed=seed)
    sim = cluster.sim
    results = []
    for node in cluster.nodes:
        times = {}
        for op in ("write", "read"):
            start = sim.now
            per_stream = gib * GiB / streams
            events = [node.disk.request(per_stream, op) for _s in range(streams)]
            sim.all_of(events)
            sim.run()
            times[op] = sim.now - start
        results.append(
            {
                "node": node.name,
                "write_time": times["write"],
                "read_time": times["read"],
                "disk_speed_factor": node.spec.disk_speed_factor,
            }
        )
    return results


def fig5_disk_utilization(sweeps: Dict[str, dict]) -> List[dict]:
    """Fig. 5: average disk utilisation per thread count in I/O stages.

    ``sweeps`` maps workload name -> the result of :func:`fig2_static_sweep`
    (reusing its runs avoids re-simulating).
    """
    targets = {
        "terasort": (0, 1, 2),
        "pagerank": (0,),
        "aggregation": (0,),
        "join": (0,),
    }
    rows = []
    for workload, stage_ordinals in targets.items():
        if workload not in sweeps:
            continue
        sweep_runs = sweeps[workload]["_sweep_runs"]
        for ordinal in stage_ordinals:
            utilizations = {}
            for threads, run in sweep_runs.items():
                stage = run.stages[ordinal]
                utilizations[threads] = stage_disk_utilization(
                    run.ctx.recorder, stage.stage_id
                )
            rows.append(
                {
                    "workload": workload,
                    "stage": ordinal,
                    "utilization_by_threads": utilizations,
                    "best_threads": max(utilizations, key=utilizations.get),
                }
            )
    return rows


def fig6_dynamic_decisions(scale: float = 1.0) -> List[dict]:
    """Fig. 6: per-executor thread choice in each Terasort stage."""
    run = run_workload("terasort", policy="dynamic",
                       workload_kwargs={"scale": scale})
    rows = []
    for ordinal, stage in enumerate(run.stages):
        rows.append(
            {
                "stage": ordinal,
                "per_executor": stage.final_pool_sizes(),
                "total_threads": stage.total_threads_used(),
            }
        )
    return rows


def fig7_congestion_index(scale: float = 1.0,
                          parallel: int = 1) -> List[dict]:
    """Fig. 7: steady-state ε, µ, and ζ per thread count, Terasort stages.

    The paper plots the effect of each fixed thread count on one executor's
    sensors; we run the fixed policy at each count and read executor 0.
    The per-count runs are independent, so ``parallel`` fans them out.
    """
    configs = [
        RunConfig(workload="terasort", policy=("fixed", threads), key=threads,
                  workload_kwargs={"scale": scale})
        for threads in reversed(THREAD_COUNTS)
    ]
    per_thread_runs = {
        run.key: run for run in map_runs(configs, parallel)
    }
    return fig7_from_runs(per_thread_runs)


def fig7_from_runs(per_thread_runs: dict) -> List[dict]:
    """Fig. 7 analysis over pre-existing fixed-policy Terasort runs."""
    num_stages = len(next(iter(per_thread_runs.values())).stages)
    rows = []
    for ordinal in range(num_stages):
        series = {}
        for threads, run in per_thread_runs.items():
            stage = run.stages[ordinal]
            tasks = [m for m in stage.tasks if m.executor_id == 0]
            epoll = sum(m.io_wait_seconds for m in tasks)
            io_bytes = sum(m.total_io_bytes for m in tasks)
            throughput = io_bytes / stage.duration
            mean_wait = epoll / len(tasks)
            series[threads] = {
                "epoll_wait": epoll,
                "throughput": throughput,
                "congestion": mean_wait / throughput if throughput else 0.0,
            }
        selected = _hill_climb_selection(series)
        rows.append({"stage": ordinal, "series": series, "selected": selected})
    return rows


def _hill_climb_selection(series: dict, tolerance: float = 2.0) -> int:
    """Apply the analyzer's doubling rule to a steady-state ζ series.

    This is what the paper's Fig. 7 "Selected" arrow marks: the thread count
    the dynamic solution lands on -- climb while ζ stays within the
    hysteresis tolerance of the previous interval, roll back one step when
    it blows past it (see :class:`repro.adaptive.mapek.Analyzer`).
    """
    counts = sorted(series)
    current = counts[0]
    for nxt in counts[1:]:
        if series[nxt]["congestion"] > tolerance * series[current]["congestion"]:
            return current
        current = nxt
    return current


def fig8_end_to_end(workload: str, scale: float = 1.0,
                    device: str = "hdd",
                    sweep_result: Optional[dict] = None,
                    fork: bool = False) -> dict:
    """Figs. 8/11: default vs static BestFit vs dynamic.

    ``fork=True`` applies to the embedded static sweep (ignored when a
    pre-computed ``sweep_result`` is supplied).
    """
    if sweep_result is None:
        sweep_result = fig2_static_sweep(workload, scale=scale, device=device,
                                         fork=fork)
    default_run = sweep_result["_sweep_runs"][DEFAULT_THREADS]
    bestfit_sizes = sweep_result["bestfit_sizes"]
    bestfit_run = run_workload(workload, policy=("bestfit", bestfit_sizes),
                               device=device, workload_kwargs={"scale": scale})
    dynamic_run = run_workload(workload, policy="dynamic", device=device,
                               workload_kwargs={"scale": scale})

    def summary(run):
        return {
            "total": run.runtime,
            "stages": run.stage_durations(),
            "threads_per_stage": [s.total_threads_used() for s in run.stages],
        }

    default_total = default_run.runtime
    return {
        "workload": workload,
        "device": device,
        "default": summary(default_run),
        "static_bestfit": summary(bestfit_run),
        "dynamic": summary(dynamic_run),
        "bestfit_sizes": bestfit_sizes,
        "reduction_bestfit": 1.0 - bestfit_run.runtime / default_total,
        "reduction_dynamic": 1.0 - dynamic_run.runtime / default_total,
    }


def fig9_scalability(scale: float = 1.0, parallel: int = 1) -> dict:
    """Fig. 9: Terasort on 4 vs 16 nodes with proportionally scaled input.

    The paper's claim: the default does not scale (runtime grows despite a
    constant resources-to-problem ratio), while static BestFit and the
    dynamic solution hold their runtimes.
    """
    results = {}
    for num_nodes in (4, 16):
        node_scale = scale * (num_nodes / 4.0)
        sweep = static_sweep("terasort", THREAD_COUNTS, num_nodes=num_nodes,
                             workload_kwargs={"scale": node_scale},
                             parallel=parallel)
        bestfit_sizes = derive_bestfit(sweep, DEFAULT_THREADS)
        bestfit_run = run_workload(
            "terasort", policy=("bestfit", bestfit_sizes),
            num_nodes=num_nodes, workload_kwargs={"scale": node_scale})
        dynamic_run = run_workload(
            "terasort", policy="dynamic", num_nodes=num_nodes,
            workload_kwargs={"scale": node_scale})
        results[num_nodes] = {
            "default": sweep[DEFAULT_THREADS].runtime,
            "static_bestfit": bestfit_run.runtime,
            "dynamic": dynamic_run.runtime,
            "bestfit_sizes": bestfit_sizes,
        }
    return results


def fig12_throughput_timeseries(scale: float = 1.0,
                                parallel: int = 1) -> List[dict]:
    """Fig. 12: node-0 disk throughput over time per thread count,
    Terasort stages 0-1, HDD vs SSD.

    The ten (device, threads) runs are independent; ``parallel`` fans them
    out while preserving row order.
    """
    configs = [
        RunConfig(workload="terasort", policy=("fixed", threads),
                  key=(device, threads),
                  workload_kwargs={"scale": scale},
                  cluster_kwargs={"device": device})
        for device in ("hdd", "ssd")
        for threads in THREAD_COUNTS
    ]
    rows = []
    for run in map_runs(configs, parallel):
        device, threads = run.key
        for ordinal in (0, 1):
            stage = run.stages[ordinal]
            series = throughput_timeseries(
                run.ctx.recorder, stage.stage_id, node_id=0
            )
            values = [v for _t, v in series]
            rows.append(
                {
                    "device": device,
                    "threads": threads,
                    "stage": ordinal,
                    "series": series,
                    "mean_throughput": sum(values) / len(values),
                    "peak_throughput": max(values),
                }
            )
    return rows
