"""Copy-on-write snapshot/fork execution engine.

Sweeps and fault experiments re-simulate identical warm-up prefixes dozens
of times: a Fig. 2 sweep rebuilds the same cluster, dataset and DAG once
per point, and every fault-plan ablation replays the fault-free prefix
before the first injection.  This module runs the shared prefix **once**
and then continues each experiment point in an OS-level copy-on-write
child (``os.fork()``), which sidesteps the impossibility of pickling the
kernel's generator-based :class:`~repro.simulation.core.Process` objects:
the child inherits the entire live simulator -- heap, event queue,
suspended generators -- for the cost of a page-table copy.

Three layers:

* **Fork server** (:func:`fork_map`): forks one child per divergence,
  streams a picklable result back over a pipe (length-prefixed pickle),
  and babysits children with the same watchdog/retry/quarantine contract
  as the durable runner (:func:`~repro.harness.parallel.map_runs_durable`):
  a child that crashes or exceeds ``timeout`` is retried with exponential
  backoff and quarantined after ``max_attempts``.
* **Sweep divergences** (:func:`fork_map_runs`): a family of
  :class:`~repro.harness.parallel.RunConfig` points sharing one setup
  prefix (cluster + context + dataset/DAG preparation) and diverging in
  policy and/or fault plan.  Each child attaches its own tracer at the
  barrier; the resulting event log is **byte-identical** to a from-scratch
  run of the same configuration (golden-log tests enforce this).
* **What-if planning** (:func:`run_whatif`): run one workload to a chosen
  simulated time ``t=T`` once, then fork N children that each apply a
  different :class:`Alternative` (pool size, policy, conf override, fault
  plan, RNG reseed) and race the futures.

Where ``os.fork`` is unavailable (:func:`fork_available` is False) every
entry point falls back to sequential re-simulation with identical results.
"""

from __future__ import annotations

import os
import pickle
import selectors
import signal
import struct
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.harness.parallel import (
    QuarantinedConfigError,
    RunConfig,
    RunSummary,
    build_run_tracer,
    execute_run_config,
    resolve_parallel,
    summarize_run,
)

#: Sentinel a ``child_fn`` returns to say "my result is not ready yet --
#: I will keep executing after :func:`fork_map` returns and report through
#: :func:`child_finish`".  This is how the what-if barrier resumes the
#: suspended simulation inside the child.
CONTINUE = object()

#: Marker :func:`fork_map` returns *in a forked child* whose ``child_fn``
#: returned :data:`CONTINUE`; callers using that protocol must detect it
#: and simply keep going (they are the child now).
CHILD_CONTINUES = object()

_HEADER = struct.Struct(">cI")  # status byte + payload length
_CHUNK = 1 << 16


class ForkUnavailableError(RuntimeError):
    """``os.fork`` does not exist on this platform."""


class ForkBarrierNotReached(RuntimeError):
    """The what-if barrier time lies beyond the end of the run."""


@dataclass
class _ChildTicket:
    """Per-process marker: set only in a forked child, holds its pipe."""

    fd: int
    key: Any


#: Non-None exactly while this process is a forked child of the engine.
_ACTIVE_CHILD: Optional[_ChildTicket] = None


def fork_available() -> bool:
    """True when OS-level copy-on-write forking is usable here."""
    return hasattr(os, "fork") and sys.platform not in ("win32", "emscripten")


def in_forked_child() -> bool:
    """True inside a child spawned by :func:`fork_map`."""
    return _ACTIVE_CHILD is not None


def current_child_key() -> Any:
    """The divergence key this forked child is executing."""
    if _ACTIVE_CHILD is None:
        raise RuntimeError("not inside a forked child")
    return _ACTIVE_CHILD.key


# -- pipe protocol -----------------------------------------------------------


def _send(fd: int, status: bytes, payload: Any) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _HEADER.pack(status, len(blob)))
    view = memoryview(blob)
    while view:
        written = os.write(fd, view[:_CHUNK])
        view = view[written:]


def _parse(buf: bytes):
    """``(ok, payload)`` from a child's complete pipe output, or None."""
    if len(buf) < _HEADER.size:
        return None
    status, length = _HEADER.unpack_from(buf)
    if len(buf) < _HEADER.size + length:
        return None
    payload = pickle.loads(buf[_HEADER.size:_HEADER.size + length])
    return status == b"R", payload


def child_finish(result: Any) -> "NoReturn":  # noqa: F821 - py3.11 typing
    """Report this forked child's result and exit the process.

    Used by the :data:`CONTINUE` protocol: the child resumed a suspended
    simulation after :func:`fork_map` returned, and calls this once the
    run completes.  Never returns.
    """
    if _ACTIVE_CHILD is None:
        raise RuntimeError("child_finish() outside a forked child")
    try:
        _send(_ACTIVE_CHILD.fd, b"R", result)
    except BaseException:  # noqa: BLE001 - the child must never unwind out
        os._exit(1)
    os._exit(0)


def child_abort(exc: BaseException) -> "NoReturn":  # noqa: F821
    """Report a failure from a :data:`CONTINUE`-mode child and exit."""
    if _ACTIVE_CHILD is None:
        raise RuntimeError("child_abort() outside a forked child")
    try:
        _send(_ACTIVE_CHILD.fd, b"E", f"{type(exc).__name__}: {exc}")
    except BaseException:  # noqa: BLE001
        pass
    os._exit(1)


# -- fork server -------------------------------------------------------------


@dataclass
class _Child:
    """One live forked child from the parent's point of view."""

    pid: int
    fd: int
    index: int
    item: Any
    deadline: Optional[float]
    buf: bytearray = field(default_factory=bytearray)


class _Pending:
    """One divergence's position in the retry state machine."""

    def __init__(self, index: int, item: Any) -> None:
        self.index = index
        self.item = item
        self.failures = 0
        self.ready_at = 0.0


def _spawn(child_fn: Callable[[Any], Any], item: Any, key: Any):
    """Fork one child.  Parent: ``(pid, read_fd)``.  Child that got
    :data:`CONTINUE` back from ``child_fn``: ``None`` (caller continues
    executing *as the child*); any other child never returns."""
    global _ACTIVE_CHILD
    # Flush inherited stdio buffers so the child cannot replay pending
    # parent output on exit.
    sys.stdout.flush()
    sys.stderr.flush()
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # -- child ------------------------------------------------
        os.close(read_fd)
        _ACTIVE_CHILD = _ChildTicket(write_fd, key)
        try:
            result = child_fn(item)
        except BaseException as exc:  # noqa: BLE001 - report, never unwind
            child_abort(exc)
        if result is CONTINUE:
            return None
        child_finish(result)
    # -- parent --------------------------------------------------------------
    os.close(write_fd)
    os.set_blocking(read_fd, False)
    return pid, read_fd


def fork_map(
    child_fn: Callable[[Any], Any],
    items: Sequence[Any],
    parallel: int = 1,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff: float = 0.5,
    allow_quarantine: bool = False,
):
    """Run ``child_fn(item)`` in one copy-on-write child per item.

    Results come back in item order.  Each ``item`` should carry a ``key``
    attribute for error reporting (``RunConfig`` and :class:`Alternative`
    both do).  At most ``parallel`` children run at once (``0`` = one per
    core).  A child that crashes, dies, or outlives ``timeout`` wall-clock
    seconds is killed and retried with bounded exponential backoff; after
    ``max_attempts`` failures the item is quarantined --
    :class:`~repro.harness.parallel.QuarantinedConfigError` unless
    ``allow_quarantine``, in which case its slot is ``None``.

    In a child whose ``child_fn`` returned :data:`CONTINUE`, this returns
    :data:`CHILD_CONTINUES` instead of a result list -- the caller is now
    the child and must finish via :func:`child_finish`.
    """
    if not fork_available():
        raise ForkUnavailableError("os.fork is unavailable on this platform")
    if in_forked_child():
        raise RuntimeError("nested fork_map inside a forked child")
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    items = list(items)
    parallel = resolve_parallel(parallel)
    results: List[Optional[Any]] = [None] * len(items)
    waiting = [_Pending(index, item) for index, item in enumerate(items)]
    running: Dict[int, _Child] = {}
    sel = selectors.DefaultSelector()

    def _key(item: Any, index: int) -> Any:
        return getattr(item, "key", index)

    def _reap(child: _Child) -> int:
        sel.unregister(child.fd)
        os.close(child.fd)
        _pid, status = os.waitpid(child.pid, 0)
        return os.waitstatus_to_exitcode(status)

    def _failed(pending: _Pending, reason: str) -> None:
        pending.failures += 1
        if pending.failures >= max_attempts:
            if not allow_quarantine:
                _kill_all()
                raise QuarantinedConfigError(
                    pending.item, pending.failures, reason
                )
            return
        delay = min(backoff * (2.0 ** (pending.failures - 1)), 30.0)
        pending.ready_at = time.monotonic() + delay
        waiting.append(pending)

    def _kill_all() -> None:
        for child in running.values():
            try:
                os.kill(child.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            _reap(child)
        running.clear()

    pendings: Dict[int, _Pending] = {p.index: p for p in waiting}

    try:
        while waiting or running:
            now = time.monotonic()
            launched = False
            for _ in range(len(waiting)):
                if len(running) >= parallel:
                    break
                pending = waiting.pop(0)
                if pending.ready_at > now:
                    waiting.append(pending)  # still backing off; rotate
                    continue
                spawned = _spawn(child_fn, pending.item,
                                 _key(pending.item, pending.index))
                if spawned is None:
                    # We are a forked child on the CONTINUE protocol: hand
                    # control back so the caller resumes the simulation.
                    return CHILD_CONTINUES
                pid, fd = spawned
                child = _Child(
                    pid=pid, fd=fd, index=pending.index, item=pending.item,
                    deadline=(now + timeout) if timeout is not None else None,
                )
                sel.register(fd, selectors.EVENT_READ, child)
                running[pid] = child
                launched = True
            for key_event, _mask in sel.select(timeout=0.05):
                child = key_event.data
                if child.pid not in running:
                    continue
                while True:
                    try:
                        data = os.read(child.fd, _CHUNK)
                    except BlockingIOError:
                        break
                    if data:
                        child.buf.extend(data)
                        continue
                    # EOF: the child exited (or crashed); settle it.
                    running.pop(child.pid, None)
                    exitcode = _reap(child)
                    parsed = _parse(bytes(child.buf))
                    if parsed is None:
                        _failed(
                            pendings[child.index],
                            f"child died with exit code {exitcode} before "
                            f"reporting a result",
                        )
                    else:
                        ok, payload = parsed
                        if ok:
                            results[child.index] = payload
                        else:
                            _failed(pendings[child.index], str(payload))
                    break
            if timeout is not None:
                now = time.monotonic()
                for pid, child in list(running.items()):
                    if child.deadline is not None and now >= child.deadline:
                        running.pop(pid, None)
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        _reap(child)
                        _failed(pendings[child.index],
                                f"timed out after {timeout:.1f}s")
            if not launched and not running and waiting:
                # Everything left is backing off; sleep to the nearest
                # ready time instead of spinning.
                delay = min(p.ready_at for p in waiting) - time.monotonic()
                if delay > 0:
                    time.sleep(min(delay, 0.5))
    finally:
        # A CONTINUE-protocol child unwinds through here too (it returned
        # CHILD_CONTINUES inside the try): it must NOT run the parent's
        # cleanup -- the inherited ``running`` map holds its *siblings*,
        # which only the parent may kill and reap.
        if not in_forked_child():
            sel.close()
            if running:
                _kill_all()
    return results


# -- sweep divergences -------------------------------------------------------

#: RunConfig fields every point of one forked family must share: they
#: describe the prefix (built once, pre-fork); the rest (policy, fault
#: plan, output paths) are divergences applied in the children.
_SHARED_PREFIX_FIELDS = (
    "workload", "workload_kwargs", "conf_overrides", "cluster_kwargs",
)


def _execute_divergence(workload, ctx, config: RunConfig) -> RunSummary:
    """Child body for one sweep point: diverge, run, summarise."""
    from repro.faults.plan import FaultPlan
    from repro.harness.runner import finish_trace, make_policy_factory
    from repro.workloads.base import WorkloadRun

    ctx.sim.after_fork(str(config.key))
    ctx.set_policy_factory(make_policy_factory(config.policy))
    if config.fault_plan_doc is not None:
        ctx.install_fault_plan(FaultPlan.from_dict(config.fault_plan_doc))
    tracer, profiler = build_run_tracer(config)
    if tracer is not None:
        ctx.attach_tracer(tracer)
    result = workload.execute(ctx)
    run = WorkloadRun(workload=workload.name, ctx=ctx, result=result)
    if tracer is not None:
        finish_trace(run)
    return summarize_run(run, config.key, profiler)


def fork_map_runs(
    configs: Sequence[RunConfig],
    parallel: int = 1,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    backoff: float = 0.5,
    allow_quarantine: bool = False,
) -> List[Optional[RunSummary]]:
    """:func:`~repro.harness.parallel.map_runs` over one shared prefix.

    All configs must describe the same prefix (workload, inputs, conf,
    cluster) and may diverge in policy, fault plan, and output paths.  The
    prefix -- cluster build, context wiring, dataset/DAG preparation --
    runs once in the parent; each point then continues in a copy-on-write
    child.  Event logs written by children are byte-identical to
    from-scratch runs of the same configuration.

    Falls back to sequential re-simulation (identical results, no
    copy-on-write) where :func:`fork_available` is False.
    """
    configs = list(configs)
    if not configs:
        return []
    if not fork_available():
        return [execute_run_config(config) for config in configs]
    ref = configs[0]
    for config in configs[1:]:
        for field_name in _SHARED_PREFIX_FIELDS:
            if getattr(config, field_name) != getattr(ref, field_name):
                raise ValueError(
                    f"fork sweep points must share the run prefix, but "
                    f"{field_name!r} differs between key={ref.key!r} and "
                    f"key={config.key!r}; use map_runs for heterogeneous "
                    f"configs"
                )
    from repro.harness.runner import build_context
    from repro.workloads import get_workload

    workload = get_workload(ref.workload, **dict(ref.workload_kwargs))
    ctx = build_context(
        policy="default",
        conf_overrides=dict(ref.conf_overrides) or None,
        **dict(ref.cluster_kwargs),
    )
    workload.prepare(ctx)
    results = fork_map(
        lambda config: _execute_divergence(workload, ctx, config),
        configs,
        parallel=parallel,
        timeout=timeout,
        max_attempts=max_attempts,
        backoff=backoff,
        allow_quarantine=allow_quarantine,
    )
    assert results is not CHILD_CONTINUES  # sweep children never CONTINUE
    return results


# -- what-if planning --------------------------------------------------------


class AlternativeError(ValueError):
    """A what-if alternative spec could not be parsed or applied."""


@dataclass(frozen=True)
class Alternative:
    """One divergent future to try from the fork point.

    ``kind`` is one of:

    * ``"continue"`` -- no change: the baseline future.
    * ``"policy"``   -- swap every executor's policy (harness spec
      vocabulary, e.g. ``"dynamic"`` or ``("fixed", 8)``); takes effect
      from the next decision point (stage start / task completion).
    * ``"pool"``     -- force every live executor's pool to ``value``
      threads *now* and pin it there (fixed policy onward).
    * ``"conf"``     -- ``{key: value}`` conf overrides; only keys read
      after the fork point have any effect.
    * ``"faults"``   -- install a fault plan (dict or
      :class:`~repro.faults.plan.FaultPlan`); fault times must lie at or
      after the fork point.
    * ``"reseed"``   -- decorrelate this child's random streams from the
      shared prefix (:meth:`RandomStreams.reseed_for_fork`).
    """

    key: str
    kind: str
    value: Any = None

    def apply(self, ctx) -> None:
        from repro.harness.runner import make_policy_factory

        if self.kind == "continue":
            return
        if self.kind == "policy":
            ctx.set_policy_factory(make_policy_factory(self.value))
            return
        if self.kind == "pool":
            from repro.engine.task import PoolResized

            size = int(self.value)
            ctx.set_policy_factory(make_policy_factory(("fixed", size)))
            for executor in ctx.executors:
                if not executor.alive:
                    continue
                executor._apply_pool_size(size, reason="whatif")
                ctx.scheduler.channel.send(
                    ctx.scheduler.handle_message,
                    PoolResized(executor.executor_id, executor.pool_size),
                )
            return
        if self.kind == "conf":
            for conf_key, conf_value in dict(self.value).items():
                ctx.conf.set(conf_key, conf_value)
            return
        if self.kind == "faults":
            from repro.faults.plan import FaultPlan

            plan = self.value
            if isinstance(plan, dict):
                plan = FaultPlan.from_dict(plan)
            ctx.install_fault_plan(plan)
            return
        if self.kind == "reseed":
            ctx.streams.reseed_for_fork(str(self.value or self.key))
            return
        raise AlternativeError(f"unknown alternative kind: {self.kind!r}")


def parse_alternative(spec: str) -> Alternative:
    """Parse a CLI alternative spec.

    Grammar (one divergence per spec)::

        continue                    the unchanged baseline
        policy=dynamic|default      swap the executor policy
        policy=fixed:N|static:N     ... to a sized policy
        pool=N                      force & pin every pool to N threads
        conf:KEY=VALUE              set one conf key
        faults=PLAN.json            install a fault plan file
        reseed[=KEY]                decorrelate random streams
    """
    text = spec.strip()
    if text == "continue":
        return Alternative(key=text, kind="continue")
    if text == "reseed" or text.startswith("reseed="):
        _, _, seed_key = text.partition("=")
        return Alternative(key=text, kind="reseed", value=seed_key or None)
    if text.startswith("conf:"):
        body = text[len("conf:"):]
        conf_key, sep, conf_value = body.partition("=")
        if not sep or not conf_key:
            raise AlternativeError(
                f"conf alternative must look like conf:KEY=VALUE, got {spec!r}"
            )
        return Alternative(key=text, kind="conf",
                           value={conf_key: conf_value})
    name, sep, value = text.partition("=")
    if not sep:
        raise AlternativeError(f"cannot parse alternative spec: {spec!r}")
    if name == "pool":
        try:
            size = int(value)
        except ValueError:
            raise AlternativeError(
                f"pool alternative needs an integer, got {spec!r}"
            ) from None
        return Alternative(key=text, kind="pool", value=size)
    if name == "policy":
        kind_name, sep2, threads = value.partition(":")
        if sep2:
            try:
                policy = (kind_name, int(threads))
            except ValueError:
                raise AlternativeError(
                    f"policy size must be an integer, got {spec!r}"
                ) from None
        else:
            policy = kind_name
        return Alternative(key=text, kind="policy", value=policy)
    if name == "faults":
        from repro.faults.plan import FaultPlan

        return Alternative(key=text, kind="faults",
                           value=FaultPlan.load(value).to_dict())
    raise AlternativeError(f"cannot parse alternative spec: {spec!r}")


@dataclass
class WhatIfReport:
    """The outcome of one what-if fan-out."""

    workload: str
    at: float
    forked: bool
    alternatives: List[Alternative]
    summaries: List[Optional[RunSummary]]

    @property
    def baseline(self) -> Optional[RunSummary]:
        for alternative, summary in zip(self.alternatives, self.summaries):
            if alternative.kind == "continue":
                return summary
        return None

    def to_dict(self) -> Dict[str, Any]:
        baseline = self.baseline
        rows = []
        for alternative, summary in zip(self.alternatives, self.summaries):
            row: Dict[str, Any] = {
                "key": alternative.key,
                "kind": alternative.kind,
            }
            if summary is None:
                row["quarantined"] = True
            else:
                row["runtime"] = summary.runtime
                row["stage_durations"] = summary.stage_durations()
                if baseline is not None and baseline.runtime > 0:
                    row["vs_continue"] = (
                        1.0 - summary.runtime / baseline.runtime
                    )
            rows.append(row)
        return {
            "schema": "repro.whatif/1",
            "workload": self.workload,
            "at": self.at,
            "forked": self.forked,
            "alternatives": rows,
        }


class _ParentForkDone(Exception):
    """Unwinds the parent's suspended run once every child is collected."""

    def __init__(self, results: List[Optional[RunSummary]]) -> None:
        super().__init__("fork fan-out complete")
        self.results = results


def run_whatif(
    workload: Union[str, Any],
    at: float,
    alternatives: Sequence[Alternative],
    policy: Any = "default",
    conf_overrides: Optional[Dict[str, Any]] = None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    fault_plan=None,
    parallel: int = 1,
    timeout: Optional[float] = None,
    max_attempts: int = 3,
    allow_quarantine: bool = False,
    use_fork: Optional[bool] = None,
    **cluster_kwargs: Any,
) -> WhatIfReport:
    """Fork one run at ``t=at`` and try each alternative future.

    The warm-up prefix -- setup plus the simulation up to ``at`` under the
    base ``policy`` -- runs once; each alternative then continues in a
    copy-on-write child.  ``use_fork=None`` picks forking when the
    platform supports it and otherwise falls back to sequential
    re-simulation (one full run per alternative, applying the divergence
    at the same barrier) with identical results.
    """
    from repro.harness.runner import build_context
    from repro.workloads import Workload, get_workload

    if at < 0:
        raise ValueError(f"fork time must be >= 0, got {at}")
    alternatives = list(alternatives)
    if not alternatives:
        raise ValueError("run_whatif needs at least one alternative")
    if isinstance(workload, str):
        workload = get_workload(workload, **(workload_kwargs or {}))
    elif workload_kwargs:
        raise ValueError("workload_kwargs only apply when passing a name")
    assert isinstance(workload, Workload)
    if use_fork is None:
        use_fork = fork_available()
    if use_fork and not fork_available():
        raise ForkUnavailableError("os.fork is unavailable on this platform")

    def _context():
        return build_context(
            policy=policy,
            conf_overrides=conf_overrides,
            fault_plan=fault_plan,
            **cluster_kwargs,
        )

    if not use_fork:
        summaries: List[Optional[RunSummary]] = []
        for alternative in alternatives:
            ctx = _context()
            ctx.fork_hook_at = at

            def hook(c, alternative=alternative):
                c.sim.after_fork(str(alternative.key))
                alternative.apply(c)

            ctx.fork_hook = hook
            run = workload.run(ctx)
            if ctx.fork_hook is not None:
                raise ForkBarrierNotReached(
                    f"fork time t={at} lies beyond the end of the run "
                    f"(runtime {run.runtime:.1f}s)"
                )
            summaries.append(summarize_run(run, alternative.key))
        return WhatIfReport(workload=workload.name, at=at, forked=False,
                           alternatives=alternatives, summaries=summaries)

    def _diverge(alternative: Alternative):
        # Executed in the child, on the parent's suspended stack: apply
        # the divergence and resume the simulation by returning.
        ctx = _live_ctx[0]
        ctx.sim.after_fork(str(alternative.key))
        alternative.apply(ctx)
        return CONTINUE

    def hook(ctx):
        _live_ctx[0] = ctx
        outcome = fork_map(
            _diverge,
            alternatives,
            parallel=parallel,
            timeout=timeout,
            max_attempts=max_attempts,
            allow_quarantine=allow_quarantine,
        )
        if outcome is CHILD_CONTINUES:
            return  # we are a child now; resume the simulation
        raise _ParentForkDone(outcome)

    _live_ctx: List[Any] = [None]
    ctx = _context()
    ctx.fork_hook_at = at
    ctx.fork_hook = hook
    try:
        run = workload.run(ctx)
    except _ParentForkDone as done:
        return WhatIfReport(workload=workload.name, at=at, forked=True,
                            alternatives=alternatives,
                            summaries=done.results)
    except BaseException as exc:  # noqa: BLE001 - a child must not unwind
        if in_forked_child():
            child_abort(exc)
        raise
    if in_forked_child():
        # A child's continued simulation ran to completion: report the
        # summary over the pipe and exit; the parent assembles the report.
        child_finish(summarize_run(run, current_child_key()))
    raise ForkBarrierNotReached(
        f"fork time t={at} lies beyond the end of the run "
        f"(runtime {run.runtime:.1f}s)"
    )
