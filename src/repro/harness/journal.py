"""Crash-safe sweep journal: completed runs survive a killed harness.

A sweep writes one journal entry per finished point (the full serialised
:class:`~repro.harness.parallel.RunSummary`), so a harness killed halfway
-- OOM, ctrl-C, a flaky node -- can ``--resume`` and recompute only the
missing points.  Every append rewrites the whole file through
write-temp/fsync/rename (:func:`repro.atomicio.atomic_write_text`): the
journal on disk is always a complete, parseable document, never a torn
line.  A truncated trailing line (a crash mid-write on a filesystem
without atomic rename semantics) is tolerated on load and simply dropped.

Resume keys on a **fingerprint** of the full :class:`RunConfig` -- the
workload, policy, seed, conf and fault plan -- so a journal can never
replay a stale result for a config that changed in any way.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.atomicio import atomic_write_text

JOURNAL_SCHEMA = "repro.journal/1"


def config_fingerprint(config) -> str:
    """Content hash of everything that determines a run's result."""
    doc = dataclasses.asdict(config)
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"),
                           default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class JournalError(ValueError):
    """The journal file exists but is not a journal we can trust."""


class SweepJournal:
    """One sweep's durable progress record (JSONL, atomically rewritten)."""

    def __init__(self, path: str) -> None:
        self.path = path
        #: fingerprint -> serialised RunSummary document
        self.runs: Dict[str, Dict[str, Any]] = {}
        #: fingerprint -> quarantine record (attempts, last failure)
        self.quarantined: Dict[str, Dict[str, Any]] = {}
        self._load()

    # -- persistence --------------------------------------------------------------

    def _load(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    break  # torn trailing line from a mid-write crash
                raise JournalError(
                    f"{self.path}:{lineno}: corrupt journal line"
                )
            kind = doc.get("kind")
            if lineno == 1:
                if kind != "meta" or doc.get("schema") != JOURNAL_SCHEMA:
                    raise JournalError(
                        f"{self.path} is not a {JOURNAL_SCHEMA} journal "
                        f"(got {doc.get('schema')!r})"
                    )
                continue
            if kind == "run":
                self.runs[doc["fingerprint"]] = doc["summary"]
            elif kind == "quarantine":
                self.quarantined[doc["fingerprint"]] = doc
            else:
                raise JournalError(
                    f"{self.path}:{lineno}: unknown journal entry kind "
                    f"{kind!r}"
                )

    def _persist(self) -> None:
        lines = [json.dumps({"kind": "meta", "schema": JOURNAL_SCHEMA},
                            sort_keys=True, separators=(",", ":"))]
        for fingerprint, summary in self.runs.items():
            lines.append(json.dumps(
                {"kind": "run", "fingerprint": fingerprint,
                 "summary": summary},
                sort_keys=True, separators=(",", ":"),
            ))
        for doc in self.quarantined.values():
            lines.append(json.dumps(doc, sort_keys=True,
                                    separators=(",", ":")))
        atomic_write_text(self.path, "\n".join(lines) + "\n")

    # -- recording ----------------------------------------------------------------

    def record_run(self, fingerprint: str,
                   summary_doc: Dict[str, Any]) -> None:
        """Journal one finished point; durable once this returns."""
        self.runs[fingerprint] = summary_doc
        self.quarantined.pop(fingerprint, None)
        self._persist()

    def record_quarantine(self, fingerprint: str, attempts: int,
                          reason: str) -> None:
        """Mark a config as repeatedly failing; resume will not retry it."""
        self.quarantined[fingerprint] = {
            "kind": "quarantine",
            "fingerprint": fingerprint,
            "attempts": attempts,
            "reason": reason,
        }
        self._persist()

    # -- queries ------------------------------------------------------------------

    def get_run(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self.runs.get(fingerprint)

    def get_quarantine(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        return self.quarantined.get(fingerprint)

    def __len__(self) -> int:
        return len(self.runs)
