"""Multi-tenant service runs: arrival plan in, ``repro.service/1`` report out.

This is the glue between the three service layers (SERVICE.md): it expands
an :class:`~repro.workloads.arrivals.ArrivalPlan` into concrete job
submissions, obtains each job's service time from the deterministic inner
engine (the *runtime oracle*), feeds the jobs through
:class:`~repro.cluster.scheduler.ClusterScheduler`, and assembles the
versioned ``repro.service/1`` SLO report that ``repro serve`` prints and
saves.

The oracle exploits that jobs stamped from the same template are identical
replicas: it runs the engine once per *distinct* template (via
:func:`repro.harness.parallel.map_runs`, so ``--parallel`` composes) and
shares the runtime across all replicas -- a thousand-job scenario costs a
handful of engine runs.  When per-job outputs are requested (``--events``
/ ``--trace`` / ``--profile``) every job runs individually instead, with
its ``job_id`` suffixed into the path; a single-job plan writes to the
exact requested path, which is how CI ``cmp``s a single-tenant serve event
log against the equivalent ``repro run`` golden.  Reports contain no
wall-clock timestamps: same plan + same seed -> byte-identical report.

A ``repro.faults/2`` plan splits here: its engine-scope faults go into
every inner oracle run unchanged, while the ``cluster`` section (node
churn, slot flaps, poison jobs, surges, protection policy) drives the
outer :class:`~repro.cluster.scheduler.ClusterScheduler`.  Chaos adds a
``resilience`` section to the report (retries, sheds, SLO violations,
per-tenant availability, MTTR, fault-attributable waste); without chaos
the report layout is byte-identical to the pre-chaos format.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.atomicio import atomic_write_json
from repro.cluster.scheduler import (
    AdmissionHook,
    ClusterScheduler,
    PreemptionHook,
    ServiceResult,
    jobs_from_arrivals,
)
from repro.faults.plan import ClusterFaults, FaultPlan
from repro.harness.parallel import RunConfig, map_runs
from repro.observability.metrics import tenant_metric
from repro.workloads.arrivals import ArrivalPlan, JobArrival, JobTemplate

#: Wire-format marker of the SLO report; bump on incompatible change.
REPORT_SCHEMA = "repro.service/1"


def _template_key(template: JobTemplate, slots: int) -> Tuple[Any, ...]:
    """Cache key: everything that can change an inner run's timeline."""
    policy = template.policy
    if isinstance(policy, tuple):
        policy = tuple(policy)
    return (
        template.workload,
        template.scale,
        policy,
        tuple(sorted(template.conf.items())),
        template.seed,
        slots,
    )


def _job_run_config(
    arrival: JobArrival,
    key: Any,
    cores: int,
    device: str,
    fault_plan_doc: Optional[Dict[str, Any]],
    events_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    profile_interval: float = 1.0,
    core: Optional[str] = None,
) -> RunConfig:
    """The inner-engine config for one job; mirrors ``repro run`` exactly."""
    template = arrival.template
    cluster_kwargs = dict(
        num_nodes=arrival.slots,
        cores=cores,
        device=device,
        seed=template.seed,
    )
    if core is not None:
        cluster_kwargs["core"] = core
    return RunConfig(
        workload=template.workload,
        policy=template.policy,
        key=key,
        workload_kwargs={"scale": template.scale},
        conf_overrides=dict(template.conf),
        cluster_kwargs=cluster_kwargs,
        fault_plan_doc=fault_plan_doc,
        events_path=events_path,
        trace_path=trace_path,
        profile_path=profile_path,
        profile_interval=profile_interval,
    )


def _suffix_path(path: str, suffix: str) -> str:
    """out.jsonl -> out.j0007.jsonl (same rule as the CLI's sweep suffixes)."""
    import os

    root, ext = os.path.splitext(path)
    return f"{root}.{suffix}{ext}" if ext else f"{path}.{suffix}"


def compute_runtimes(
    arrivals: List[JobArrival],
    cores: int,
    device: str,
    fault_plan_doc: Optional[Dict[str, Any]] = None,
    parallel: int = 1,
    events_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    profile_interval: float = 1.0,
    core: Optional[str] = None,
) -> Tuple[Dict[str, float], int]:
    """Runtime oracle: ``(job_id -> service time, distinct engine runs)``.

    Without per-job outputs, one engine run per distinct template key is
    shared by all its replicas.  With outputs, every job runs individually
    so each gets its own file (suffix dropped when there is only one job).
    """
    per_job_outputs = bool(events_path or trace_path or profile_path)
    runtimes: Dict[str, float] = {}
    if per_job_outputs:
        single = len(arrivals) == 1

        def out(path: Optional[str], job_id: str) -> Optional[str]:
            if path is None:
                return None
            return path if single else _suffix_path(path, job_id)

        configs = [
            _job_run_config(
                arrival, arrival.job_id, cores, device, fault_plan_doc,
                events_path=out(events_path, arrival.job_id),
                trace_path=out(trace_path, arrival.job_id),
                profile_path=out(profile_path, arrival.job_id),
                profile_interval=profile_interval,
                core=core,
            )
            for arrival in arrivals
        ]
        for summary in map_runs(configs, parallel):
            runtimes[summary.key] = summary.runtime
        return runtimes, len(configs)

    by_key: Dict[Tuple[Any, ...], JobArrival] = {}
    for arrival in arrivals:
        by_key.setdefault(_template_key(arrival.template, arrival.slots),
                          arrival)
    keys = sorted(by_key, key=repr)
    configs = [
        _job_run_config(by_key[key], index, cores, device, fault_plan_doc,
                        core=core)
        for index, key in enumerate(keys)
    ]
    by_index = {
        summary.key: summary.runtime for summary in map_runs(configs, parallel)
    }
    key_runtime = {key: by_index[index] for index, key in enumerate(keys)}
    for arrival in arrivals:
        runtimes[arrival.job_id] = key_runtime[
            _template_key(arrival.template, arrival.slots)
        ]
    return runtimes, len(configs)


@dataclass
class ServiceReport:
    """The assembled SLO report plus the live objects behind it."""

    doc: Dict[str, Any]
    result: ServiceResult

    def to_dict(self) -> Dict[str, Any]:
        return self.doc

    def save(self, path: str) -> None:
        atomic_write_json(path, self.doc, indent=2, sort_keys=True)


def run_service(
    plan: ArrivalPlan,
    total_nodes: int,
    discipline: str = "fifo",
    cores: int = 32,
    device: str = "hdd",
    seed: Optional[int] = None,
    fault_plan_doc: Optional[Dict[str, Any]] = None,
    parallel: int = 1,
    events_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    profile_path: Optional[str] = None,
    profile_interval: float = 1.0,
    admission: Optional[AdmissionHook] = None,
    preemption: Optional[PreemptionHook] = None,
    core: Optional[str] = None,
    monitor: Optional[Any] = None,
) -> ServiceReport:
    """Run one full service scenario and assemble its SLO report.

    ``seed`` (when given) overrides the plan's arrival seed, so one plan
    file can drive many seeded scenarios.  ``fault_plan_doc``'s
    engine-scope faults are injected into *every* inner engine run
    (contention under faults composes); its ``cluster`` section (schema
    ``repro.faults/2``) drives the outer scheduler instead and never
    reaches the oracle, so a cluster-only plan leaves the inner runs --
    and their event logs -- byte-identical to a faultless serve.
    ``core`` selects the kernel backend for every inner engine run; the
    report is byte-identical across backends.  ``monitor`` (a
    :class:`~repro.validation.cluster.ClusterInvariantMonitor`) checks
    cluster invariants live without perturbing the schedule.
    """
    if seed is not None and seed != plan.seed:
        plan = replace(plan, seed=seed)

    chaos: Optional[ClusterFaults] = None
    chaos_seed = 0
    engine_plan_doc = fault_plan_doc
    if fault_plan_doc is not None:
        fault_plan = FaultPlan.from_dict(fault_plan_doc)
        if fault_plan.cluster is not None:
            chaos = fault_plan.cluster
            chaos_seed = fault_plan.seed
            engine_plan_doc = fault_plan.engine_dict()

    arrivals = plan.generate()
    if chaos is not None and chaos.surges:
        from repro.cluster.chaos import expand_surges

        arrivals = expand_surges(plan, arrivals, chaos.surges,
                                 seed=chaos_seed)

    runtimes, distinct_runs = compute_runtimes(
        arrivals,
        cores=cores,
        device=device,
        fault_plan_doc=engine_plan_doc,
        parallel=parallel,
        events_path=events_path,
        trace_path=trace_path,
        profile_path=profile_path,
        profile_interval=profile_interval,
        core=core,
    )

    # Graceful degradation needs the oracle to price the shrunken grant
    # too (runtime at fewer slots); dedup keeps this to a few extra runs.
    degraded_runtimes: Optional[Dict[str, Tuple[int, float]]] = None
    if chaos is not None and chaos.protection.degrade_queue is not None:
        factor = chaos.protection.degrade_factor
        shrunk = [
            replace(arrival, slots=max(1, int(arrival.slots * factor)))
            for arrival in arrivals
            if max(1, int(arrival.slots * factor)) < arrival.slots
        ]
        if shrunk:
            extra, extra_runs = compute_runtimes(
                shrunk, cores=cores, device=device,
                fault_plan_doc=engine_plan_doc, parallel=parallel, core=core,
            )
            distinct_runs += extra_runs
            degraded_runtimes = {
                arrival.job_id: (arrival.slots, extra[arrival.job_id])
                for arrival in shrunk
            }

    scheduler = ClusterScheduler(
        total_slots=total_nodes,
        discipline=discipline,
        admission=admission,
        preemption=preemption,
        chaos=chaos,
        chaos_seed=chaos_seed,
        monitor=monitor,
    )
    result = scheduler.run(
        jobs_from_arrivals(arrivals, runtimes, degraded_runtimes)
    )
    doc = _build_report(plan, result, cores=cores, device=device,
                        distinct_runs=distinct_runs, chaos=chaos)
    return ServiceReport(doc=doc, result=result)


def _build_report(
    plan: ArrivalPlan,
    result: ServiceResult,
    cores: int,
    device: str,
    distinct_runs: int,
    chaos: Optional[ClusterFaults] = None,
) -> Dict[str, Any]:
    registry = result.registry
    weights = {tenant.name: tenant.weight for tenant in plan.tenants}
    tenants = []
    for tenant in plan.tenants:
        jobs = [job for job in result.jobs if job.tenant == tenant.name]
        tenants.append({
            "name": tenant.name,
            "weight": tenant.weight,
            "slots_per_job": tenant.slots,
            "submitted": len(jobs),
            "completed": sum(1 for job in jobs if job.end is not None),
            "rejected": sum(1 for job in jobs if job.rejected),
            "slot_seconds": result.slot_seconds.get(tenant.name, 0.0),
            "job_latency": registry.histogram(
                tenant_metric(tenant.name, "job_latency")).summary(),
            "queue_delay": registry.histogram(
                tenant_metric(tenant.name, "queue_delay")).summary(),
        })
    job_rows = []
    for job in result.jobs:
        row = {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "workload": job.workload,
            "slots": job.slots,
            "arrival": job.arrival,
            "start": job.start,
            "end": job.end,
            "runtime": job.runtime,
            "latency": job.latency,
            "queue_delay": job.queue_delay,
            "preemptions": job.preemptions,
            "rejected": job.rejected,
        }
        if chaos is not None:
            # Chaos-only keys, so chaos-free reports stay byte-identical.
            row.update({
                "retries": job.retries,
                "aborted": job.aborted,
                "abort_reason": job.abort_reason,
                "shed_reason": job.shed_reason,
                "granted": job.granted,
            })
        job_rows.append(row)
    doc = {
        "schema": REPORT_SCHEMA,
        "seed": plan.seed,
        "scheduler": result.discipline,
        "cluster": {
            "nodes": result.total_slots,
            "cores": cores,
            "device": device,
        },
        "totals": {
            "submitted": result.submitted,
            "completed": result.completed,
            "rejected": result.rejected,
            "preemptions": result.preempted,
            "distinct_engine_runs": distinct_runs,
        },
        "makespan_s": result.makespan,
        "goodput_jobs_per_s": result.goodput,
        "utilization": result.utilization,
        "fairness_index": result.fairness_index(weights),
        "wasted_slot_seconds": result.wasted_slot_seconds,
        "latency": {
            "job_latency": registry.histogram("service.job_latency").summary(),
            "queue_delay": registry.histogram("service.queue_delay").summary(),
        },
        "tenants": tenants,
        "jobs": job_rows,
    }
    if chaos is not None:
        availability = {}
        for tenant in plan.tenants:
            jobs = [job for job in result.jobs if job.tenant == tenant.name]
            done = sum(1 for job in jobs if job.end is not None)
            availability[tenant.name] = done / len(jobs) if jobs else 1.0
        doc["resilience"] = {
            "aborted": result.aborted,
            "retries": result.retried,
            "shed": result.shed,
            "slo_violations": result.slo_violations,
            "availability": availability,
            "mttr": {
                "episodes": result.mttr,
                "summary": registry.histogram("service.mttr").summary(),
            },
            "retry_backoff": registry.histogram(
                "service.retry_backoff").summary(),
            "wasted_fault_slot_seconds": result.wasted_fault_slot_seconds,
            "degraded_grants": result.degraded_grants,
            "node_downtime_s": result.node_downtime,
            "breakers": result.breakers,
            "protection": asdict(chaos.protection),
        }
    return doc


def validate_report(doc: Dict[str, Any]) -> None:
    """Cheap structural check of a ``repro.service/1`` document.

    Used by the CI serve job and tests; raises :class:`ValueError` on the
    first problem found.
    """
    if doc.get("schema") != REPORT_SCHEMA:
        raise ValueError(
            f"unsupported schema {doc.get('schema')!r} "
            f"(expected {REPORT_SCHEMA!r})"
        )
    for field in ("seed", "scheduler", "cluster", "totals", "makespan_s",
                  "goodput_jobs_per_s", "utilization", "fairness_index",
                  "latency", "tenants", "jobs"):
        if field not in doc:
            raise ValueError(f"report missing field {field!r}")
    totals = doc["totals"]
    resilience = doc.get("resilience") or {}
    aborted = resilience.get("aborted", 0)
    if totals["submitted"] != totals["completed"] + totals["rejected"] + aborted:
        raise ValueError(
            f"job conservation violated: submitted {totals['submitted']} != "
            f"completed {totals['completed']} + rejected {totals['rejected']}"
            f" + aborted {aborted}"
        )
    if resilience and sum(resilience["shed"].values()) != totals["rejected"]:
        raise ValueError(
            f"shed reasons sum to {sum(resilience['shed'].values())} but "
            f"{totals['rejected']} jobs were rejected"
        )
    if not 0.0 <= doc["fairness_index"] <= 1.0 + 1e-9:
        raise ValueError(f"fairness index out of range: {doc['fairness_index']}")
