"""Building clusters/contexts and running workloads under any policy.

The policy *spec* vocabulary used throughout the harness and benchmarks:

* ``"default"``            -- stock Spark (all virtual cores)
* ``("fixed", n)``         -- every stage at ``n`` threads
* ``("static", n)``        -- the static solution: I/O-marked stages at ``n``
* ``("bestfit", sizes)``   -- per-stage-ordinal thread counts (static BestFit)
* ``"dynamic"``            -- the self-adaptive executor
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.adaptive import AdaptivePolicy, BestFitPolicy, StaticIOPolicy
from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.engine.conf import SparkConf
from repro.engine.context import SparkContext
from repro.engine.policy import DefaultPolicy, ExecutorPolicy, FixedPolicy
from repro.observability.metrics import collect_run_metrics
from repro.observability.tracer import Tracer
from repro.storage.device import HDD_PROFILE, SSD_PROFILE, DeviceProfile
from repro.workloads import Workload, WorkloadRun, get_workload

PolicySpec = Union[str, Tuple[str, Any], Callable[..., ExecutorPolicy]]

DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    "hdd": HDD_PROFILE,
    "ssd": SSD_PROFILE,
}


def make_policy_factory(spec: PolicySpec) -> Callable:
    """Turn a policy spec into a per-executor policy factory."""
    if callable(spec):
        return lambda executor: spec()
    if spec == "default":
        return lambda executor: DefaultPolicy()
    if spec == "dynamic":
        return lambda executor: AdaptivePolicy()
    if isinstance(spec, tuple) and len(spec) == 2:
        kind, arg = spec
        if kind == "fixed":
            return lambda executor: FixedPolicy(int(arg))
        if kind == "static":
            return lambda executor: StaticIOPolicy(int(arg))
        if kind == "bestfit":
            sizes = dict(arg)
            return lambda executor: BestFitPolicy(sizes)
        if kind == "dynamic":
            kwargs = dict(arg)
            return lambda executor: AdaptivePolicy(**kwargs)
    raise ValueError(f"unknown policy spec: {spec!r}")


def build_cluster(
    num_nodes: int = 4,
    device: str = "hdd",
    disk_sigma: float = 0.0,
    cpu_sigma: float = 0.0,
    seed: int = 42,
    cores: int = 32,
    core: Optional[str] = None,
) -> Cluster:
    """A DAS-5-shaped cluster (paper section 6.1 defaults).

    ``core`` selects the simulation kernel backend (``"python"`` /
    ``"vector"``; see :mod:`repro.simulation.kernel`).  It travels inside
    ``cluster_kwargs`` everywhere the harness serializes a run -- through
    :class:`~repro.harness.parallel.RunConfig`, worker pools, and the fork
    engine's shared prefix -- so a sweep replays on the same backend it was
    planned with.
    """
    try:
        profile = DEVICE_PROFILES[device]
    except KeyError:
        raise ValueError(
            f"unknown device {device!r}; expected one of {sorted(DEVICE_PROFILES)}"
        ) from None
    spec = ClusterSpec(
        num_nodes=num_nodes,
        node=NodeSpec(cores=cores, disk_profile=profile),
        disk_sigma=disk_sigma,
        cpu_sigma=cpu_sigma,
        seed=seed,
    )
    return Cluster(spec, core=core)


def build_context(
    policy: PolicySpec = "default",
    cluster: Optional[Cluster] = None,
    conf_overrides: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
    fault_plan=None,
    invariants=None,
    **cluster_kwargs: Any,
) -> SparkContext:
    if cluster is None:
        cluster = build_cluster(**cluster_kwargs)
    elif cluster_kwargs:
        raise ValueError("pass either a cluster or cluster kwargs, not both")
    conf = SparkConf(conf_overrides or {})
    return SparkContext(
        cluster=cluster,
        conf=conf,
        policy_factory=make_policy_factory(policy),
        tracer=tracer,
        fault_plan=fault_plan,
        invariants=invariants,
    )


def run_workload(
    workload: Union[str, Workload],
    policy: PolicySpec = "default",
    conf_overrides: Optional[Dict[str, Any]] = None,
    workload_kwargs: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
    fault_plan=None,
    invariants=None,
    **cluster_kwargs: Any,
) -> WorkloadRun:
    """One fresh context, one workload run.

    A ``tracer`` (if given) is wired through the whole stack; the caller
    keeps ownership and decides when to :meth:`~Tracer.close` it.  A
    ``fault_plan`` (:class:`repro.faults.FaultPlan`) turns the run into a
    chaos experiment; see FAULTS.md.  An ``invariants`` monitor
    (:class:`repro.validation.InvariantMonitor`) checks engine invariants
    continuously; call its :meth:`finish` after the run for the report.
    """
    if isinstance(workload, str):
        workload = get_workload(workload, **(workload_kwargs or {}))
    elif workload_kwargs:
        raise ValueError("workload_kwargs only apply when passing a name")
    ctx = build_context(policy=policy, conf_overrides=conf_overrides,
                        tracer=tracer, fault_plan=fault_plan,
                        invariants=invariants, **cluster_kwargs)
    return workload.run(ctx)


def finish_trace(run: WorkloadRun) -> None:
    """Append the metrics snapshot to a traced run's log and close it."""
    tracer = run.ctx.tracer
    if not tracer.enabled:
        return
    tracer.instant("app", "metrics",
                   snapshot=collect_run_metrics(run.ctx))
    tracer.close()


def run_profiler(run: WorkloadRun):
    """The demand-profiler sink attached to a run's tracer, if any.

    Call after :func:`finish_trace` -- the sink's outputs are written on
    tracer close.  Returns the
    :class:`~repro.observability.profiler.ProfilerSink` or ``None``.
    """
    for sink in run.ctx.tracer.sinks:
        if getattr(sink, "is_profiler", False):
            return sink
    return None


def static_sweep(
    workload: Union[str, Workload],
    thread_counts=(32, 16, 8, 4, 2),
    workload_kwargs: Optional[Dict[str, Any]] = None,
    conf_overrides: Optional[Dict[str, Any]] = None,
    tracer_factory: Optional[Callable[[int], Optional[Tracer]]] = None,
    parallel: int = 1,
    fork: bool = False,
    events_path_factory: Optional[Callable[[int], str]] = None,
    trace_path_factory: Optional[Callable[[int], str]] = None,
    profile_path_factory: Optional[Callable[[int], str]] = None,
    profile_interval: float = 1.0,
    **cluster_kwargs: Any,
) -> Dict[int, Any]:
    """The paper's Fig. 2/4/10 protocol: the static solution at each count.

    The run at the highest count doubles as the paper's "Default Spark"
    baseline, since the static solution at all cores is the default.
    ``tracer_factory(threads)`` may supply a fresh tracer per run; each one
    is finalised (metrics event + close) before the next run starts.

    With ``parallel > 1`` the (independent, seeded) points run in worker
    processes and the mapping's values are picklable
    :class:`~repro.harness.parallel.RunSummary` objects instead of live
    :class:`~repro.workloads.WorkloadRun`\\ s -- same runtimes, same stage
    records, no simulator.  Event/trace outputs then come from
    ``events_path_factory(threads)`` / ``trace_path_factory(threads)``
    (in-process ``tracer_factory`` objects cannot cross the pool boundary).

    With ``fork=True`` the sweep instead runs on the copy-on-write fork
    engine (:func:`repro.harness.fork.fork_map_runs`): the shared prefix
    -- cluster build, context wiring, dataset registration -- is simulated
    once and each thread count continues in a forked child, at most
    ``parallel`` at a time.  Results are the same picklable summaries the
    pool path returns, byte-identical to from-scratch runs.  Falls back to
    sequential re-simulation where ``os.fork`` is unavailable.
    """
    if parallel > 1 or fork:
        from repro.harness.parallel import RunConfig, map_runs

        if tracer_factory is not None:
            raise ValueError(
                "tracer_factory requires sequential execution; use "
                "events_path_factory/trace_path_factory with parallel sweeps"
            )
        if not isinstance(workload, str):
            raise ValueError("parallel sweeps require a workload name")
        fault_plan = cluster_kwargs.pop("fault_plan", None)
        configs = [
            RunConfig(
                workload=workload,
                policy=("static", threads),
                key=threads,
                workload_kwargs=workload_kwargs or {},
                conf_overrides=conf_overrides or {},
                cluster_kwargs=cluster_kwargs,
                fault_plan_doc=fault_plan.to_dict() if fault_plan else None,
                events_path=(
                    events_path_factory(threads) if events_path_factory else None
                ),
                trace_path=(
                    trace_path_factory(threads) if trace_path_factory else None
                ),
                profile_path=(
                    profile_path_factory(threads)
                    if profile_path_factory else None
                ),
                profile_interval=profile_interval,
            )
            for threads in thread_counts
        ]
        if fork:
            from repro.harness.fork import fork_map_runs

            summaries = fork_map_runs(configs, parallel=parallel)
        else:
            summaries = map_runs(configs, parallel)
        return {summary.key: summary for summary in summaries}

    runs: Dict[int, WorkloadRun] = {}
    for threads in thread_counts:
        tracer = tracer_factory(threads) if tracer_factory else None
        runs[threads] = run_workload(
            workload,
            policy=("static", threads),
            conf_overrides=conf_overrides,
            workload_kwargs=workload_kwargs,
            tracer=tracer,
            **cluster_kwargs,
        )
        if tracer is not None:
            finish_trace(runs[threads])
    return runs


def derive_bestfit(sweep: Dict[int, Any],
                   default_threads: int = 32) -> Dict[int, int]:
    """Per-stage best thread counts from a static sweep (paper's BestFit).

    ``sweep`` values may be live :class:`~repro.workloads.WorkloadRun`\\ s or
    the picklable summaries a parallel sweep returns; only ``stages`` and
    per-stage durations are read.

    Only I/O-marked stages are tunable by the static solution; every other
    stage keeps the default (that restriction is exactly why static BestFit
    loses to the dynamic solution on PageRank).
    """
    reference = next(iter(sweep.values()))
    sizes: Dict[int, int] = {}
    for ordinal, stage in enumerate(reference.stages):
        if not stage.is_io_marked:
            sizes[ordinal] = default_threads
            continue
        best_threads = default_threads
        best_duration = float("inf")
        # Deterministic tie-break: iterate in thread order and prefer the
        # smaller pool on equal duration, instead of whichever entry the
        # caller happened to insert into ``sweep`` first.
        for threads, run in sorted(sweep.items()):
            duration = run.stages[ordinal].duration
            if duration < best_duration or (
                duration == best_duration and threads < best_threads
            ):
                best_duration = duration
                best_threads = threads
        sizes[ordinal] = best_threads
    return sizes
