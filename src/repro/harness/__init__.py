"""Experiment harness: per-figure/table experiment runners and reporting.

Every table and figure in the paper's evaluation maps to one function in
:mod:`repro.harness.experiments` (see DESIGN.md section 4); the benchmark
suite under ``benchmarks/`` calls these and renders their results with
:mod:`repro.harness.report`.
"""

from repro.harness.runner import (
    build_cluster,
    build_context,
    make_policy_factory,
    run_workload,
    static_sweep,
    derive_bestfit,
)
from repro.harness.report import render_series, render_table, write_result

__all__ = [
    "build_cluster",
    "build_context",
    "derive_bestfit",
    "make_policy_factory",
    "render_series",
    "render_table",
    "run_workload",
    "static_sweep",
    "write_result",
]
