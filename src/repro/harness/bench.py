"""Performance microbenchmarks: the engine behind ``repro bench``.

Three layers, matching where runtime actually goes:

* **Kernel** -- pure event-loop + fair-share throughput, measured in
  *events per wall-clock second* on (a) a terasort-shaped resource churn
  (many concurrent streams on per-node disks and CPUs, control-plane
  messages over a :class:`~repro.simulation.resources.LatencyChannel`) and
  (b) a raw timeout/process storm.
* **End-to-end** -- wall time of a full scaled-down workload run
  (terasort, pagerank) through every engine layer.
* **Sweep** -- throughput of the multi-run experiment harness, sequential
  vs ``--parallel``.

Every benchmark reports an ``events_per_sec`` (or ``runs_per_min``) figure
of merit -- *higher is better* -- which is what
:func:`check_regression` compares against a committed baseline, so CI can
fail a PR that slows the simulator down.  Wall-clock numbers come from
``time.perf_counter`` and use best-of-N to shave scheduler noise.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simulation.core import Simulator
from repro.simulation.kernel import (
    CORE_NAMES,
    core_available,
    resolve_core,
)
from repro.simulation.kernel import ENV_VAR as CORE_ENV_VAR
from repro.simulation.resources import CpuResource, LatencyChannel
from repro.storage.device import HDD_PROFILE, MiB, StorageDevice

BENCH_SCHEMA = "repro.bench/1"

#: Regression gate used by ``repro bench --check`` and CI.
DEFAULT_TOLERANCE = 0.25


def _timed(fn: Callable[[], int], repeats: int) -> Tuple[int, float]:
    """Run ``fn`` (returning an event count) ``repeats`` times; best wall."""
    best_wall = float("inf")
    events = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - start
        best_wall = min(best_wall, wall)
    return events, best_wall


def _rate_result(events: int, wall: float, **extra: Any) -> Dict[str, Any]:
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        **extra,
    }


def _core_skip(core: str) -> Dict[str, Any]:
    """Placeholder result for a core-pinned benchmark whose backend is
    missing (e.g. the ``*_vector`` entries without numpy).  ``events_per_sec``
    is ``None`` so :func:`check_regression` never gates a skipped entry."""
    return {
        "events": None,
        "wall_s": None,
        "events_per_sec": None,
        "core": core,
        "skipped": f"kernel core {core!r} unavailable (numpy not installed)",
    }


# -- kernel layer ----------------------------------------------------------


def _terasort_kernel_run(num_nodes: int, tasks_per_node: int,
                         waves: int, core: Optional[str] = None) -> int:
    """A terasort-shaped program against the bare kernel.

    Each wave launches one task per virtual thread on every node; a task
    reads three input chunks from its node disk, burns CPU, writes two
    spill chunks, and reports completion over the control channel.  Chunk
    sizes carry the deterministic +/-25% per-task skew real partitioned
    inputs have, so completions spread out in time and every advance
    re-prices a deep fair-share queue -- the event mix of terasort's I/O
    stages at the top of the thread ladder, without the engine layers, so
    it isolates exactly the paths the kernel cores optimise.
    """
    sim = Simulator(core=core)
    nodes = [
        (CpuResource(sim, f"cpu{i}", cores=tasks_per_node),
         StorageDevice(sim, f"disk{i}", HDD_PROFILE))
        for i in range(num_nodes)
    ]
    channel = LatencyChannel(sim, latency=0.001)
    completions: List[int] = []

    def task(index: int, cpu: CpuResource, disk: StorageDevice):
        # Knuth-hash skew: deterministic, evenly spread in [0.75, 1.25).
        scale = 0.75 + 0.5 * ((index * 2654435761 % 1024) / 1024.0)
        for _ in range(3):
            yield disk.request(scale * 32 * MiB, "read")
        yield cpu.submit(scale * 2.0, tag="cpu").event
        for _ in range(2):
            yield disk.request(scale * 24 * MiB, "write")
        channel.send(completions.append, 1)

    def driver():
        index = 0
        for _wave in range(waves):
            procs = []
            for cpu, disk in nodes:
                for _ in range(tasks_per_node):
                    procs.append(
                        sim.process(task(index, cpu, disk), name="task")
                    )
                    index += 1
            yield sim.all_of(procs)

    sim.process(driver(), name="driver")
    sim.run()
    expected = num_nodes * tasks_per_node * waves
    if len(completions) != expected:
        raise RuntimeError(
            f"kernel bench lost tasks: {len(completions)}/{expected}"
        )
    return sim.events_scheduled


def bench_kernel_terasort(smoke: bool = False,
                          core: Optional[str] = None) -> Dict[str, Any]:
    """The headline microbenchmark: kernel events/sec, terasort-shaped."""
    if core is not None and not core_available(core):
        return _core_skip(core)
    # Smoke mode still runs multi-wave programs with best-of-3 walls: a
    # sub-20ms single measurement is a preemption lottery, and the CI gate
    # needs the figure of merit stable to well under the check tolerance.
    # 256 tasks per node matches the top of the repo's thread ladder
    # (cores=256 sweeps), where fair-share queues are deepest.
    tasks_per_node = 64 if smoke else 256
    waves = 2
    events, wall = _timed(
        lambda: _terasort_kernel_run(num_nodes=4,
                                     tasks_per_node=tasks_per_node,
                                     waves=waves, core=core),
        repeats=3,
    )
    extra = {"core": core} if core is not None else {}
    return _rate_result(events, wall, nodes=4, tasks_per_node=tasks_per_node,
                        waves=waves, **extra)


def _fairshare_churn_run(jobs: int, waves: int,
                         core: Optional[str] = None) -> int:
    """Deep fair-share queues with membership churn, isolated.

    ``jobs`` workers pile onto one massively oversubscribed CPU; submits
    are staggered (every 16th worker arrives after a small timeout) so the
    resource repeatedly prices partial advances over a deep queue, and
    each worker re-submits ``waves`` times so completions interleave with
    arrivals.  Distinct per-worker works spread completions out -- the
    worst case for ``_advance``/``_reschedule``/``_on_wake``, and exactly
    what the vector core batches.
    """
    sim = Simulator(core=core)
    cpu = CpuResource(sim, "cpu", cores=8)
    completions: List[int] = []

    def worker(index: int):
        work = 1.0 + 0.001 * ((index * 7919) % 97)
        tag = "spill" if index % 2 else "shuffle"
        for _ in range(waves):
            yield cpu.submit(work, tag=tag).event
        completions.append(index)

    def driver():
        for index in range(jobs):
            sim.process(worker(index), name="worker")
            if index % 16 == 15:
                yield sim.timeout(0.0005)

    sim.process(driver(), name="driver")
    sim.run()
    if len(completions) != jobs:
        raise RuntimeError(
            f"fairshare bench lost workers: {len(completions)}/{jobs}"
        )
    return sim.events_scheduled


def bench_kernel_fairshare(smoke: bool = False,
                           core: Optional[str] = None) -> Dict[str, Any]:
    """Fair-share engine throughput: the vector core's target workload."""
    if core is not None and not core_available(core):
        return _core_skip(core)
    jobs = 256 if smoke else 1024
    waves = 2 if smoke else 3
    events, wall = _timed(
        lambda: _fairshare_churn_run(jobs=jobs, waves=waves, core=core),
        repeats=3,
    )
    extra = {"core": core} if core is not None else {}
    return _rate_result(events, wall, jobs=jobs, waves=waves, **extra)


def _storm_run(processes: int, hops: int) -> int:
    """Raw dispatch: timeout ping-pong including zero-delay storms."""
    sim = Simulator()

    def pinger(index: int):
        delay = 0.0001 * (index % 5)  # every 5th process is a zero-delay storm
        for _ in range(hops):
            yield sim.timeout(delay)

    for index in range(processes):
        sim.process(pinger(index), name="pinger")
    sim.run()
    return sim.events_scheduled


def bench_kernel_storm(smoke: bool = False) -> Dict[str, Any]:
    hops = 200 if smoke else 400
    events, wall = _timed(
        lambda: _storm_run(processes=100, hops=hops),
        repeats=3,
    )
    return _rate_result(events, wall, processes=100, hops=hops)


# -- end-to-end layer ------------------------------------------------------


def bench_end_to_end(workload: str, smoke: bool = False) -> Dict[str, Any]:
    """Full engine stack: one scaled-down run, wall time + events/sec."""
    from repro.harness.runner import run_workload

    scale = 0.02 if smoke else 0.05
    holder: Dict[str, Any] = {}

    def one_run() -> int:
        run = run_workload(workload, policy="default",
                           workload_kwargs={"scale": scale})
        holder["sim_runtime_s"] = run.runtime
        return run.ctx.sim.events_scheduled

    events, wall = _timed(one_run, repeats=2 if smoke else 3)
    return _rate_result(events, wall, scale=scale,
                        sim_runtime_s=holder["sim_runtime_s"])


def bench_profiler_overhead(smoke: bool = False) -> Dict[str, Any]:
    """Demand-profiling tax: profiled vs plain wall time, e2e terasort.

    A profiled run attaches a
    :class:`~repro.observability.profiler.ProfilerSink` (which flips
    ``ctx.profiling`` on: tracer events, monitoring probe, registry
    histograms) and pays the full observability cost; the baseline runs
    untraced.  ``overhead_frac`` is the fractional wall-time increase --
    the number OBSERVABILITY.md quotes and the bench assert that keeps
    profiling cheap.  Not a regression-gated figure of merit (absolute
    walls are too host-dependent); the document records it for trending.
    """
    from repro.harness.runner import finish_trace, run_workload
    from repro.observability.profiler import ProfilerSink
    from repro.observability.tracer import Tracer

    scale = 0.02 if smoke else 0.05
    repeats = 2 if smoke else 3

    def baseline() -> int:
        run = run_workload("terasort", policy="default",
                           workload_kwargs={"scale": scale})
        return run.ctx.sim.events_scheduled

    def profiled() -> int:
        tracer = Tracer(sinks=[ProfilerSink()])
        run = run_workload("terasort", policy="default",
                           workload_kwargs={"scale": scale}, tracer=tracer)
        finish_trace(run)
        return run.ctx.sim.events_scheduled

    base_events, base_wall = _timed(baseline, repeats)
    prof_events, prof_wall = _timed(profiled, repeats)
    return {
        "events": prof_events,
        "baseline_events": base_events,
        "wall_s": prof_wall,
        "baseline_wall_s": base_wall,
        "overhead_frac": (
            prof_wall / base_wall - 1.0 if base_wall > 0 else 0.0
        ),
        "scale": scale,
        "events_per_sec": None,  # not gated: walls are host-dependent
        "runs_per_min": None,
    }


# -- sweep layer -----------------------------------------------------------


def bench_sweep(parallel: int = 0, smoke: bool = False) -> Dict[str, Any]:
    """Experiment-harness throughput: an 8-point sweep, seq vs parallel.

    ``cores=256`` widens the thread ladder to 8 points (256..2) so the
    sweep is big enough to amortise worker startup; the tiny scale keeps
    each point short.  Reports ``runs_per_min`` for the parallel
    configuration as the regression figure of merit, plus the observed
    speedup over the sequential pass.
    """
    from repro.harness.parallel import resolve_parallel
    from repro.harness.runner import static_sweep

    workers = resolve_parallel(parallel)
    scale = 0.01 if smoke else 0.02
    kwargs = dict(workload_kwargs={"scale": scale}, cores=256)
    thread_counts = (256, 128, 64, 32, 16, 8, 4, 2)

    start = time.perf_counter()
    static_sweep("terasort", thread_counts=thread_counts, **kwargs)
    sequential_wall = time.perf_counter() - start

    start = time.perf_counter()
    static_sweep("terasort", thread_counts=thread_counts, parallel=workers,
                 **kwargs)
    parallel_wall = time.perf_counter() - start

    points = len(thread_counts)
    return {
        "points": points,
        "scale": scale,
        "workers": workers,
        "sequential_wall_s": sequential_wall,
        "parallel_wall_s": parallel_wall,
        "speedup": sequential_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "events_per_sec": None,  # not a kernel metric; gate on runs_per_min
        "runs_per_min": 60.0 * points / parallel_wall if parallel_wall > 0 else 0.0,
    }


def bench_fork_sweep(smoke: bool = False) -> Dict[str, Any]:
    """Copy-on-write fork engine vs sequential re-simulation.

    A warm-up-heavy what-if fan-out: one terasort run simulated to ~85% of
    its runtime, then forked into an 8-member reseed ensemble (each child
    explores an independently decorrelated stochastic future -- equal
    remaining work per child, so the measurement isolates warm-up
    sharing).  The sequential pass re-simulates the warm-up prefix once
    per alternative (8 full runs); the forked pass simulates it once and
    continues each future in a copy-on-write child -- so even on a
    single-core host the speedup approaches ``n / (f + n*(1-f))`` for
    warm-up fraction ``f``.  Results are byte-identical either way (the
    golden-log tests enforce it); this benchmark gates only the
    throughput win, via ``runs_per_min`` of the forked configuration.
    """
    from repro.harness.fork import Alternative, fork_available, run_whatif
    from repro.harness.runner import run_workload

    scale = 0.01 if smoke else 0.02
    kwargs = dict(workload_kwargs={"scale": scale})
    alternatives = [
        Alternative(key=f"reseed={index}", kind="reseed", value=str(index))
        for index in range(8)
    ]
    # Calibrate the barrier off one untimed run: ~85% of the simulated
    # runtime, i.e. the sweep's shareable warm-up prefix.
    runtime = run_workload("terasort", **kwargs).runtime
    at = 0.85 * runtime

    start = time.perf_counter()
    run_whatif("terasort", at=at, alternatives=alternatives,
               use_fork=False, **kwargs)
    sequential_wall = time.perf_counter() - start

    forked_wall = None
    if fork_available():
        start = time.perf_counter()
        run_whatif("terasort", at=at, alternatives=alternatives,
                   use_fork=True, **kwargs)
        forked_wall = time.perf_counter() - start

    points = len(alternatives)
    return {
        "points": points,
        "scale": scale,
        "fork_at_s": at,
        "fork_available": forked_wall is not None,
        "sequential_wall_s": sequential_wall,
        "forked_wall_s": forked_wall,
        "speedup": (
            sequential_wall / forked_wall if forked_wall else 0.0
        ),
        "events_per_sec": None,  # harness metric; gate on runs_per_min
        "runs_per_min": (
            60.0 * points / forked_wall if forked_wall else None
        ),
    }


def bench_serve_chaos(smoke: bool = False) -> Dict[str, Any]:
    """Service-loop throughput, chaos machinery off vs on.

    Drives :class:`~repro.cluster.scheduler.ClusterScheduler` directly on
    synthetic jobs (no inner engine runs), so the measurement isolates the
    outer event loop.  The chaos-off pass is the regression figure of
    merit (``events_per_sec`` = jobs scheduled per wall second): the
    chaos-free fast path must not pay for the fault machinery.  The
    chaos-on pass (node churn + retries + breaker-armed protection over
    the same job stream) is reported as ``chaos_wall_s`` /
    ``overhead_frac`` for tracking, not gating -- chaos work is real work.
    """
    from repro.cluster.scheduler import ClusterScheduler, ServiceJob
    from repro.faults.plan import ClusterFaults, NodeChurn, ProtectionConfig

    jobs = 2_000 if smoke else 10_000
    slots = 16

    def job_stream() -> list:
        return [
            ServiceJob(
                job_id=f"j{index:05d}",
                tenant=f"t{index % 4}",
                workload="synthetic",
                arrival=index * 0.5,
                slots=1 + index % 3,
                runtime=20.0 + (index * 7) % 40,
            )
            for index in range(jobs)
        ]

    def run_plain() -> int:
        result = ClusterScheduler(slots, "fair").run(job_stream())
        return result.completed

    events, wall = _timed(run_plain, repeats=1 if smoke else 3)

    churn = tuple(
        NodeChurn(node_id=node, down_at=500.0 + 400.0 * node, duration=300.0)
        for node in range(4)
    )
    chaos = ClusterFaults(
        node_churn=churn,
        protection=ProtectionConfig(max_retries=3, breaker_failures=5,
                                    max_queue=jobs),
    )

    def run_chaos() -> int:
        result = ClusterScheduler(slots, "fair", chaos=chaos,
                                  chaos_seed=42).run(job_stream())
        return result.completed + result.rejected + result.aborted

    _chaos_events, chaos_wall = _timed(run_chaos, repeats=1 if smoke else 3)

    result = _rate_result(events, wall)
    result.update({
        "jobs": jobs,
        "slots": slots,
        "chaos_wall_s": chaos_wall,
        "overhead_frac": (chaos_wall - wall) / wall if wall > 0 else 0.0,
    })
    return result


# -- suite -----------------------------------------------------------------

#: Registry behind ``repro bench``: name -> ``fn(smoke, parallel)``.
#: ``repro bench --check`` retries *individual* failing benchmarks through
#: :func:`run_suite`'s ``only`` filter, so entries must be independently
#: runnable in any order.
BENCHMARKS: Dict[str, Callable[[bool, int], Dict[str, Any]]] = {
    "kernel_terasort": lambda smoke, parallel: bench_kernel_terasort(smoke=smoke),
    "kernel_terasort_vector": lambda smoke, parallel: bench_kernel_terasort(
        smoke=smoke, core="vector"),
    "kernel_fairshare": lambda smoke, parallel: bench_kernel_fairshare(
        smoke=smoke, core="python"),
    "kernel_fairshare_vector": lambda smoke, parallel: bench_kernel_fairshare(
        smoke=smoke, core="vector"),
    "kernel_storm": lambda smoke, parallel: bench_kernel_storm(smoke=smoke),
    "e2e_terasort": lambda smoke, parallel: bench_end_to_end(
        "terasort", smoke=smoke),
    "e2e_pagerank": lambda smoke, parallel: bench_end_to_end(
        "pagerank", smoke=smoke),
    "profiler_overhead": lambda smoke, parallel: bench_profiler_overhead(
        smoke=smoke),
    "sweep": lambda smoke, parallel: bench_sweep(
        parallel=parallel, smoke=smoke),
    "fork_sweep": lambda smoke, parallel: bench_fork_sweep(smoke=smoke),
    "serve_chaos": lambda smoke, parallel: bench_serve_chaos(smoke=smoke),
}


def _cores_metadata(core: Optional[str]) -> Dict[str, Any]:
    """The ``cores`` block of the bench document: active backend + numpy."""
    active = resolve_core(core)
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "active": active.metadata(),
        "available": [name for name in CORE_NAMES if core_available(name)],
        "numpy": numpy_version,
    }


def run_suite(smoke: bool = False, parallel: int = 0,
              only: Optional[List[str]] = None,
              core: Optional[str] = None) -> Dict[str, Any]:
    """Run benchmarks and assemble the ``BENCH_kernel.json`` document.

    ``only`` restricts the run to the named benchmarks (registry order is
    preserved); the default runs the full suite.  ``core`` pins the kernel
    backend for every benchmark that does not already pin its own (the
    ``*_vector`` entries stay on theirs): it is exported as ``REPRO_CORE``
    for the duration of the suite so sweep/fork worker processes inherit
    it too.  The document's ``cores`` block records the active backend and
    the numpy version (or ``None`` when numpy is absent).
    """
    if only is not None:
        unknown = sorted(set(only) - set(BENCHMARKS))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; "
                f"expected a subset of {sorted(BENCHMARKS)}"
            )
    selected = [name for name in BENCHMARKS
                if only is None or name in set(only)]
    cores_meta = _cores_metadata(core)  # strict: unknown/unavailable raises
    previous = os.environ.get(CORE_ENV_VAR)
    if core is not None:
        os.environ[CORE_ENV_VAR] = core
    try:
        benchmarks = {
            name: BENCHMARKS[name](smoke, parallel) for name in selected
        }
    finally:
        if core is not None:
            if previous is None:
                os.environ.pop(CORE_ENV_VAR, None)
            else:
                os.environ[CORE_ENV_VAR] = previous
    return {
        "schema": BENCH_SCHEMA,
        "mode": "smoke" if smoke else "full",
        "host": {
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
        },
        "cores": cores_meta,
        "benchmarks": benchmarks,
    }


def _figures_of_merit(doc: Dict[str, Any]) -> Dict[str, float]:
    """name -> higher-is-better metric, for regression comparison."""
    merits: Dict[str, float] = {}
    for name, result in doc.get("benchmarks", {}).items():
        if result.get("events_per_sec"):
            merits[name] = result["events_per_sec"]
        elif result.get("runs_per_min"):
            merits[name] = result["runs_per_min"]
    return merits


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Compare two bench documents; returns human-readable failures.

    A benchmark regresses when its figure of merit drops more than
    ``tolerance`` (fractional) below the baseline's.  Benchmarks present in
    only one document are ignored -- adding a benchmark must not fail the
    gate retroactively.
    """
    failures: List[str] = []
    current_merits = _figures_of_merit(current)
    for name, base_value in _figures_of_merit(baseline).items():
        value = current_merits.get(name)
        if value is None or base_value <= 0:
            continue
        drop = 1.0 - value / base_value
        if drop > tolerance:
            failures.append(
                f"{name}: {value:,.0f} is {drop:.0%} below baseline "
                f"{base_value:,.0f} (tolerance {tolerance:.0%})"
            )
    return failures
