"""Storage substrate: block devices with contention models and a DFS.

* :mod:`repro.storage.device` -- HDD/SSD models.  A device is a fair-share
  resource whose aggregate bandwidth degrades with concurrency (seek thrash on
  HDDs, erase-block staging for SSD writes) plus a per-request access latency.
  These two ingredients make the paper's central phenomenon *emerge*: with few
  threads, access latencies leave the device idle; with many threads, the
  efficiency curve collapses aggregate throughput (paper sections 3-4).
* :mod:`repro.storage.dfs` -- an HDFS-like block filesystem with replication
  and locality metadata (the paper reads inputs from HDFS with replication
  equal to the node count so every read is local).
"""

from repro.storage.device import (
    HDD_PROFILE,
    SSD_PROFILE,
    DeviceProfile,
    StorageDevice,
)
from repro.storage.dfs import BlockLocation, DfsFile, DistributedFileSystem

__all__ = [
    "BlockLocation",
    "DeviceProfile",
    "DfsFile",
    "DistributedFileSystem",
    "HDD_PROFILE",
    "SSD_PROFILE",
    "StorageDevice",
]
