"""Block-device models with concurrency-dependent efficiency.

The model has two ingredients, both taken from how real drives behave under
the workloads the paper studies:

1. **Access latency** -- every request pays a fixed setup cost before data
   flows (seek + rotational delay on HDDs, controller latency on SSDs).  With
   few concurrent streams these latencies leave the device idle between
   requests, so aggregate throughput *rises* with concurrency at first.
2. **Efficiency curve** -- once several streams are in flight, an HDD's head
   shuttles between them and the aggregate bandwidth collapses:
   ``e(k) = 1 / (1 + alpha * (k - 1) ** p)``.  SSDs have no moving parts, so
   reads keep nearly full efficiency at any depth, while writes degrade
   mildly because of erase-block staging (paper section 6.3).

Together these produce the interior optimum the paper exploits: aggregate
throughput peaks at a moderate number of threads on HDDs (4-8 in the paper's
Fig. 5/7) and at high thread counts on SSDs (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.simulation.core import Event, Simulator
from repro.simulation.resources import FairShareResource, Job

MiB = 1024.0 * 1024.0
GiB = 1024.0 * MiB


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a device family.

    Rates are bytes/second for a single sequential stream; ``alpha``/``p``
    shape the efficiency decay per operation; latencies are seconds per
    request.
    """

    name: str
    read_rate: float
    write_rate: float
    read_alpha: float
    write_alpha: float
    p: float
    read_latency: float
    write_latency: float
    #: Efficiency floor: the OS elevator/readahead and shuffle-service block
    #: merging keep very deep queues from degrading without bound.
    min_efficiency: float = 0.25

    def efficiency(self, op: str, concurrency: int) -> float:
        """Aggregate-bandwidth efficiency with ``concurrency`` active streams."""
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        alpha = self.read_alpha if op == "read" else self.write_alpha
        return max(
            self.min_efficiency,
            1.0 / (1.0 + alpha * (concurrency - 1) ** self.p),
        )

    def rate(self, op: str) -> float:
        if op == "read":
            return self.read_rate
        if op == "write":
            return self.write_rate
        raise ValueError(f"unknown op {op!r} (expected 'read' or 'write')")

    def latency(self, op: str) -> float:
        return self.read_latency if op == "read" else self.write_latency


#: 7'200 rpm SATA HDD, as in the paper's DAS-5 setup (section 6.1).  The
#: efficiency decay and per-request latency are calibrated so that (a) a
#: pure-read stage peaks around 4 concurrent streams (paper Fig. 5a/7a),
#: (b) mixed read/write stages with moderate CPU peak at 8 (Fig. 7b/7c),
#: and (c) 32 streams collapse to roughly a third of peak throughput.
HDD_PROFILE = DeviceProfile(
    name="hdd",
    read_rate=150.0 * MiB,
    write_rate=140.0 * MiB,
    read_alpha=0.065,
    write_alpha=0.065,
    p=1.0,
    read_latency=0.030,
    write_latency=0.030,
    min_efficiency=0.04,
)

#: SATA SSD.  Reads support full random access at uniform latency
#: (near-flat efficiency, so read stages tolerate high thread counts --
#: paper Fig. 10b stage 0); writes are slower and degrade visibly with
#: concurrency because whole erase blocks must be staged and rewritten
#: (section 6.3), which is why the write-heavy Terasort stages still prefer
#: moderate thread counts on SSDs.
SSD_PROFILE = DeviceProfile(
    name="ssd",
    read_rate=300.0 * MiB,
    write_rate=200.0 * MiB,
    read_alpha=0.002,
    write_alpha=0.06,
    p=1.0,
    read_latency=0.0002,
    write_latency=0.0004,
    min_efficiency=0.35,
)


class StorageDevice(FairShareResource):
    """One node-local drive.

    ``speed_factor`` captures per-node hardware variability (paper Fig. 3):
    nominally identical drives with different effective rates.  Work units are
    bytes; job attributes carry the operation so reads and writes can be
    accounted separately.
    """

    #: Rates are op-structured: every job doing the same operation gets the
    #: same share (see :meth:`group_rate`), which lets the vector kernel
    #: batch mixed read/write phases instead of falling back to per-job
    #: dicts.
    _rate_groups = ("op", "read")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        profile: DeviceProfile,
        speed_factor: float = 1.0,
    ) -> None:
        if speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {speed_factor}")
        super().__init__(sim, name, capacity=profile.read_rate)
        self.profile = profile
        self.speed_factor = speed_factor
        #: In-flight jobs per op.  Incremented before service starts and
        #: decremented on the completion callback, so each count is always
        #: >= the number of live jobs with that op: a zero count proves the
        #: op absent, which is all :meth:`uniform_rate` needs.  Transient
        #: over-counts (a completion's callback not yet run) only send the
        #: kernel down the per-job :meth:`rates` path, which computes the
        #: exact same floats.
        self._op_counts: Dict[str, int] = {"read": 0, "write": 0}
        #: Optional span tracer, wired by the owning context; every hook
        #: guards on it so untraced runs pay one attribute read per request.
        self.tracer = None

    def submit(self, work: float, tag: str = "", **attrs: Any) -> Job:
        op = attrs.get("op", "read")
        counts = self._op_counts
        counts[op] = counts.get(op, 0) + 1
        job = super().submit(work, tag, **attrs)
        if job.event.triggered:
            counts[op] -= 1  # zero-work job: never entered service
        else:
            # The callback list keeps relative event order intact: nothing
            # new is scheduled, so sequence numbers are unchanged.
            job.event.add_callback(lambda _event: self._release_op(op))
        return job

    def _release_op(self, op: str) -> None:
        self._op_counts[op] -= 1

    def group_rate(self, op: str, n: int) -> float:
        """Per-stream rate when ``n`` streams are active and this one does
        ``op``; the single expression behind :meth:`rates` and
        :meth:`uniform_rate` (bit-identity across the three entry points)."""
        return (
            self.profile.rate(op)
            * self.profile.efficiency(op, n)
            * self.speed_factor
            / n
        )

    def rates(self, jobs: List[Job]) -> Dict[Job, float]:
        k = len(jobs)
        return {
            job: self.group_rate(job.attrs.get("op", "read"), k)
            for job in jobs
        }

    def uniform_rate(self, n: int) -> Optional[float]:
        """Scalar rate when every active stream performs the same operation.

        Pure-read and pure-write phases (the common case: a stage's tasks
        all read input or all spill/write) share one rate, so the kernel
        skips the per-job dict; mixed read/write sets fall back to
        :meth:`rates`.
        """
        counts = self._op_counts
        if counts["read"]:
            if counts["write"]:
                # Possibly mixed; scan the live set to be sure (a pending
                # completion callback can leave a stale count behind).
                jobs = self._jobs
                op = jobs[0].attrs.get("op", "read")
                for job in jobs:
                    if job.attrs.get("op", "read") != op:
                        return None
            else:
                op = "read"
        else:
            op = "write"
        return self.group_rate(op, n)

    def request(self, size: float, op: str) -> Event:
        """Issue one I/O request: access latency, then bandwidth service.

        Returns an event that fires when the data has been transferred.  The
        latency phase does not occupy the device (it models head movement /
        controller setup concurrent with other streams' transfers), which is
        the standard fluid approximation.
        """
        if op not in ("read", "write"):
            raise ValueError(f"unknown op {op!r}")
        if size < 0:
            raise ValueError(f"negative request size: {size}")
        done = self.sim.event()
        latency = self.profile.latency(op) / self.speed_factor

        def start_transfer() -> None:
            job = self.submit(size, tag=op, op=op)
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                depth = self.active_jobs
                tracer.counter(
                    "device", self.name, float(depth),
                    efficiency=self.profile.efficiency(op, max(1, depth)),
                    op=op,
                )
            job.event.add_callback(lambda _e: done.succeed(size))

        self.sim.call_in(latency, start_transfer)
        return done

    def sample_io_counters(self) -> Dict[str, float]:
        """Profiler-probe view: extrapolated counters with a read/write
        split, computed without mutating device state (see
        :meth:`~repro.simulation.resources.FairShareResource.
        sample_counters`)."""
        counters = self.sample_counters()
        tags = counters.pop("work_by_tag")
        counters["bytes_read"] = tags.get("read", 0.0)
        counters["bytes_written"] = tags.get("write", 0.0)
        return counters

    @property
    def bytes_read(self) -> float:
        """Bytes read so far (continuous; call sync() for instant accuracy)."""
        return self.stats.work_by_tag.get("read", 0.0)

    @property
    def bytes_written(self) -> float:
        return self.stats.work_by_tag.get("write", 0.0)

    @property
    def total_bytes(self) -> float:
        """All bytes moved through the device (Table 2's "I/O activity")."""
        return self.bytes_read + self.bytes_written
