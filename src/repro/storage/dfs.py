"""An HDFS-like distributed filesystem model.

Only the aspects that matter for the paper's experiments are modelled:

* files are split into fixed-size **blocks**;
* each block has a configurable number of **replicas** placed on distinct
  nodes (primary on the writer, the rest round-robin) -- the paper sets the
  replication factor equal to the cluster size so that "all executors achieve
  maximum locality during the read stages" (section 6.1);
* readers query **block locations** to decide whether a read is node-local
  (disk only) or remote (source disk + network).

The DFS holds metadata only; actual byte movement is performed by tasks
against :class:`repro.storage.device.StorageDevice` and the network fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


@dataclass(frozen=True)
class BlockLocation:
    """One block of a DFS file: its size and the nodes holding replicas."""

    index: int
    size: float
    replicas: Sequence[int]

    def is_local_to(self, node_id: int) -> bool:
        return node_id in self.replicas


@dataclass
class DfsFile:
    """Metadata for one stored file."""

    path: str
    size: float
    blocks: List[BlockLocation] = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)


class DistributedFileSystem:
    """Block placement and lookup over a set of node ids."""

    def __init__(
        self,
        node_ids: Sequence[int],
        replication: Optional[int] = None,
        block_size: float = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if not node_ids:
            raise ValueError("DFS requires at least one node")
        if block_size <= 0:
            raise ValueError(f"block_size must be positive, got {block_size}")
        self.node_ids = list(node_ids)
        self.block_size = float(block_size)
        if replication is None:
            replication = len(self.node_ids)
        if not 1 <= replication <= len(self.node_ids):
            raise ValueError(
                f"replication {replication} must be in [1, {len(self.node_ids)}]"
            )
        self.replication = replication
        self._files: Dict[str, DfsFile] = {}
        self._placement_cursor = 0

    # -- write path ---------------------------------------------------------

    def create(self, path: str, size: float, writer_node: Optional[int] = None,
               overwrite: bool = False) -> DfsFile:
        """Register a file of ``size`` bytes and place its blocks.

        ``writer_node`` pins the primary replica (HDFS write-locality); when
        omitted (e.g. pre-loaded benchmark inputs) primaries rotate across the
        cluster, giving the balanced layout HiBench data generators produce.
        """
        if path in self._files:
            if not overwrite:
                raise FileExistsError(f"DFS path already exists: {path}")
            del self._files[path]
        if size < 0:
            raise ValueError(f"negative file size: {size}")
        dfs_file = DfsFile(path=path, size=float(size))
        remaining = float(size)
        index = 0
        while remaining > 0 or index == 0:
            block_bytes = min(self.block_size, remaining) if size > 0 else 0.0
            dfs_file.blocks.append(
                BlockLocation(
                    index=index,
                    size=block_bytes,
                    replicas=self._place_replicas(writer_node),
                )
            )
            remaining -= block_bytes
            index += 1
            if size == 0:
                break
        self._files[path] = dfs_file
        return dfs_file

    def _place_replicas(self, writer_node: Optional[int]) -> Sequence[int]:
        order: List[int] = []
        if writer_node is not None:
            if writer_node not in self.node_ids:
                raise ValueError(f"unknown writer node: {writer_node}")
            order.append(writer_node)
        cursor = self._placement_cursor
        nodes = self.node_ids
        while len(order) < self.replication:
            candidate = nodes[cursor % len(nodes)]
            cursor += 1
            if candidate not in order:
                order.append(candidate)
        self._placement_cursor = cursor % len(nodes)
        return tuple(order)

    def fail_node(self, node_id: int) -> List[str]:
        """Drop a dead node from placement and every block's replica set.

        Mirrors the NameNode declaring a DataNode dead: its replicas vanish
        and future placements avoid it.  The replication factor is clamped to
        the surviving population.  Returns the paths that lost their last
        replica of some block (unreadable until rewritten); with the paper's
        replication-equals-cluster-size default this list is empty.
        """
        if node_id not in self.node_ids:
            return []
        self.node_ids = [n for n in self.node_ids if n != node_id]
        if self.node_ids:
            self._placement_cursor %= len(self.node_ids)
            self.replication = min(self.replication, len(self.node_ids))
        lost: List[str] = []
        for path, dfs_file in self._files.items():
            rebuilt: List[BlockLocation] = []
            changed = False
            for block in dfs_file.blocks:
                if node_id in block.replicas:
                    block = BlockLocation(
                        index=block.index,
                        size=block.size,
                        replicas=tuple(n for n in block.replicas if n != node_id),
                    )
                    changed = True
                    if not block.replicas and block.size > 0 and path not in lost:
                        lost.append(path)
                rebuilt.append(block)
            if changed:
                dfs_file.blocks = rebuilt
        return lost

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFoundError(path)
        del self._files[path]

    # -- read path ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._files

    def status(self, path: str) -> DfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    def locations(self, path: str) -> List[BlockLocation]:
        return list(self.status(path).blocks)

    def split_for_partitions(self, path: str, num_partitions: int) -> List[dict]:
        """Divide a file into ``num_partitions`` read assignments.

        Returns one dict per partition with ``bytes`` and ``preferred_nodes``
        (the replica holders of the blocks the partition overlaps), mirroring
        how Spark derives partition locality from HDFS block locations.
        """
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive: {num_partitions}")
        dfs_file = self.status(path)
        per_partition = dfs_file.size / num_partitions
        assignments = []
        for i in range(num_partitions):
            start = i * per_partition
            end = start + per_partition
            preferred: List[int] = []
            for block in dfs_file.blocks:
                block_start = block.index * self.block_size
                block_end = block_start + block.size
                if block_end > start and block_start < end:
                    if not block.replicas and block.size > 0:
                        raise FileNotFoundError(
                            f"{path}: block {block.index} lost all replicas"
                        )
                    for node in block.replicas:
                        if node not in preferred:
                            preferred.append(node)
            assignments.append(
                {"bytes": per_partition, "preferred_nodes": tuple(preferred)}
            )
        return assignments

    @property
    def files(self) -> List[str]:
        return sorted(self._files)

    def total_stored_bytes(self) -> float:
        """Logical bytes stored (one copy), ignoring replication."""
        return sum(f.size for f in self._files.values())
