"""Named, seeded random streams for reproducible experiments.

Every stochastic element of the simulator (per-node hardware variability,
task-size jitter, data skew) draws from its own named stream derived from a
single experiment seed.  This keeps experiments reproducible while ensuring
that, e.g., adding one more draw to the disk model does not perturb the
network model.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the master
    seed and the name via SHA-256, so stream identity is stable across runs
    and insertion orders.
    """

    def __init__(self, seed: int = 42) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if necessary) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative jitter factor with median 1.0.

        Used for per-node hardware variability (DESIGN.md section 5 / paper
        Fig. 3): identical machines whose effective disk and CPU rates spread
        log-normally around the nominal value.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if sigma == 0:
            return 1.0
        return self.stream(name).lognormvariate(0.0, sigma)

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def reseed_for_fork(self, child_key: str) -> None:
        """Re-derive every stream for a copy-on-write forked child.

        A child created by ``os.fork()`` inherits the parent's stream
        states mid-sequence, which is exactly right for deterministic
        divergences (the forked timeline must match a from-scratch run of
        the same configuration byte for byte).  Experiments that instead
        want *independent* stochastic futures per child -- e.g. what-if
        rollouts exploring noise -- opt in by calling this with the child's
        divergence key: the master seed and all existing streams are
        re-derived from ``(seed, child_key)``, so the same key always
        yields the same streams (reproducible) while different keys yield
        decorrelated ones.  Draws already consumed are not replayed.
        """
        token = f"{self.seed}:postfork:{child_key}".encode("utf-8")
        self.seed = int.from_bytes(hashlib.sha256(token).digest()[:8], "big")
        for name, stream in self._streams.items():
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            stream.seed(int.from_bytes(digest[:8], "big"))
