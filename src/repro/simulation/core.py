"""Event loop, events, and generator-based processes.

The design follows the classic discrete-event pattern (and deliberately mirrors
the small core of SimPy, which is not available offline): a :class:`Simulator`
owns a priority queue of scheduled events; a :class:`Process` wraps a Python
generator that yields events and is resumed when they fire.

Time is a float in *simulated seconds*.  The kernel is fully deterministic:
ties in the event queue are broken by insertion order.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.kernel.base import KernelCore


class SimulationError(RuntimeError):
    """Raised for misuse of the kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries the interruptor's payload (e.g. a fault-injection
    reason).  A process that wants to survive an interrupt catches this at
    its current ``yield`` and decides what to do; an uncaught interrupt
    fails the process like any other exception.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event moves through three states: *pending* (created, not scheduled),
    *triggered* (scheduled to fire, has a value), and *processed* (callbacks
    have run).  Waiting on an already-processed event resumes the waiter
    immediately on the next loop iteration.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (False when it carries an exception)."""
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event now with an exception; waiters will re-raise it."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._triggered = True
        self.sim._schedule(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            # Already processed: run on the next loop iteration for
            # deterministic ordering.
            stub = Event(self.sim)
            stub.add_callback(lambda _e: callback(self))
            stub._value = None
            stub._ok = True
            stub._triggered = True
            self.sim._schedule(stub, delay=0.0)
        else:
            self.callbacks.append(callback)


class _DeferredCall:
    """A bare scheduled callback: the queue entry for :meth:`Simulator.call_in`.

    Hot paths (channel latency hops, fair-share wake-ups) schedule tens of
    thousands of fire-once callbacks per run; routing them through a full
    :class:`Event` costs an object, a callbacks list, and a closure apiece.
    A deferred call is two slots and is dispatched inline by :meth:`step`.
    Nothing can wait on it, which is exactly why it is cheap.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple) -> None:
        self.fn = fn
        self.args = args


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self._ok = True
        self._triggered = True
        sim._schedule(self, delay=delay)


class Process(Event):
    """A generator-based coroutine driven by the event loop.

    The wrapped generator yields :class:`Event` instances; each ``yield``
    suspends the process until that event fires, at which point the event's
    value is sent back into the generator (or its exception thrown).  The
    process itself is an event that fires with the generator's return value,
    so processes can wait on each other.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_trace_span", "_started")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._started = False
        if sim.trace_enabled:
            self._trace_span = sim.tracer.begin("process", self.name)
        else:
            self._trace_span = -1
        bootstrap = Event(sim)
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap._triggered = True
        bootstrap.add_callback(self._resume)
        sim._schedule(bootstrap, delay=0.0)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at its current yield.

        The process is detached from whatever event it was waiting on (the
        event itself still fires for its other waiters) and resumed on the
        next loop iteration with the exception.  Interrupting a process that
        already terminated is a no-op; interrupting one whose generator has
        not started yet cancels it silently (the body never ran, so there is
        nothing to unwind).  Returns True when the interrupt was delivered
        or the process was cancelled.
        """
        if self._triggered:
            return False
        target = self._waiting_on
        if (
            target is not None
            and target._triggered
            and not target._ok
            and isinstance(target._value, Interrupt)
        ):
            # An interrupt is already in flight; delivering a second one
            # would leave the first as an unwaited failure.
            return True
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        if not self._started:
            # Never started: cancel without running the body.
            self.generator.close()
            self._waiting_on = None
            self._value = None
            self._ok = True
            self._triggered = True
            if self._trace_span >= 0:
                self.sim.tracer.end(self._trace_span, cancelled=True)
            self.sim._schedule(self, delay=0.0)
            return True
        kick = Event(self.sim)
        kick._value = Interrupt(cause)
        kick._ok = False
        kick._triggered = True
        kick.add_callback(self._resume)
        self.sim._schedule(kick, delay=0.0)
        self._waiting_on = kick
        return True

    def _resume(self, event: Event) -> None:
        if event is not self._waiting_on:
            # Stale wake-up: the process was detached from this event by an
            # interrupt (or already resumed through a replay stub).
            return
        self._waiting_on = None
        self._started = True
        try:
            if event.ok:
                target = self.generator.send(event.value)
            else:
                target = self.generator.throw(event.value)
        except StopIteration as stop:
            self._value = stop.value
            self._ok = True
            self._triggered = True
            if self._trace_span >= 0:
                self.sim.tracer.end(self._trace_span)
            self.sim._schedule(self, delay=0.0)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._value = exc
            self._ok = False
            self._triggered = True
            if self._trace_span >= 0:
                self.sim.tracer.end(self._trace_span, error=repr(exc))
            self.sim._schedule(self, delay=0.0)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_values")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        self._values: List[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event.add_callback(self._make_collector(index))

    def _make_collector(self, index: int) -> Callable[[Event], None]:
        def collect(event: Event) -> None:
            if self._triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return collect


class AnyOf(Event):
    """Fires when the first child event fires; value is that event's value."""

    # Adds no state of its own, but without an explicit (empty) __slots__
    # Python would silently re-add a per-instance __dict__ that the parent's
    # __slots__ exists to avoid.
    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for event in events:
            event.add_callback(self._collect)

    def _collect(self, event: Event) -> None:
        if self._triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Simulator:
    """The discrete-event loop.

    Usage::

        sim = Simulator()
        def worker():
            yield sim.timeout(3.0)
            return "done"
        proc = sim.process(worker())
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"

    ``core`` selects the kernel backend (see :mod:`repro.simulation.kernel`):
    a backend name (``"python"``, ``"vector"``), a :class:`KernelCore`
    instance, or ``None`` for the ``REPRO_CORE`` env var / python default.
    The queue itself -- a heap of ``(when, sequence, payload)`` tuples with
    insertion-order tie-breaks -- is the contract every backend shares; the
    push/pop sites below stay inlined so the reference core pays no
    indirection per event.
    """

    def __init__(self, core: Union[str, "KernelCore", None] = None) -> None:
        from repro.simulation.kernel import resolve_core

        self.core = resolve_core(core)
        self._now = 0.0
        self._queue: List[tuple] = self.core.create_queue()
        self._sequence = 0
        self._fork_hooks: List[Callable[[str], None]] = []
        #: Divergence key set by :meth:`after_fork`; ``None`` in a simulator
        #: that has never crossed a fork barrier.  Diagnostic only -- it
        #: must never feed back into the timeline.
        self.forked_from: Optional[str] = None
        self._tracer: Optional[Any] = None
        #: Cached ``tracer is not None and tracer.enabled``, so the untraced
        #: hot path (one check per process spawn) costs a single boolean
        #: read instead of two attribute lookups.  Captured when the tracer
        #: is wired; embedders must not toggle ``tracer.enabled`` afterwards.
        self.trace_enabled = False
        #: Set by :class:`repro.validation.InvariantMonitor`: re-verify on
        #: every :meth:`step` that the popped event does not move the clock
        #: backwards (the heap ordering normally guarantees this; the guard
        #: catches a corrupted queue or a mutated ``_now``).
        self.monotonic_guard = False
        self.core.bind(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def tracer(self) -> Optional[Any]:
        """Optional span tracer (duck-typed to avoid importing observability
        here); embedders wire it before the first process is spawned."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Any]) -> None:
        self._tracer = value
        self.trace_enabled = value is not None and bool(value.enabled)

    @property
    def events_scheduled(self) -> int:
        """Total events (and deferred calls) scheduled so far.

        :meth:`_schedule` and :meth:`call_in` are the only two queue-push
        sites, and each increments the same sequence counter exactly once
        per push -- deferred calls are counted consistently with events,
        so per-backend counts are directly comparable and deltas give the
        kernel throughput that ``repro bench`` reports as events/second.
        """
        return self._sequence

    # -- scheduling -------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, callback: Callable[[], None]) -> Event:
        """Run ``callback()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        marker = self.timeout(when - self._now)
        marker.add_callback(lambda _e: callback())
        return marker

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` seconds, without an :class:`Event`.

        The lightweight sibling of :meth:`call_at` for fire-once callbacks
        nothing needs to wait on: one queue entry, no event object, no
        callbacks list.  Ties against events scheduled for the same instant
        are still broken by scheduling order, so replacing a one-callback
        :class:`Timeout` with ``call_in`` preserves the event-by-event
        timeline exactly.
        """
        if delay < 0:
            raise SimulationError(f"negative call_in delay: {delay!r}")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._now + delay, self._sequence, _DeferredCall(fn, args))
        )

    # -- execution --------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event (or deferred call)."""
        when, _seq, event = heapq.heappop(self._queue)
        if self.monotonic_guard and when < self._now:
            raise SimulationError(
                f"simulated clock ran backwards: popped event at {when} "
                f"with the clock already at {self._now}"
            )
        self._now = when
        if type(event) is _DeferredCall:
            event.fn(*event.args)
            return
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event.ok:
            # A failed event nobody waited on would silently swallow the
            # error; surface it instead ("errors should never pass silently").
            raise event.value

    # -- snapshot/fork support --------------------------------------------

    def on_fork(self, hook: Callable[[str], None]) -> None:
        """Register ``hook(child_key)`` to run in a forked child.

        Hooks fire inside :meth:`after_fork`, in registration order, once
        per OS-level copy-on-write child the fork engine spawns from this
        simulator (see :mod:`repro.harness.fork`).  Embedders use this for
        divergence bookkeeping that must happen before the child schedules
        anything -- e.g. reseeding named random streams for experiments
        that *want* divergent futures.  By default nothing is registered,
        so a forked child replays the exact timeline a from-scratch run of
        the same configuration would produce.
        """
        self._fork_hooks.append(hook)

    def after_fork(self, child_key: str) -> None:
        """Run post-fork hooks; called in the child right after ``os.fork``.

        Deterministic: the same ``child_key`` always produces the same hook
        effects, so a forked run can be reproduced from scratch.
        """
        self.forked_from = child_key
        for hook in self._fork_hooks:
            hook(child_key)

    def fork_barrier(self, until: float, stop: Optional["Event"] = None) -> bool:
        """Run the shared prefix up to the divergence point.

        Processes every event scheduled at or before ``until`` (exactly the
        events :meth:`run` with the same bound would process) and then
        advances the clock to ``until``, leaving later events queued.  If
        ``stop`` triggers first -- e.g. the job being warmed up finishes
        before the barrier time -- the prefix run stops there and the clock
        is *not* advanced.  Returns ``True`` when the barrier was reached,
        ``False`` when ``stop`` cut it short.
        """
        if until < self._now:
            raise SimulationError(
                f"fork barrier lies in the past: {until} < {self._now}"
            )
        while self._queue:
            if stop is not None and stop.triggered:
                return False
            if self._queue[0][0] > until:
                break
            self.step()
        if stop is not None and stop.triggered:
            return False
        self._now = until
        return True

    def run_until(self, event: "Event") -> None:
        """Run until ``event`` triggers (or the queue drains).

        Unlike :meth:`run`, pending events beyond the trigger point stay in
        the queue for a later ``run``/``run_until`` call.  The fault
        injector relies on this: a node-loss timer scheduled for the middle
        of the next job must not be drained -- advancing the clock past it
        -- while the simulator idles between jobs.
        """
        while not event.triggered and self._queue:
            self.step()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time passes ``until``."""
        if until is not None and until < self._now:
            raise SimulationError("`until` lies in the past")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
