"""Fair-share resources with concurrency-dependent service rates.

This module implements the fluid-flow resource model used throughout the
simulator: a resource serves all active jobs simultaneously, and each job's
instantaneous rate is a function of the whole active set.  Whenever the active
set changes (a job arrives or completes), remaining work is advanced and the
next completion is rescheduled.

Concrete rate policies:

* :class:`CpuResource` -- ``cores`` capacity, each job demands one core, and
  jobs timeshare when oversubscribed (rate = min(1, cores / k)).
* Storage devices and network links subclass :class:`FairShareResource` in
  their own packages and provide rate curves with contention effects.

All resources keep cumulative counters (busy time, work done, concurrency
integral) that the monitoring package samples to produce iostat/mpstat-style
views.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.simulation.core import Event, SimulationError, Simulator

_RELATIVE_EPS = 1e-9
_ABSOLUTE_EPS = 1e-6


@dataclass
class ResourceStats:
    """Cumulative accounting for a fair-share resource.

    ``busy_time`` counts seconds during which at least one job was active,
    ``work_done`` accumulates completed work units (bytes for I/O devices,
    core-seconds for CPUs), and ``concurrency_integral`` is the time-integral
    of the active-job count, so ``concurrency_integral / elapsed`` gives the
    average queue depth over a window.
    """

    busy_time: float = 0.0
    work_done: float = 0.0
    concurrency_integral: float = 0.0
    occupancy_integral: float = 0.0
    jobs_completed: int = 0
    work_by_tag: Dict[str, float] = field(default_factory=dict)

    def snapshot(self) -> "ResourceStats":
        copy = ResourceStats(
            busy_time=self.busy_time,
            work_done=self.work_done,
            concurrency_integral=self.concurrency_integral,
            occupancy_integral=self.occupancy_integral,
            jobs_completed=self.jobs_completed,
        )
        copy.work_by_tag = dict(self.work_by_tag)
        return copy


class Job:
    """One unit of service demand submitted to a fair-share resource."""

    __slots__ = ("resource", "work", "remaining", "tag", "attrs", "event", "submitted_at")

    def __init__(
        self,
        resource: "FairShareResource",
        work: float,
        tag: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.resource = resource
        self.work = work
        self.remaining = work
        self.tag = tag
        self.attrs = attrs
        self.event: Event = resource.sim.event()
        self.submitted_at = resource.sim.now

    @property
    def elapsed(self) -> float:
        return self.resource.sim.now - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(tag={self.tag!r}, work={self.work:.3g}, "
            f"remaining={self.remaining:.3g})"
        )


class FairShareResource:
    """A resource that serves every active job at a set-dependent rate.

    Subclasses override :meth:`rates` to define the sharing policy.  The
    default splits a fixed aggregate ``capacity`` equally among active jobs.
    """

    #: Declares that :meth:`rates` is *group-structured*: every active job
    #: whose ``attrs[key]`` equals the same value gets the same rate, and
    #: :meth:`group_rate` computes it.  A ``(key, default)`` tuple, or
    #: ``None`` when rates have no structure the kernel can exploit.  Like
    #: the uniform fast path, this is a bit-identity contract: a subclass
    #: that overrides :meth:`rates` with a non-group curve MUST reset this
    #: to ``None``.
    _rate_groups: ClassVar[Optional[Tuple[str, str]]] = None

    def __init__(self, sim: Simulator, name: str, capacity: float = 1.0) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.stats = ResourceStats()
        self._jobs: List[Job] = []
        self._last_update = sim.now
        self._wake_generation = 0
        # The scalar fast path is only sound when rates() and uniform_rate()
        # describe the same policy.  A subclass that overrides rates() without
        # overriding uniform_rate() (a custom, possibly non-uniform curve)
        # silently keeps the allocation-free path disabled rather than
        # mispricing its jobs.
        cls = type(self)
        self._uniform_hook = (
            cls.rates is FairShareResource.rates
            or cls.uniform_rate is not FairShareResource.uniform_rate
        )
        # Let the simulator's kernel core install an accelerated engine on
        # this instance (a no-op for the reference python core).  Guarded so
        # bare test doubles without a core still work.
        core = getattr(sim, "core", None)
        if core is not None:
            core.attach_resource(self)

    # -- rate policy -------------------------------------------------------

    def rates(self, jobs: List[Job]) -> Dict[Job, float]:
        """Per-job service rate (work units per second) for the active set."""
        share = self.capacity / len(jobs)
        return {job: share for job in jobs}

    def uniform_rate(self, n: int) -> Optional[float]:
        """The common per-job rate when all ``n`` active jobs are served
        equally, or ``None`` when rates differ across the set.

        This is the allocation-free twin of :meth:`rates`: the kernel's hot
        paths (`_advance`/`_reschedule`/`_on_wake`) call it first and only
        fall back to the per-job dict when it returns ``None``.  Overrides
        MUST compute the exact same float as :meth:`rates` would (same
        expression, same operation order) -- event logs are bit-compared
        across versions.
        """
        return self.capacity / n

    def group_rate(self, value: str, n: int) -> float:
        """Per-job rate for a job whose ``attrs[key]`` is ``value`` when
        ``n`` jobs are active, for resources that declare ``_rate_groups``.

        Only called when ``_rate_groups`` is not ``None``.  Overrides MUST
        compute the exact same float :meth:`rates` would assign such a job
        (same expression, same operation order) -- event logs are
        bit-compared across kernel cores.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares _rate_groups but does not "
            "implement group_rate()"
        )

    # -- public API --------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def submit(self, work: float, tag: str = "", **attrs: Any) -> Job:
        """Submit ``work`` units; returns a :class:`Job` whose ``event`` fires
        with the job itself when service completes."""
        if work < 0:
            raise SimulationError(f"negative work: {work}")
        if not math.isfinite(work):
            raise SimulationError(f"work must be finite, got {work}")
        job = self._new_job(float(work), tag, attrs)
        if work == 0:
            job.event.succeed(job)
            return job
        self._advance()
        self._admit(job)
        self._reschedule()
        return job

    def _new_job(self, work: float, tag: str, attrs: Dict[str, Any]) -> Job:
        """Job factory hook; the vector core swaps in its array-backed job."""
        return Job(self, work, tag, attrs)

    def _admit(self, job: Job) -> None:
        """Add a job to the active set; the vector core also fills a slot."""
        self._jobs.append(job)

    def sync(self) -> None:
        """Bring cumulative counters up to the current instant.

        Counters normally advance only when the active-job set changes;
        samplers must call this before reading ``stats`` or long-running
        transfers would appear as bursts at their completion events.
        """
        self._advance()

    def notify_rates_changed(self) -> None:
        """Re-plan in-flight jobs after an external rate change.

        The completion horizon is normally recomputed only when the active
        set changes; callers that mutate the rate function itself (e.g. a
        fault-injection episode scaling a device's ``speed_factor``) must
        call this so the next wake-up reflects the new rates.  Call
        :meth:`sync` *before* mutating -- ``_advance`` prices the elapsed
        interval at the current rate function, so mutating first would
        retroactively apply the new rate to work already performed.
        """
        self._advance()
        self._reschedule()

    @property
    def queue_depth(self) -> int:
        """Jobs currently in service (the fair-share queue is the service
        set; there is no separate wait queue in the fluid model)."""
        return len(self._jobs)

    def sample_counters(self) -> Dict[str, Any]:
        """Cumulative counters extrapolated to ``sim.now`` WITHOUT mutating.

        The profiler's sampling probe must not perturb the simulation:
        :meth:`sync` prices elapsed work into ``stats`` and splits float
        accumulations, which shifts completion horizons by ULPs and would
        make a profiled run's event timeline differ from an unprofiled
        one.  This read-only twin extrapolates in-flight service at the
        current rate function instead, leaving ``stats``, every
        ``job.remaining``, and ``_last_update`` untouched.  The returned
        ``work_by_tag`` is a fresh dict (the stats dict plus in-flight
        extrapolation), so the disk probe can split read/write bandwidth.
        """
        stats = self.stats
        counters: Dict[str, Any] = {
            "busy_time": stats.busy_time,
            "work_done": stats.work_done,
            "concurrency_integral": stats.concurrency_integral,
            "occupancy_integral": stats.occupancy_integral,
            "queue_depth": float(len(self._jobs)),
            "work_by_tag": dict(stats.work_by_tag),
        }
        jobs = self._jobs
        dt = self.sim.now - self._last_update
        if dt <= 0 or not jobs:
            return counters
        uniform = self.uniform_rate(len(jobs)) if self._uniform_hook else None
        rates = None if uniform is not None else self.rates(jobs)
        moved = 0.0
        work_by_tag = counters["work_by_tag"]
        for job in jobs:
            step = uniform * dt if rates is None else rates[job] * dt
            if step > job.remaining:
                step = job.remaining
            moved += step
            if job.tag:
                work_by_tag[job.tag] = work_by_tag.get(job.tag, 0.0) + step
        counters["busy_time"] += dt
        counters["work_done"] += moved
        counters["concurrency_integral"] += len(jobs) * dt
        counters["occupancy_integral"] += self._occupied(len(jobs)) * dt
        return counters

    def utilization_between(self, busy_before: float, elapsed: float) -> float:
        """Helper for samplers: busy fraction given a previous busy_time."""
        if elapsed <= 0:
            return 0.0
        return max(0.0, min(1.0, (self.stats.busy_time - busy_before) / elapsed))

    # -- mechanics ---------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_update
        if dt <= 0:
            self._last_update = now
            return
        jobs = self._jobs
        if jobs:
            uniform = self.uniform_rate(len(jobs)) if self._uniform_hook else None
            rates = None if uniform is not None else self.rates(jobs)
            base_step = None if uniform is None else uniform * dt
            stats = self.stats
            work_by_tag = stats.work_by_tag
            moved = 0.0
            # Tag accounting is batched per *run* of equal tags: the dict is
            # read once when the tag changes and written once when it changes
            # back (or at the end), instead of a get+set per job.  The
            # accumulation order is unchanged, so every float -- and thus
            # every bit of the event log -- matches the per-job version.
            run_tag = ""
            run_total = 0.0
            for job in jobs:
                step = base_step if rates is None else rates[job] * dt
                if step > job.remaining:
                    step = job.remaining
                job.remaining -= step
                moved += step
                tag = job.tag
                if tag:
                    if tag != run_tag:
                        if run_tag:
                            work_by_tag[run_tag] = run_total
                        run_tag = tag
                        run_total = work_by_tag.get(tag, 0.0)
                    run_total += step
            if run_tag:
                work_by_tag[run_tag] = run_total
            stats.busy_time += dt
            stats.work_done += moved
            stats.concurrency_integral += len(jobs) * dt
            stats.occupancy_integral += self._occupied(len(jobs)) * dt
        self._last_update = now

    def _occupied(self, active: int) -> float:
        """Capacity units in use while ``active`` jobs are served.

        The default (1.0) means "the device is busy"; :class:`CpuResource`
        overrides this to count occupied cores so samplers can report
        mpstat-style utilisation.
        """
        return 1.0 if active else 0.0

    def _reschedule(self) -> None:
        self._wake_generation += 1
        jobs = self._jobs
        if not jobs:
            return
        generation = self._wake_generation
        uniform = self.uniform_rate(len(jobs)) if self._uniform_hook else None
        horizon = math.inf
        if uniform is not None:
            # One shared rate: the soonest completion belongs to the job with
            # the least remaining work (division by a positive constant is
            # monotone, so this is bit-identical to the per-job minimum).
            if uniform > 0:
                horizon = min(job.remaining for job in jobs) / uniform
        else:
            rates = self.rates(jobs)
            for job in jobs:
                rate = rates[job]
                if rate <= 0:
                    continue
                horizon = min(horizon, job.remaining / rate)
        if not math.isfinite(horizon):
            raise SimulationError(
                f"resource {self.name!r} has active jobs but zero service rate"
            )
        # Floor the horizon above the float resolution of the clock: a job
        # with a sliver of residual work must not schedule a wake-up that
        # fails to advance `now`, or the loop would spin forever.
        floor = max(1e-9, self.sim.now * 1e-11)
        self.sim.call_in(max(horizon, floor), self._on_wake, generation)

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a later membership change
        self._advance()
        jobs = self._jobs
        finished: List[Job] = []
        survivors: List[Job] = []
        if jobs:
            uniform = self.uniform_rate(len(jobs)) if self._uniform_hook else None
            rates = None if uniform is not None else self.rates(jobs)
            uniform_eps = 0.0 if uniform is None else uniform * 1e-6
            for job in jobs:
                # A job is done when its residual work is negligible either
                # relative to its size or in time-to-finish terms (< 1 us).
                threshold = max(
                    _ABSOLUTE_EPS,
                    job.work * _RELATIVE_EPS,
                    uniform_eps if rates is None else rates[job] * 1e-6,
                )
                if job.remaining <= threshold:
                    # Credit the sub-threshold residual before zeroing it:
                    # force-finishing must not leak work out of the
                    # conservation counters (bytes through a device must sum
                    # to the bytes requested).  Scheduling is untouched --
                    # stats never feed back into rates or horizons.
                    residual = job.remaining
                    if residual > 0.0:
                        stats = self.stats
                        stats.work_done += residual
                        if job.tag:
                            stats.work_by_tag[job.tag] = (
                                stats.work_by_tag.get(job.tag, 0.0) + residual
                            )
                    job.remaining = 0.0
                    finished.append(job)
                else:
                    survivors.append(job)
        self._jobs = survivors
        for job in finished:
            self.stats.jobs_completed += 1
            job.event.succeed(job)
        self._reschedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, active={len(self._jobs)})"


class CpuResource(FairShareResource):
    """A bank of CPU cores with processor-sharing semantics.

    Work is measured in *core-seconds*.  Each job demands at most one core;
    with ``k`` active jobs on ``cores`` cores every job runs at rate
    ``min(1, cores / k)``, which models the OS scheduler timeslicing threads
    once the core count is exceeded.  An optional ``speed_factor`` models
    per-node heterogeneity.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int,
        speed_factor: float = 1.0,
    ) -> None:
        if cores <= 0:
            raise SimulationError(f"cores must be positive, got {cores}")
        super().__init__(sim, name, capacity=float(cores))
        self.cores = cores
        self.speed_factor = speed_factor

    def rates(self, jobs: List[Job]) -> Dict[Job, float]:
        per_job = min(1.0, self.cores / len(jobs)) * self.speed_factor
        return {job: per_job for job in jobs}

    def uniform_rate(self, n: int) -> Optional[float]:
        return min(1.0, self.cores / n) * self.speed_factor

    def _occupied(self, active: int) -> float:
        return float(min(active, self.cores))

    def utilization(self, occupancy_before: float, elapsed: float) -> float:
        """CPU usage as mpstat would report it: occupied core-seconds over
        available core-seconds since the ``occupancy_before`` snapshot."""
        if elapsed <= 0:
            return 0.0
        available = self.cores * elapsed
        used = self.stats.occupancy_integral - occupancy_before
        return max(0.0, min(1.0, used / available))


class LatencyChannel:
    """A point-to-point message channel with fixed delivery latency.

    Used for the driver <-> executor control plane (task launch, completion
    and pool-resize notifications -- the messaging-protocol extension the
    paper describes in section 5.4).
    """

    def __init__(self, sim: Simulator, latency: float = 0.001) -> None:
        if latency < 0:
            raise SimulationError("latency must be non-negative")
        self.sim = sim
        self.latency = latency
        self.messages_sent = 0

    def send(self, handler, message: Any) -> None:
        """Deliver ``message`` to ``handler(message)`` after the latency."""
        self.messages_sent += 1
        self.sim.call_in(self.latency, handler, message)
