"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the Spark-like engine runs:

* :mod:`repro.simulation.core` -- the event loop, processes (generator-based
  coroutines), timeouts, and event combinators.
* :mod:`repro.simulation.resources` -- fair-share resources whose aggregate
  service rate depends on the number of concurrent jobs.  These model CPUs,
  disks, and network links.
* :mod:`repro.simulation.randomness` -- named, seeded random streams so that
  every experiment is reproducible.
* :mod:`repro.simulation.kernel` -- pluggable kernel cores: the pure-Python
  reference (default) and a numpy-vectorized fair-share engine, selected
  via ``Simulator(core=...)`` / ``--core`` / ``REPRO_CORE``.

The kernel is intentionally small and dependency-free (numpy is optional,
used only by the ``vector`` core); it is a purpose-built replacement for
the real cluster the paper ran on (see DESIGN.md section 2).
"""

from repro.simulation.kernel import (
    CoreUnavailableError,
    KernelCore,
    core_available,
    resolve_core,
)
from repro.simulation.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simulation.randomness import RandomStreams
from repro.simulation.resources import (
    CpuResource,
    FairShareResource,
    Job,
    ResourceStats,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CoreUnavailableError",
    "CpuResource",
    "Event",
    "FairShareResource",
    "Interrupt",
    "Job",
    "KernelCore",
    "Process",
    "RandomStreams",
    "ResourceStats",
    "SimulationError",
    "Simulator",
    "Timeout",
    "core_available",
    "resolve_core",
]
