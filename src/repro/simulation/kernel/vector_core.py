"""Vectorized fair-share engine: per-resource job state in numpy arrays.

The reference ``_advance``/``_reschedule``/``_on_wake`` loops in
``resources.py`` are per-job Python: one iteration per active job per
membership change, which makes a resource with *n* concurrent jobs cost
O(n) interpreted work per event.  This core keeps each resource's job
state in parallel numpy arrays (remaining work, original work, tag code,
alive mask) so the uniform-rate paths become a handful of C-level array
ops regardless of n.

Bit-identity with the reference (the contract in ``kernel.base``) rests on
verified properties of the numpy operations used:

* ``np.minimum(remaining, base)`` computes exactly the reference clamp
  ``base if base <= r else r`` element-wise (same IEEE compare + select).
* ``np.cumsum(steps)[-1]`` is a strict left-to-right accumulation, bit
  identical to the reference's ``moved += step`` loop; interleaved zero
  steps from dead slots cannot change any partial sum (``x + 0.0 == x``
  for the non-negative accumulator).
* Tag totals accumulate per contiguous run in the reference, but each
  run only continues the tag's stored value (splitting a run is
  value-preserving), so per *tag* the accumulation is a single sequential
  chain over that tag's jobs in list order.  A cumsum over
  ``[previous_total, step, step, ...]`` -- the steps gathered per tag
  code in slot order -- equals that chain bit for bit.  Iterating tag
  codes in interning order preserves the dict's insertion order too: a
  live lower-code job sitting *after* a higher-code job implies an
  earlier same-tag job already completed (jobs only leave by completing,
  which credits the tag), so never-credited tags always appear in
  interning == slot order.
* ``max`` over non-NaN floats is associative, so the vectorized
  completion threshold ``np.maximum(work * REL, max(ABS, uniform_eps))``
  equals the reference three-way ``max``.

Dead slots are tombstones: ``remaining = +inf`` (never below a finite
completion threshold, never the horizon minimum), ``alive = 0.0`` (mask
multiply zeroes their steps), tag code 0 (excluded from tag accounting).
Slots are compacted only when tombstones outnumber live jobs, so detach
stays O(1) amortized.  ``resource._jobs`` remains a compact live-only
list throughout -- subclass rate curves (e.g. the storage device's
mixed-op scan) and samplers iterate it directly.

Below ``_SCALAR_CUTOFF`` live jobs the fixed per-call numpy overhead
exceeds the vector win, so small sets round-trip through ``tolist()`` and
run the exact reference loop over plain floats (C-speed gather/scatter,
identical expressions).

Resources that declare ``_rate_groups`` (e.g. the storage device, whose
rate depends only on the job's ``op``) get a vectorized non-uniform path
too: group values are interned to integer codes, ``group_rate`` is called
once per *live group* instead of once per job, and per-slot rates are a
fancy-index gather from that tiny lookup table.  Every per-slot float
(``rate * dt`` step, ``remaining / rate`` horizon quotient,
``rate * 1e-6`` threshold term) is then the same expression the reference
evaluates per job, so bit-identity holds exactly as in the uniform case.
Resources with genuinely unstructured rates always take the reference
per-job dict path.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

try:  # numpy is optional; kernel/__init__ gates selection on availability
    import numpy as np
except ImportError:  # pragma: no cover - exercised via registry tests
    np = None  # type: ignore[assignment]

from repro.simulation.core import SimulationError
from repro.simulation.kernel.base import KernelCore
from repro.simulation.resources import _ABSOLUTE_EPS, _RELATIVE_EPS, Job

#: The parent class stores ``remaining`` in a slot; keep that descriptor so
#: detached jobs (finished, or never attached) still have scalar storage
#: behind the :class:`_VectorJob` property.
_JOB_REMAINING = Job.__dict__["remaining"]

#: Below this many live jobs the scalar path wins (measured; see
#: PERFORMANCE.md "Kernel cores").
_SCALAR_CUTOFF = 32

_MIN_CAPACITY = 64


class VectorCore(KernelCore):
    """Numpy-backed fair-share engine (``--core vector``)."""

    name = "vector"

    @classmethod
    def is_available(cls) -> bool:
        return np is not None

    def bind(self, sim: Any) -> None:
        if np is None:  # pragma: no cover - registry refuses to resolve first
            raise SimulationError("vector core requires numpy")

    def attach_resource(self, resource: Any) -> None:
        # Only resources the engine can batch benefit: uniform-capable ones
        # and group-structured ones.  A subclass with a custom, unstructured
        # rates() keeps the reference implementation, exactly as the scalar
        # fast path already does.
        if resource._uniform_hook or type(resource)._rate_groups is not None:
            _VectorFairShare(resource)

    def metadata(self) -> Dict[str, Any]:
        return {
            "core": self.name,
            "numpy": getattr(np, "__version__", None),
            "scalar_cutoff": _SCALAR_CUTOFF,
        }


class _VectorJob(Job):
    """A job whose ``remaining`` lives in its resource's state arrays.

    While attached (``_slot >= 0``) reads and writes go to the array slot;
    once detached the parent's slot storage takes over, holding the final
    0.0 the reference implementation leaves behind.
    """

    __slots__ = ("_vec", "_slot", "_code", "_gcode")

    def __init__(
        self,
        resource: Any,
        work: float,
        tag: str,
        attrs: Dict[str, Any],
    ) -> None:
        # Job.__init__ assigns ``remaining``; route that first write to the
        # parent slot until _append() adopts the job into the arrays.
        self._vec: Optional["_VectorFairShare"] = None
        self._slot = -1
        self._code = 0
        self._gcode = 0
        super().__init__(resource, work, tag, attrs)

    @property
    def remaining(self) -> float:
        slot = self._slot
        if slot < 0:
            return _JOB_REMAINING.__get__(self)
        return float(self._vec.remaining[slot])

    @remaining.setter
    def remaining(self, value: float) -> None:
        slot = self._slot
        if slot < 0:
            _JOB_REMAINING.__set__(self, value)
        else:
            self._vec.remaining[slot] = value


class _VectorFairShare:
    """Array-backed engine for one fair-share resource.

    Installing an instance rebinds the resource's ``_new_job`` / ``_admit``
    / ``_advance`` / ``_reschedule`` / ``_on_wake`` to bound methods of
    this object; ``submit`` itself stays the reference implementation (so
    subclass overrides like the storage device's op accounting compose).
    The resource's public surface (``stats``, ``_jobs``, ``_last_update``,
    ``_wake_generation``, ``sample_counters``) is unchanged, so samplers,
    the fault injector, and subclass rate curves need no adaptation.
    """

    __slots__ = (
        "resource",
        "remaining",
        "work",
        "work_rel",
        "alive",
        "tag_codes",
        "group_codes",
        "slot_jobs",
        "size",
        "live",
        "dead",
        "rate_key",
        "rate_default",
        "_tag_code",
        "_code_tags",
        "_code_live",
        "_group_code",
        "_gcode_values",
        "_gcode_live",
        "_scratch",
        "_scratch2",
        "_carry",
    )

    def __init__(self, resource: Any) -> None:
        self.resource = resource
        self.remaining = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self.work = np.empty(_MIN_CAPACITY, dtype=np.float64)
        #: ``work * _RELATIVE_EPS`` cached per slot: the per-wake completion
        #: threshold recomputes only the uniform-dependent floor.
        self.work_rel = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self.alive = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self.tag_codes = np.empty(_MIN_CAPACITY, dtype=np.int64)
        #: Rate-group code per slot (resources declaring ``_rate_groups``).
        self.group_codes = np.empty(_MIN_CAPACITY, dtype=np.int64)
        #: Reusable per-advance buffers (steps / thresholds / gathered
        #: rates, carry+cumsum); sized with the slot arrays so hot paths
        #: allocate nothing.
        self._scratch = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._scratch2 = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._carry = np.empty(_MIN_CAPACITY + 1, dtype=np.float64)
        #: Per-slot job object; ``None`` marks a tombstone.
        self.slot_jobs: List[Optional[_VectorJob]] = []
        self.size = 0  # slots in use (live + tombstones)
        self.live = 0
        self.dead = 0
        groups = type(resource)._rate_groups
        self.rate_key: Optional[str] = groups[0] if groups else None
        self.rate_default: str = groups[1] if groups else ""
        self._tag_code: Dict[str, int] = {"": 0}
        self._code_tags: List[str] = [""]
        #: Live jobs per tag code (index 0 = untagged); lets the advance
        #: loop touch only tags that are actually present.
        self._code_live: List[int] = [0]
        #: Rate-group interning: value -> code, code -> value, live count
        #: per code (``group_rate`` is called once per live code, not once
        #: per job).
        self._group_code: Dict[str, int] = {}
        self._gcode_values: List[str] = []
        self._gcode_live: List[int] = []
        resource._vector_state = self
        resource._new_job = self._new_job
        resource._admit = self._append
        resource._advance = self.advance
        resource._reschedule = self.reschedule
        resource._on_wake = self.on_wake

    # -- membership --------------------------------------------------------

    def _new_job(self, work: float, tag: str, attrs: Dict[str, Any]) -> Job:
        return _VectorJob(self.resource, work, tag, attrs)

    def _append(self, job: _VectorJob) -> None:
        slot = self.size
        if slot == len(self.remaining):
            self._grow()
        self.remaining[slot] = job.work
        self.work[slot] = job.work
        self.work_rel[slot] = job.work * _RELATIVE_EPS
        self.alive[slot] = 1.0
        code = self._tag_code.get(job.tag)
        if code is None:
            code = len(self._code_tags)
            self._tag_code[job.tag] = code
            self._code_tags.append(job.tag)
            self._code_live.append(0)
        self.tag_codes[slot] = code
        self._code_live[code] += 1
        if self.rate_key is not None:
            value = job.attrs.get(self.rate_key, self.rate_default)
            gcode = self._group_code.get(value)
            if gcode is None:
                gcode = len(self._gcode_values)
                self._group_code[value] = gcode
                self._gcode_values.append(value)
                self._gcode_live.append(0)
            self.group_codes[slot] = gcode
            self._gcode_live[gcode] += 1
            job._gcode = gcode
        self.slot_jobs.append(job)
        job._vec = self
        job._slot = slot
        job._code = code
        self.size = slot + 1
        self.live += 1
        self.resource._jobs.append(job)

    def _grow(self) -> None:
        capacity = 2 * len(self.remaining)
        for name in (
            "remaining", "work", "work_rel", "alive", "tag_codes",
            "group_codes",
        ):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)
        self._scratch = np.empty(capacity, dtype=np.float64)
        self._scratch2 = np.empty(capacity, dtype=np.float64)
        self._carry = np.empty(capacity + 1, dtype=np.float64)

    def _detach(self, slot: int, job: _VectorJob) -> None:
        self.remaining[slot] = math.inf
        self.alive[slot] = 0.0
        self.tag_codes[slot] = 0
        self._code_live[job._code] -= 1
        if self.rate_key is not None:
            self.group_codes[slot] = 0
            self._gcode_live[job._gcode] -= 1
        self.slot_jobs[slot] = None
        job._slot = -1
        job._vec = None
        # The reference zeroes remaining at force-finish; preserve that for
        # anything inspecting the job after completion.
        _JOB_REMAINING.__set__(job, 0.0)
        self.live -= 1
        self.dead += 1

    def _compact(self) -> None:
        n = self.size
        keep = self.alive[:n] > 0.5
        capacity = len(self.remaining)
        for name in (
            "remaining", "work", "work_rel", "alive", "tag_codes",
            "group_codes",
        ):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            kept = old[:n][keep]
            new[: len(kept)] = kept
            setattr(self, name, new)
        survivors = [job for job in self.slot_jobs if job is not None]
        for slot, job in enumerate(survivors):
            job._slot = slot
        self.slot_jobs = survivors
        self.size = len(survivors)
        self.dead = 0

    # -- advance -----------------------------------------------------------

    def advance(self) -> None:
        resource = self.resource
        now = resource.sim.now
        dt = now - resource._last_update
        if dt <= 0:
            resource._last_update = now
            return
        if self.live:
            uniform = resource.uniform_rate(self.live)
            if uniform is not None:
                if self.live < _SCALAR_CUTOFF:
                    self._advance_scalar(dt, uniform)
                else:
                    self._advance_vector(dt, uniform)
            elif self.rate_key is not None and self.live >= _SCALAR_CUTOFF:
                self._advance_groups(dt)
            else:
                self._advance_fallback(dt)
        resource._last_update = now

    def _group_rates(self, n: int) -> Any:
        """Per-slot rate array for a group-structured resource.

        Calls ``group_rate`` once per live group (2-3 python calls instead
        of one per job), then gathers per-slot rates from the tiny lookup
        table.  Codes with no live job get a benign 1.0 placeholder: their
        slots are tombstones, whose steps are masked to zero and whose
        ``inf`` remaining keeps every quotient/threshold inert.  Returns
        ``(rates, all_positive)``; callers that need positive rates (the
        horizon) fall back to the reference loop when the flag is false.
        """
        resource = self.resource
        live = self.live
        values = self._gcode_values
        lut = np.empty(len(values), dtype=np.float64)
        positive = True
        for gcode, count in enumerate(self._gcode_live):
            if count:
                rate = resource.group_rate(values[gcode], live)
                if rate <= 0:
                    positive = False
                lut[gcode] = rate
            else:
                lut[gcode] = 1.0
        rates = np.take(lut, self.group_codes[:n], out=self._scratch2[:n])
        return rates, positive

    def _advance_vector(self, dt: float, uniform: float) -> None:
        resource = self.resource
        n = self.size
        rem = self.remaining[:n]
        steps = np.minimum(rem, uniform * dt, out=self._scratch[:n])
        if self.dead:
            steps *= self.alive[:n]  # dead slots take a zero step
        rem -= steps
        moved = float(steps.cumsum()[-1])
        stats = resource.stats
        self._credit_tags(steps, n, stats.work_by_tag)
        stats.busy_time += dt
        stats.work_done += moved
        stats.concurrency_integral += self.live * dt
        stats.occupancy_integral += resource._occupied(self.live) * dt

    def _advance_groups(self, dt: float) -> None:
        # Same shape as the uniform vector path, with the scalar
        # ``uniform * dt`` replaced by a per-slot ``rates * dt`` -- each
        # element is the very multiply the reference fallback performs for
        # that job (rates() delegates to group_rate()).
        resource = self.resource
        n = self.size
        rates, _ = self._group_rates(n)
        rem = self.remaining[:n]
        rates *= dt  # in place: scratch2 is refilled on every gather
        steps = np.minimum(rem, rates, out=self._scratch[:n])
        if self.dead:
            steps *= self.alive[:n]
        rem -= steps
        moved = float(steps.cumsum()[-1])
        stats = resource.stats
        self._credit_tags(steps, n, stats.work_by_tag)
        stats.busy_time += dt
        stats.work_done += moved
        stats.concurrency_integral += self.live * dt
        stats.occupancy_integral += resource._occupied(self.live) * dt

    def _credit_tags(self, steps: Any, n: int, work_by_tag: Dict[str, float]) -> None:
        code_live = self._code_live
        single = 0
        multi = False
        for code in range(1, len(code_live)):
            if code_live[code]:
                if single:
                    multi = True
                    break
                single = code
        if not single:
            return
        # Per-tag accumulation: the reference's run-batched loop reduces
        # to one sequential chain per tag in list order (see module
        # docstring), which a carry-prepended cumsum over that tag's
        # gathered steps reproduces bit for bit.  Dead slots carry code
        # 0 and a zero step, so they never pollute a tag.
        code_tags = self._code_tags
        if not multi and not code_live[0]:
            # Every live job shares one tag (the common device phase):
            # interleaved zero steps from tombstones cannot change any
            # partial sum of the non-negative chain.
            tag = code_tags[single]
            buf = self._carry[: n + 1]
            buf[0] = work_by_tag.get(tag, 0.0)
            buf[1:] = steps
            work_by_tag[tag] = float(buf.cumsum()[-1])
        else:
            codes = self.tag_codes[:n]
            for code in range(single, len(code_live)):
                if not code_live[code]:
                    continue
                tag = code_tags[code]
                seg = steps[codes == code]
                buf = np.empty(seg.size + 1, dtype=np.float64)
                buf[0] = work_by_tag.get(tag, 0.0)
                buf[1:] = seg
                work_by_tag[tag] = float(buf.cumsum()[-1])

    def _advance_scalar(self, dt: float, uniform: float) -> None:
        # The reference loop verbatim, over plain floats gathered from the
        # arrays (numpy scalar indexing in a loop would be slower than the
        # original; a tolist round-trip is not).
        resource = self.resource
        n = self.size
        rem_list = self.remaining[:n].tolist()
        base_step = uniform * dt
        stats = resource.stats
        work_by_tag = stats.work_by_tag
        moved = 0.0
        run_tag = ""
        run_total = 0.0
        for slot, job in enumerate(self.slot_jobs):
            if job is None:
                continue
            remaining = rem_list[slot]
            step = base_step
            if step > remaining:
                step = remaining
            rem_list[slot] = remaining - step
            moved += step
            tag = job.tag
            if tag:
                if tag != run_tag:
                    if run_tag:
                        work_by_tag[run_tag] = run_total
                    run_tag = tag
                    run_total = work_by_tag.get(tag, 0.0)
                run_total += step
        if run_tag:
            work_by_tag[run_tag] = run_total
        self.remaining[:n] = rem_list
        stats.busy_time += dt
        stats.work_done += moved
        stats.concurrency_integral += self.live * dt
        stats.occupancy_integral += resource._occupied(self.live) * dt

    def _advance_fallback(self, dt: float) -> None:
        # Non-uniform rates (e.g. a device serving mixed read/write sets):
        # per-job dict pricing, identical to the reference's rates() branch.
        resource = self.resource
        jobs = resource._jobs
        rates = resource.rates(jobs)
        n = self.size
        rem_list = self.remaining[:n].tolist()
        stats = resource.stats
        work_by_tag = stats.work_by_tag
        moved = 0.0
        run_tag = ""
        run_total = 0.0
        for job in jobs:
            slot = job._slot
            remaining = rem_list[slot]
            step = rates[job] * dt
            if step > remaining:
                step = remaining
            rem_list[slot] = remaining - step
            moved += step
            tag = job.tag
            if tag:
                if tag != run_tag:
                    if run_tag:
                        work_by_tag[run_tag] = run_total
                    run_tag = tag
                    run_total = work_by_tag.get(tag, 0.0)
                run_total += step
        if run_tag:
            work_by_tag[run_tag] = run_total
        self.remaining[:n] = rem_list
        stats.busy_time += dt
        stats.work_done += moved
        stats.concurrency_integral += len(jobs) * dt
        stats.occupancy_integral += resource._occupied(len(jobs)) * dt

    # -- completion planning ----------------------------------------------

    def reschedule(self) -> None:
        resource = self.resource
        resource._wake_generation += 1
        if not self.live:
            return
        generation = resource._wake_generation
        uniform = resource.uniform_rate(self.live)
        horizon = math.inf
        if uniform is not None:
            if uniform > 0:
                # Tombstones hold +inf, so the array minimum is the live
                # minimum; division by a positive constant is monotone.
                horizon = float(self.remaining[: self.size].min()) / uniform
        else:
            grouped = (
                self.rate_key is not None and self.live >= _SCALAR_CUTOFF
            )
            if grouped:
                n = self.size
                rates, positive = self._group_rates(n)
                if positive:
                    # Each quotient is the reference's per-job
                    # ``remaining / rate`` float exactly; tombstones give
                    # ``inf / 1.0 = inf``.  The minimum of non-NaN floats
                    # is order-independent.
                    quot = np.divide(
                        self.remaining[:n], rates, out=self._scratch[:n]
                    )
                    horizon = float(quot.min())
                else:
                    grouped = False
            if not grouped:
                rates_map = resource.rates(resource._jobs)
                rem = self.remaining
                for job in resource._jobs:
                    rate = rates_map[job]
                    if rate <= 0:
                        continue
                    candidate = float(rem[job._slot]) / rate
                    if candidate < horizon:
                        horizon = candidate
        if not math.isfinite(horizon):
            raise SimulationError(
                f"resource {resource.name!r} has active jobs but zero service rate"
            )
        floor = max(1e-9, resource.sim.now * 1e-11)
        resource.sim.call_in(max(horizon, floor), self.on_wake, generation)

    def on_wake(self, generation: int) -> None:
        resource = self.resource
        if generation != resource._wake_generation:
            return  # superseded by a later membership change
        self.advance()
        if self.live:
            uniform = resource.uniform_rate(self.live)
            if uniform is not None:
                self._complete_uniform(uniform)
            elif self.rate_key is not None and self.live >= _SCALAR_CUTOFF:
                self._complete_groups()
            else:
                self._complete_fallback()
        self.reschedule()

    def _complete_uniform(self, uniform: float) -> None:
        n = self.size
        rem = self.remaining[:n]
        floor_eps = _ABSOLUTE_EPS
        uniform_eps = uniform * 1e-6
        if uniform_eps > floor_eps:
            floor_eps = uniform_eps
        thresholds = np.maximum(self.work_rel[:n], floor_eps,
                                out=self._scratch[:n])
        self._finish(np.flatnonzero(rem <= thresholds), rem)

    def _complete_groups(self) -> None:
        n = self.size
        rem = self.remaining[:n]
        rates, _ = self._group_rates(n)
        # max over non-NaN floats is associative/commutative, so regrouping
        # the reference's three-way max(ABS, work*REL, rate*1e-6) per slot
        # yields the identical float (max returns one operand exactly).
        rates *= 1e-6  # in place: scratch2 is refilled on every gather
        thresholds = np.maximum(self.work_rel[:n], _ABSOLUTE_EPS,
                                out=self._scratch[:n])
        np.maximum(thresholds, rates, out=thresholds)
        self._finish(np.flatnonzero(rem <= thresholds), rem)

    def _finish(self, finished_slots: Any, rem: Any) -> None:
        if not len(finished_slots):
            return
        resource = self.resource
        stats = resource.stats
        work_by_tag = stats.work_by_tag
        finished: List[_VectorJob] = []
        for slot in finished_slots.tolist():
            job = self.slot_jobs[slot]
            residual = float(rem[slot])
            # Credit the sub-threshold residual before tombstoning, exactly
            # as the reference does: conservation counters must balance.
            if residual > 0.0:
                stats.work_done += residual
                if job.tag:
                    work_by_tag[job.tag] = work_by_tag.get(job.tag, 0.0) + residual
            self._detach(slot, job)
            finished.append(job)
        resource._jobs = [job for job in resource._jobs if job._slot >= 0]
        for job in finished:
            stats.jobs_completed += 1
            job.event.succeed(job)
        if self.dead > self.live and self.dead >= _MIN_CAPACITY // 2:
            self._compact()

    def _complete_fallback(self) -> None:
        resource = self.resource
        jobs = resource._jobs
        rates = resource.rates(jobs)
        stats = resource.stats
        work_by_tag = stats.work_by_tag
        rem = self.remaining
        finished: List[_VectorJob] = []
        for job in jobs:
            slot = job._slot
            remaining = float(rem[slot])
            threshold = max(
                _ABSOLUTE_EPS,
                job.work * _RELATIVE_EPS,
                rates[job] * 1e-6,
            )
            if remaining <= threshold:
                if remaining > 0.0:
                    stats.work_done += remaining
                    if job.tag:
                        work_by_tag[job.tag] = (
                            work_by_tag.get(job.tag, 0.0) + remaining
                        )
                self._detach(slot, job)
                finished.append(job)
        if finished:
            resource._jobs = [job for job in jobs if job._slot >= 0]
            for job in finished:
                stats.jobs_completed += 1
                job.event.succeed(job)
            if self.dead > self.live and self.dead >= _MIN_CAPACITY // 2:
                self._compact()
