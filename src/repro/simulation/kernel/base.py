"""The kernel-core interface: what a pluggable simulation backend provides.

A *kernel core* is the narrow seam between the deterministic discrete-event
machinery (``repro.simulation.core``) and an implementation strategy for its
two hot loops:

1. **The event queue** -- a binary heap of ``(when, sequence, payload)``
   tuples managed with :mod:`heapq`, where ``payload`` is an
   :class:`~repro.simulation.core.Event` or a
   :class:`~repro.simulation.core._DeferredCall`.  ``sequence`` is the
   monotonically increasing insertion counter shared by ``_schedule`` and
   ``call_in``; it breaks ties between entries scheduled for the same
   instant, which is what makes the kernel fully deterministic.
   Cancellation is cooperative (generation guards on the callback side),
   so a queue never needs random removal.  :meth:`KernelCore.create_queue`
   supplies the backing list; the push/pop sites stay inlined in
   :class:`~repro.simulation.core.Simulator` so the reference core pays
   zero indirection per event.

2. **Fair-share advance arithmetic** -- the ``_advance`` / ``_reschedule``
   / ``_on_wake`` loops of
   :class:`~repro.simulation.resources.FairShareResource`, which price
   elapsed time into per-job remaining work and pick the next completion.
   :meth:`KernelCore.attach_resource` may install an accelerated engine on
   a resource instance (binding replacement methods); doing nothing keeps
   the reference implementation.

Backend contract (bit-identity)
-------------------------------

Event logs are byte-compared across backends, and resource counters
(``work_done``, ``work_by_tag``, ``busy_time``, the integrals) flow back
into the timeline through monitoring samplers and the adaptive policy.  An
alternative core must therefore reproduce the reference *bit for bit*, not
merely approximately:

* every float must come from the same IEEE-754 expressions applied in the
  same order as the reference loops in ``resources.py`` (e.g. a batched
  accumulation must be strictly left-to-right, matching ``+=``);
* queue tie-breaks must preserve the shared sequence counter semantics --
  one increment per push, in program order;
* dict key insertion order (``work_by_tag``) must be preserved, because
  dict order survives into serialized metrics snapshots.

``tests/test_golden_log.py`` and the cross-backend fuzz suite in
``tests/simulation/test_kernel_cores.py`` enforce this contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.core import Simulator
    from repro.simulation.resources import FairShareResource


class KernelCore:
    """Base class for kernel cores.

    The defaults implement the *reference* behaviour: a plain list for the
    heap and no acceleration hooks, so the pure-Python paths in
    ``core.py``/``resources.py`` run untouched.  Subclasses override only
    what they accelerate.
    """

    #: Registry name (``--core <name>`` on the CLI).
    name: ClassVar[str] = "base"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this core can run on the current host."""
        return True

    def create_queue(self) -> List[tuple]:
        """Return the backing store for the simulator's event heap."""
        return []

    def bind(self, sim: "Simulator") -> None:
        """Called once by :class:`Simulator.__init__` after queue creation."""

    def attach_resource(self, resource: "FairShareResource") -> None:
        """Called once per fair-share resource, at the end of its __init__.

        An accelerated core may install replacement ``submit`` /
        ``_advance`` / ``_reschedule`` / ``_on_wake`` bound methods on the
        instance here.  The default installs nothing.
        """

    def metadata(self) -> Dict[str, Any]:
        """Descriptive metadata for bench output and run records."""
        return {"core": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
