"""The reference kernel core: pure Python, zero indirection.

This core installs nothing.  The event loop in
:class:`~repro.simulation.core.Simulator` and the fair-share loops in
:class:`~repro.simulation.resources.FairShareResource` *are* the
implementation; keeping them as plain methods (rather than routing through
the core object) means selecting ``--core python`` costs exactly nothing
relative to the pre-interface kernel -- important because
``repro bench --check`` gates those paths against committed floors.

Every other core is defined by being observably identical to this one
(see the backend contract in :mod:`repro.simulation.kernel.base`).
"""

from __future__ import annotations

from repro.simulation.kernel.base import KernelCore


class PythonCore(KernelCore):
    """Pure-Python reference backend (the default)."""

    name = "python"
