"""Pluggable kernel cores: backend registry and selection.

Two backends ship behind the :class:`~repro.simulation.kernel.base.KernelCore`
interface:

* ``python`` -- the pure-Python reference (the default).  Always available.
* ``vector`` -- numpy-backed fair-share arithmetic.  Available only when
  numpy is importable.

Selection (:func:`resolve_core`):

* an explicit name (``Simulator(core="vector")``, ``--core vector``) is
  strict -- an unavailable backend raises :class:`CoreUnavailableError`
  (the CLI maps this to exit code 2);
* no selection consults the ``REPRO_CORE`` environment variable, then
  defaults to ``python``; an env-selected backend that is unavailable
  falls back to ``python`` with a :class:`RuntimeWarning` instead of
  failing, so e.g. ``REPRO_CORE=vector pytest`` degrades gracefully on a
  numpy-free host.

Cores are stateless singletons (all per-resource state lives in objects
attached to the resource), so resolution caches one instance per name.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Union

from repro.simulation.kernel.base import KernelCore
from repro.simulation.kernel.python_core import PythonCore

__all__ = [
    "CORE_NAMES",
    "CoreUnavailableError",
    "DEFAULT_CORE",
    "ENV_VAR",
    "KernelCore",
    "core_available",
    "default_core_name",
    "resolve_core",
]

ENV_VAR = "REPRO_CORE"
CORE_NAMES = ("python", "vector")
DEFAULT_CORE = "python"


class CoreUnavailableError(RuntimeError):
    """An explicitly requested kernel core cannot run on this host."""


_instances: Dict[str, KernelCore] = {}


def core_available(name: str) -> bool:
    """Whether the named backend can run here (imports lazily)."""
    if name == "python":
        return True
    if name == "vector":
        from repro.simulation.kernel.vector_core import VectorCore

        return VectorCore.is_available()
    return False


def default_core_name() -> str:
    """The backend used when no explicit selection is made."""
    return os.environ.get(ENV_VAR) or DEFAULT_CORE


def _instantiate(name: str) -> KernelCore:
    core = _instances.get(name)
    if core is None:
        if name == "python":
            core = PythonCore()
        else:
            from repro.simulation.kernel.vector_core import VectorCore

            core = VectorCore()
        _instances[name] = core
    return core


def resolve_core(
    spec: Union[str, KernelCore, None] = None,
) -> KernelCore:
    """Resolve a core selector to a :class:`KernelCore` instance.

    ``spec`` may be a :class:`KernelCore` (returned as-is), a backend name
    (strict), or ``None`` (``REPRO_CORE`` env / default, with graceful
    fallback).  See the module docstring for the exact semantics.
    """
    if isinstance(spec, KernelCore):
        return spec
    strict = spec is not None
    name = spec if spec is not None else default_core_name()
    if name not in CORE_NAMES:
        if strict:
            raise CoreUnavailableError(
                f"unknown kernel core {name!r}; expected one of {CORE_NAMES}"
            )
        warnings.warn(
            f"{ENV_VAR}={name!r} names no known kernel core "
            f"(expected one of {CORE_NAMES}); using {DEFAULT_CORE!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        name = DEFAULT_CORE
    elif not core_available(name):
        if strict:
            raise CoreUnavailableError(
                f"kernel core {name!r} is unavailable on this host "
                "(numpy is not installed)"
            )
        warnings.warn(
            f"kernel core {name!r} is unavailable (numpy is not installed); "
            f"falling back to {DEFAULT_CORE!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        name = DEFAULT_CORE
    return _instantiate(name)
