"""OS-level monitoring analogues over the simulated cluster.

The paper measures its systems with standard Linux tooling; each tool has a
direct counterpart here:

* ``mpstat`` (per-stage CPU usage, Fig. 1)    -> :mod:`repro.monitoring.mpstat`
* ``iostat`` (disk utilisation, Fig. 5)       -> :mod:`repro.monitoring.iostat`
* ``strace`` epoll accounting (ε, section 5.1) -> :mod:`repro.monitoring.strace`
* Spark metrics sampling (µ, Fig. 12)          -> :class:`MonitoringService`

:class:`MonitoringService` polls every node once per simulated second while a
stage is running and appends :class:`repro.engine.metrics.ResourceSample`
rows to the run recorder; the per-tool modules aggregate those rows into the
paper's views.
"""

from repro.monitoring.sampler import MonitoringService
from repro.monitoring.mpstat import stage_cpu_usage, stage_io_wait
from repro.monitoring.iostat import stage_disk_utilization, stage_disk_throughput
from repro.monitoring.strace import EpollSensor

__all__ = [
    "EpollSensor",
    "MonitoringService",
    "stage_cpu_usage",
    "stage_disk_throughput",
    "stage_disk_utilization",
    "stage_io_wait",
]
