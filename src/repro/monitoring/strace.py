"""strace analogue: epoll-wait-time accounting per executor.

The paper's monitor uses ``strace`` to accumulate the time an executor's
threads spend in ``epoll_wait`` -- i.e. blocked on file-descriptor events for
disk or network I/O.  In the simulator every blocking I/O completion is
observed directly, so the sensor is a snapshot-and-diff view over the
executor's monotonically increasing counters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EpollReading:
    """One interval's worth of sensor data."""

    epoll_wait_seconds: float
    io_bytes: float
    tasks_completed: int
    elapsed: float

    @property
    def throughput(self) -> float:
        """µ: task I/O bytes per second over the interval."""
        return self.io_bytes / self.elapsed if self.elapsed > 0 else 0.0


class EpollSensor:
    """Interval-based sensor over one executor's I/O counters."""

    def __init__(self, executor) -> None:
        self.executor = executor
        self._mark_time = 0.0
        self._mark_wait = 0.0
        self._mark_bytes = 0.0
        self._mark_tasks = 0
        self.reset()

    def reset(self) -> None:
        """Begin a new measurement interval at the current instant."""
        wait, io_bytes, tasks = self.executor.sensor_snapshot()
        self._mark_time = self.executor.ctx.sim.now
        self._mark_wait = wait
        self._mark_bytes = io_bytes
        self._mark_tasks = tasks

    def read(self) -> EpollReading:
        """Measurements accumulated since the last :meth:`reset`."""
        wait, io_bytes, tasks = self.executor.sensor_snapshot()
        return EpollReading(
            epoll_wait_seconds=wait - self._mark_wait,
            io_bytes=io_bytes - self._mark_bytes,
            tasks_completed=tasks - self._mark_tasks,
            elapsed=self.executor.ctx.sim.now - self._mark_time,
        )
