"""Per-second resource sampling while stages run.

The service keeps cumulative-counter snapshots per node and, once per
simulated second during a stage, converts counter deltas into utilisation
and throughput rates -- the same windowed view ``mpstat``/``iostat`` give
the paper's authors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.metrics import ResourceSample


@dataclass
class _NodeSnapshot:
    time: float
    cpu_occupancy: float
    disk_busy: float
    disk_read: float
    disk_write: float


class MonitoringService:
    """Drives per-second sampling of every node during stage execution."""

    def __init__(self, ctx, interval: float = 1.0, enabled: bool = True) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.ctx = ctx
        self.interval = interval
        self.enabled = enabled
        self._active_stage_id: Optional[int] = None
        self._snapshots: Dict[int, _NodeSnapshot] = {}
        self._loop_running = False

    # -- stage hooks (called by the task scheduler) ---------------------------

    def start_stage(self, stage, record) -> None:
        if not self.enabled:
            return
        self._active_stage_id = stage.stage_id
        self._reset_snapshots()
        if not self._loop_running:
            self._loop_running = True
            self._schedule_next()

    def end_stage(self, stage, record) -> None:
        if not self.enabled:
            return
        # Take one final window so short stages get at least one sample.
        self._sample_all()
        self._active_stage_id = None

    # -- sampling loop -----------------------------------------------------------

    def _schedule_next(self) -> None:
        self.ctx.sim.call_in(self.interval, self._tick)

    def _tick(self) -> None:
        if self._active_stage_id is None:
            # Stage ended (or gap between stages): let the loop die; it is
            # restarted by the next start_stage call.
            self._loop_running = False
            return
        self._sample_all()
        self._schedule_next()

    def _reset_snapshots(self) -> None:
        for node in self.ctx.cluster.nodes:
            self._snapshots[node.node_id] = self._snapshot(node)

    def _snapshot(self, node) -> _NodeSnapshot:
        node.cpu.sync()
        node.disk.sync()
        return _NodeSnapshot(
            time=self.ctx.sim.now,
            cpu_occupancy=node.cpu.stats.occupancy_integral,
            disk_busy=node.disk.stats.busy_time,
            disk_read=node.disk.bytes_read,
            disk_write=node.disk.bytes_written,
        )

    def _sample_all(self) -> None:
        for node in self.ctx.cluster.nodes:
            previous = self._snapshots.get(node.node_id)
            current = self._snapshot(node)
            self._snapshots[node.node_id] = current
            if previous is None:
                continue
            elapsed = current.time - previous.time
            if elapsed <= 0:
                continue
            self.ctx.recorder.samples.append(
                ResourceSample(
                    time=current.time,
                    node_id=node.node_id,
                    stage_id=self._active_stage_id,
                    cpu_utilization=(
                        (current.cpu_occupancy - previous.cpu_occupancy)
                        / (node.cpu.cores * elapsed)
                    ),
                    disk_utilization=min(
                        1.0, (current.disk_busy - previous.disk_busy) / elapsed
                    ),
                    disk_read_rate=(current.disk_read - previous.disk_read) / elapsed,
                    disk_write_rate=(
                        (current.disk_write - previous.disk_write) / elapsed
                    ),
                )
            )
