"""Per-second resource sampling while stages run.

The service keeps cumulative-counter snapshots per node and, once per
simulated second during a stage, converts counter deltas into utilisation
and throughput rates -- the same windowed view ``mpstat``/``iostat`` give
the paper's authors.

When demand profiling is on (``ctx.profiling``; see
:mod:`repro.observability.profiler`), the same tick also emits one
``cat="profile"`` counter event per node with the full multi-resource
vector (CPU share, disk read/write bandwidth, NIC in/out, queue depths).
The NIC/queue readings come from the non-mutating
:meth:`~repro.simulation.resources.FairShareResource.sample_counters`
extrapolation, so the probe never perturbs the event timeline; with
profiling off, no probe state is even snapshotted and logs stay
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.engine.metrics import ResourceSample


@dataclass
class _NodeSnapshot:
    time: float
    cpu_occupancy: float
    disk_busy: float
    disk_read: float
    disk_write: float
    # Profiling-only extras (left at zero when ctx.profiling is off).
    nic_out: float = 0.0
    nic_in: float = 0.0
    disk_conc: float = 0.0
    cpu_conc: float = 0.0


class MonitoringService:
    """Drives per-second sampling of every node during stage execution."""

    def __init__(self, ctx, interval: float = 1.0, enabled: bool = True) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.ctx = ctx
        self.interval = interval
        self.enabled = enabled
        self._active_stage_id: Optional[int] = None
        self._snapshots: Dict[int, _NodeSnapshot] = {}
        self._loop_running = False

    # -- stage hooks (called by the task scheduler) ---------------------------

    def start_stage(self, stage, record) -> None:
        if not self.enabled:
            return
        self._active_stage_id = stage.stage_id
        self._reset_snapshots()
        if not self._loop_running:
            self._loop_running = True
            self._schedule_next()

    def end_stage(self, stage, record) -> None:
        if not self.enabled:
            return
        # Take one final window so short stages get at least one sample.
        self._sample_all()
        self._active_stage_id = None

    # -- sampling loop -----------------------------------------------------------

    def _schedule_next(self) -> None:
        self.ctx.sim.call_in(self.interval, self._tick)

    def _tick(self) -> None:
        if self._active_stage_id is None:
            # Stage ended (or gap between stages): let the loop die; it is
            # restarted by the next start_stage call.
            self._loop_running = False
            return
        self._sample_all()
        self._schedule_next()

    def _reset_snapshots(self) -> None:
        for node in self.ctx.cluster.nodes:
            self._snapshots[node.node_id] = self._snapshot(node)

    def _snapshot(self, node) -> _NodeSnapshot:
        node.cpu.sync()
        node.disk.sync()
        snapshot = _NodeSnapshot(
            time=self.ctx.sim.now,
            cpu_occupancy=node.cpu.stats.occupancy_integral,
            disk_busy=node.disk.stats.busy_time,
            disk_read=node.disk.bytes_read,
            disk_write=node.disk.bytes_written,
        )
        if getattr(self.ctx, "profiling", False):
            fabric = self.ctx.cluster.fabric
            snapshot.nic_out = fabric.egress(node.node_id).sample_bytes()
            snapshot.nic_in = fabric.ingress(node.node_id).sample_bytes()
            snapshot.disk_conc = node.disk.stats.concurrency_integral
            snapshot.cpu_conc = node.cpu.stats.concurrency_integral
        return snapshot

    def _sample_all(self) -> None:
        profiling = getattr(self.ctx, "profiling", False)
        for node in self.ctx.cluster.nodes:
            previous = self._snapshots.get(node.node_id)
            current = self._snapshot(node)
            self._snapshots[node.node_id] = current
            if previous is None:
                continue
            elapsed = current.time - previous.time
            if elapsed <= 0:
                continue
            cpu_util = (
                (current.cpu_occupancy - previous.cpu_occupancy)
                / (node.cpu.cores * elapsed)
            )
            disk_util = min(
                1.0, (current.disk_busy - previous.disk_busy) / elapsed
            )
            disk_read_bps = (current.disk_read - previous.disk_read) / elapsed
            disk_write_bps = (
                (current.disk_write - previous.disk_write) / elapsed
            )
            self.ctx.recorder.samples.append(
                ResourceSample(
                    time=current.time,
                    node_id=node.node_id,
                    stage_id=self._active_stage_id,
                    cpu_utilization=cpu_util,
                    disk_utilization=disk_util,
                    disk_read_rate=disk_read_bps,
                    disk_write_rate=disk_write_bps,
                )
            )
            if profiling:
                self.ctx.tracer.counter(
                    "profile", f"node{node.node_id}", cpu_util,
                    node_id=node.node_id,
                    stage_id=(
                        self._active_stage_id
                        if self._active_stage_id is not None else -1
                    ),
                    window=elapsed,
                    cpu_util=cpu_util,
                    disk_util=disk_util,
                    disk_read_bps=disk_read_bps,
                    disk_write_bps=disk_write_bps,
                    nic_out_bps=(current.nic_out - previous.nic_out) / elapsed,
                    nic_in_bps=(current.nic_in - previous.nic_in) / elapsed,
                    disk_queue=(
                        (current.disk_conc - previous.disk_conc) / elapsed
                    ),
                    cpu_queue=(current.cpu_conc - previous.cpu_conc) / elapsed,
                )
