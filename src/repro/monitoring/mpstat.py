"""mpstat analogue: per-stage CPU usage and I/O-wait, averaged cluster-wide.

The paper's Fig. 1 "shows the average CPU usage of various applications in
every stage of their execution.  The mpstat command line tool ... was used to
collect this information on each node and the results were averaged across
the cluster."
"""

from __future__ import annotations

from typing import List

from repro.engine.metrics import ResourceSample, RunRecorder


def _stage_samples(recorder: RunRecorder, stage_id: int) -> List[ResourceSample]:
    samples = recorder.stage_samples(stage_id)
    if not samples:
        raise ValueError(f"no monitoring samples recorded for stage {stage_id}")
    return samples


def stage_cpu_usage(recorder: RunRecorder, stage_id: int) -> float:
    """Average CPU utilisation (0..1) across nodes over a stage's lifetime."""
    samples = _stage_samples(recorder, stage_id)
    return sum(s.cpu_utilization for s in samples) / len(samples)


def stage_io_wait(recorder: RunRecorder, stage_id: int) -> float:
    """mpstat-style %iowait analogue (0..1).

    A virtual CPU counts as waiting on I/O when it is idle while the local
    disk is busy; averaging gives ``disk_busy_fraction * (1 - cpu_util)``
    per sample window.
    """
    samples = _stage_samples(recorder, stage_id)
    total = 0.0
    for sample in samples:
        total += sample.disk_utilization * (1.0 - sample.cpu_utilization)
    return total / len(samples)


def per_stage_cpu_profile(recorder: RunRecorder) -> List[dict]:
    """One row per executed stage: the data behind Fig. 1."""
    rows = []
    for stage in recorder.stages:
        rows.append(
            {
                "stage_id": stage.stage_id,
                "duration": stage.duration,
                "cpu_usage": stage_cpu_usage(recorder, stage.stage_id),
                "io_wait": stage_io_wait(recorder, stage.stage_id),
            }
        )
    return rows
