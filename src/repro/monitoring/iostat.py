"""iostat analogue: per-stage disk utilisation and throughput.

Feeds the paper's Fig. 5 (average disk utilisation across all nodes in the
I/O stage of different applications) and Fig. 12 (I/O throughput time
series).
"""

from __future__ import annotations

from typing import List, Optional

from repro.engine.metrics import RunRecorder


def stage_disk_utilization(recorder: RunRecorder, stage_id: int) -> float:
    """Average disk busy fraction (0..1) across nodes over a stage."""
    samples = recorder.stage_samples(stage_id)
    if not samples:
        raise ValueError(f"no monitoring samples recorded for stage {stage_id}")
    return sum(s.disk_utilization for s in samples) / len(samples)


def stage_disk_throughput(recorder: RunRecorder, stage_id: int) -> float:
    """Average aggregate disk bytes/second across nodes over a stage."""
    samples = recorder.stage_samples(stage_id)
    if not samples:
        raise ValueError(f"no monitoring samples recorded for stage {stage_id}")
    return sum(s.disk_throughput for s in samples) / len(samples)


def throughput_timeseries(
    recorder: RunRecorder,
    stage_id: int,
    node_id: Optional[int] = None,
) -> List[tuple]:
    """``[(time_since_stage_start, bytes_per_second), ...]`` for Fig. 12.

    When ``node_id`` is None, samples taken at the same instant are summed
    across nodes (cluster aggregate throughput).
    """
    samples = [
        s
        for s in recorder.stage_samples(stage_id)
        if node_id is None or s.node_id == node_id
    ]
    if not samples:
        raise ValueError(f"no monitoring samples recorded for stage {stage_id}")
    start = recorder.stage(stage_id).start_time
    if node_id is not None:
        return [(s.time - start, s.disk_throughput) for s in samples]
    by_time: dict = {}
    for sample in samples:
        by_time[sample.time] = by_time.get(sample.time, 0.0) + sample.disk_throughput
    return [(time - start, value) for time, value in sorted(by_time.items())]
