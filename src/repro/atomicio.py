"""Crash-safe file writes: temp file + fsync + atomic rename.

Every artifact the harness persists (bench documents, fault plans, sweep
journals, rendered results) goes through :func:`atomic_write_text`, so a
``SIGKILL`` -- or a full disk -- can never leave a half-written file where a
complete one used to be.  POSIX ``rename(2)`` within one directory is atomic,
and the temp file lives next to its target so the rename never crosses a
filesystem boundary.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str, text: str) -> None:
    """Replace ``path`` with ``text`` atomically (write-temp/fsync/rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, doc: Any, indent: int = 2,
                      sort_keys: bool = True) -> None:
    """Serialise ``doc`` and write it atomically, newline-terminated."""
    atomic_write_text(
        path, json.dumps(doc, indent=indent, sort_keys=sort_keys) + "\n"
    )
