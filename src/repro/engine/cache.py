"""In-memory RDD cache (the block-manager slice the paper's workloads need).

Caching matters to the reproduction because PageRank caches its ``links``
RDD: iteration stages read it from executor memory (no disk traffic), which
is why only the ingest and output stages of PageRank are I/O-*marked* while
the shuffle stages still hammer the disk through spills -- the paper's
limitation L2.

Materialised runs store real records; synthetic runs store only per-partition
sizes so task planning knows the partition is memory-resident.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engine.sizing import SizeInfo


class CacheManager:
    """Per-application cache of computed RDD partitions."""

    def __init__(self) -> None:
        self._data: Dict[Tuple[int, int], List[Any]] = {}
        self._sizes: Dict[Tuple[int, int], SizeInfo] = {}

    # -- data (materialised runs) ------------------------------------------

    def put(self, rdd_id: int, split: int, records: List[Any]) -> None:
        self._data[(rdd_id, split)] = records

    def get(self, rdd_id: int, split: int) -> Optional[List[Any]]:
        return self._data.get((rdd_id, split))

    # -- sizes (synthetic runs) ----------------------------------------------

    def put_size(self, rdd_id: int, split: int, size: SizeInfo) -> None:
        self._sizes[(rdd_id, split)] = size

    # -- queries -----------------------------------------------------------------

    def has(self, rdd_id: int, split: int) -> bool:
        """Is this partition memory-resident (data or size recorded)?"""
        key = (rdd_id, split)
        return key in self._data or key in self._sizes

    def has_any(self, rdd_id: int) -> bool:
        return any(key[0] == rdd_id for key in self._data) or any(
            key[0] == rdd_id for key in self._sizes
        )

    def evict_rdd(self, rdd_id: int) -> None:
        self._data = {k: v for k, v in self._data.items() if k[0] != rdd_id}
        self._sizes = {k: v for k, v in self._sizes.items() if k[0] != rdd_id}

    def clear(self) -> None:
        self._data.clear()
        self._sizes.clear()
