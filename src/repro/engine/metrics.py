"""Run-time metrics: task, stage, and run-level records.

These records are what the paper's figures are drawn from: per-stage
runtimes (Figs. 2/4/8/9/10/11), per-executor pool-size decisions (Fig. 6),
adaptive-interval sensor readings (Fig. 7), and sampled resource utilisation
(Figs. 1/5/12, via :mod:`repro.monitoring`).

Naming split vs :mod:`repro.observability.metrics`: this module holds the
raw per-entity *records* (one object per task/stage/decision/interval,
accessed positionally); the observability registry is the single naming
authority for anything aggregated under a dotted metric *name*
(``tasks.duration``, ``node.0.disk.bytes_read``, ...).  New named series --
whether surfaced by ``collect_run_metrics``, the demand profiler, or
``repro profile`` -- belong there, with their units registered in
``METRIC_UNITS``; see OBSERVABILITY.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TaskMetrics:
    """Everything measured about one finished task."""

    stage_id: int
    partition: int
    executor_id: int
    node_id: int
    launch_time: float
    finish_time: float
    cpu_seconds: float = 0.0
    io_wait_seconds: float = 0.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    shuffle_read_bytes: float = 0.0
    shuffle_write_bytes: float = 0.0
    output_write_bytes: float = 0.0
    pool_size_at_launch: int = 0

    @property
    def duration(self) -> float:
        return self.finish_time - self.launch_time

    @property
    def total_io_bytes(self) -> float:
        return (
            self.disk_read_bytes
            + self.disk_write_bytes
            + self.shuffle_read_bytes
            + self.shuffle_write_bytes
            + self.output_write_bytes
        )


@dataclass
class PoolEvent:
    """One thread-pool resize on one executor (Fig. 6's raw data)."""

    time: float
    executor_id: int
    stage_id: int
    pool_size: int
    reason: str = ""


@dataclass
class IntervalRecord:
    """One MAPE-K monitoring interval (Fig. 7's raw data).

    ``threads`` is the pool size under test, ``epoll_wait`` the accumulated
    I/O wait (the strace analogue, ε), ``throughput`` the mean task I/O
    bytes/second (µ), and ``congestion`` their ratio (ζ = ε/µ).
    """

    executor_id: int
    stage_id: int
    threads: int
    start_time: float
    end_time: float
    epoll_wait: float
    io_bytes: float
    decision: str = ""

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def throughput(self) -> float:
        return self.io_bytes / self.duration if self.duration > 0 else 0.0

    @property
    def congestion(self) -> float:
        """ζ = (ε / j) / µ, the per-task-normalised congestion index.

        Matches :func:`repro.adaptive.mapek.congestion_index`: interval
        ``I_j`` monitors exactly ``j`` tasks, so ε is normalised by the
        thread count before dividing by throughput.
        """
        throughput = self.throughput
        mean_wait = self.epoll_wait / max(1, self.threads)
        if throughput <= 0:
            return float("inf") if mean_wait > 0 else 0.0
        return mean_wait / throughput


@dataclass
class ResourceSample:
    """One per-second monitoring sample of one node (mpstat/iostat style)."""

    time: float
    node_id: int
    stage_id: Optional[int]
    cpu_utilization: float
    disk_utilization: float
    disk_read_rate: float
    disk_write_rate: float

    @property
    def disk_throughput(self) -> float:
        return self.disk_read_rate + self.disk_write_rate


@dataclass
class StageRecord:
    """Everything recorded about one executed stage.

    ``end_time`` is ``None`` while the stage is open: a sentinel value
    (previously ``0.0``) would misidentify a stage that legitimately
    finishes at t=0 as still running.
    """

    stage_id: int
    name: str
    is_io_marked: bool
    num_tasks: int
    start_time: float
    end_time: Optional[float] = None
    tasks: List[TaskMetrics] = field(default_factory=list)
    pool_events: List[PoolEvent] = field(default_factory=list)
    intervals: List[IntervalRecord] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end_time is not None

    def close(self, end_time: float) -> None:
        self.end_time = end_time

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def final_pool_sizes(self) -> Dict[int, int]:
        """Last chosen pool size per executor (the Fig. 6/8 stage labels)."""
        sizes: Dict[int, int] = {}
        for event in self.pool_events:
            sizes[event.executor_id] = event.pool_size
        return sizes

    def total_threads_used(self) -> int:
        return sum(self.final_pool_sizes().values())


@dataclass
class RunRecorder:
    """Accumulates records over one application run."""

    stages: List[StageRecord] = field(default_factory=list)
    samples: List[ResourceSample] = field(default_factory=list)

    def begin_stage(self, record: StageRecord) -> None:
        self.stages.append(record)

    @property
    def current_stage(self) -> Optional[StageRecord]:
        if self.stages and not self.stages[-1].closed:
            return self.stages[-1]
        return None

    def stage(self, stage_id: int) -> StageRecord:
        for record in self.stages:
            if record.stage_id == stage_id:
                return record
        raise KeyError(f"no record for stage {stage_id}")

    @property
    def total_runtime(self) -> float:
        """Wall-clock from the first stage start to the last stage end."""
        ends = [s.end_time for s in self.stages if s.end_time is not None]
        if not ends:
            return 0.0
        return max(ends) - self.stages[0].start_time

    def stage_samples(self, stage_id: int) -> List[ResourceSample]:
        return [s for s in self.samples if s.stage_id == stage_id]

    # -- serialisation (the --json CLI mode and scripting surface) ----------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stages": [asdict(stage) for stage in self.stages],
            "samples": [asdict(sample) for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunRecorder":
        recorder = cls()
        for stage_doc in doc.get("stages", ()):
            stage_doc = dict(stage_doc)
            tasks = [TaskMetrics(**t) for t in stage_doc.pop("tasks", ())]
            pool_events = [
                PoolEvent(**e) for e in stage_doc.pop("pool_events", ())
            ]
            intervals = [
                IntervalRecord(**i) for i in stage_doc.pop("intervals", ())
            ]
            recorder.stages.append(
                StageRecord(**stage_doc, tasks=tasks,
                            pool_events=pool_events, intervals=intervals)
            )
        recorder.samples = [
            ResourceSample(**s) for s in doc.get("samples", ())
        ]
        return recorder

    def summary_dict(self) -> Dict[str, Any]:
        """The compact run record: runtime, stage durations, pool sizes."""
        return {
            "runtime": self.total_runtime,
            "stages": [
                {
                    "stage_id": stage.stage_id,
                    "name": stage.name,
                    "is_io_marked": stage.is_io_marked,
                    "num_tasks": stage.num_tasks,
                    "start_time": stage.start_time,
                    "end_time": stage.end_time,
                    "duration": stage.duration,
                    "final_pool_sizes": {
                        str(executor): size
                        for executor, size in sorted(
                            stage.final_pool_sizes().items()
                        )
                    },
                }
                for stage in self.stages
            ],
        }
