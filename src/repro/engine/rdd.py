"""RDDs: lineage, transformations, and the I/O markers the paper keys on.

The API mirrors the subset of Spark's RDD surface the paper's workloads use.
Each transformation records:

* **lineage** -- narrow vs. shuffle dependencies, from which the DAG
  scheduler cuts stages (paper section 4: "all the transformations and
  actions in Spark happen at the level of RDDs ... we modified them to let
  the executors know whether the current stage should be considered as I/O");
* **I/O markers** -- ``textFile`` marks a stage input-bound, ``saveAsTextFile``
  / ``saveAsHadoopFile`` mark it output-bound; the *static solution* keys on
  exactly these markers;
* **cost annotations** -- CPU seconds per record/byte and size-propagation
  factors, so synthetic (non-materialised) datasets flow through the
  simulator with realistic volumes.

Every RDD supports two modes: *materialised* partitions really compute
(tests and examples validate semantics end-to-end), *synthetic* partitions
propagate sizes only (benchmark-scale runs).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.engine.sizing import SizeInfo, estimate_partition

#: Baseline CPU second per byte for deserialising + lightly transforming data.
#: Calibrated so I/O-dominated stages land in the paper's 6-15% CPU band
#: (Fig. 1, Terasort) on the DAS-5 node model.
DEFAULT_CPU_PER_BYTE = 1.2e-8
DEFAULT_CPU_PER_RECORD = 1.0e-7


class SyntheticDataError(RuntimeError):
    """Raised when real records are requested from a synthetic dataset."""


class Dependency:
    """Edge in the lineage graph."""

    def __init__(self, rdd: "RDD") -> None:
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Partition i of the child depends only on partition i of the parent."""


class ShuffleDependency(Dependency):
    """A repartitioning edge; the DAG scheduler cuts a stage boundary here.

    ``map_records_factor`` / ``map_bytes_factor`` model the map-side combine
    and serialisation (shuffle-write volume relative to the map-side RDD's
    partition size).  ``reduce_records_factor`` / ``reduce_bytes_factor``
    model the reduce-side aggregation (output relative to fetched bytes).
    """

    def __init__(
        self,
        rdd: "RDD",
        partitioner: Partitioner,
        *,
        map_records_factor: float = 1.0,
        map_bytes_factor: float = 1.0,
        reduce_records_factor: float = 1.0,
        reduce_bytes_factor: float = 1.0,
        combiner: Optional[Callable[[Any, Any], Any]] = None,
        map_side_combine: bool = False,
        group_values: bool = False,
        sort_by_key: bool = False,
    ) -> None:
        super().__init__(rdd)
        self.partitioner = partitioner
        self.map_records_factor = map_records_factor
        self.map_bytes_factor = map_bytes_factor
        self.reduce_records_factor = reduce_records_factor
        self.reduce_bytes_factor = reduce_bytes_factor
        self.combiner = combiner
        self.map_side_combine = map_side_combine
        self.group_values = group_values
        self.sort_by_key = sort_by_key
        self.shuffle_id = rdd.ctx.map_output_tracker.register_shuffle(
            num_maps=rdd.num_partitions, num_reducers=partitioner.num_partitions
        )

    def map_output_size(self, split: int) -> SizeInfo:
        """Shuffle-write volume for one map partition."""
        return self.rdd.partition_size(split).scaled(
            self.map_records_factor, self.map_bytes_factor
        )


class RDD:
    """Base class: a partitioned, lazily evaluated dataset."""

    #: Static-solution markers (paper section 4): does computing this RDD
    #: explicitly read job input from the DFS / write job output to it?
    reads_input = False
    writes_output = False

    def __init__(
        self,
        ctx,
        num_partitions: int,
        deps: Sequence[Dependency],
        partitioner: Optional[Partitioner] = None,
        name: str = "",
        cpu_per_record: float = DEFAULT_CPU_PER_RECORD,
        cpu_per_byte: float = DEFAULT_CPU_PER_BYTE,
    ) -> None:
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive: {num_partitions}")
        self.ctx = ctx
        self.id = ctx.new_rdd_id()
        self.num_partitions = num_partitions
        self.deps = list(deps)
        self.partitioner = partitioner
        self.name = name or type(self).__name__
        self.cpu_per_record = cpu_per_record
        self.cpu_per_byte = cpu_per_byte
        self.cached = False
        self._size_cache: Dict[int, SizeInfo] = {}

    # -- lineage ------------------------------------------------------------

    @property
    def narrow_parents(self) -> List["RDD"]:
        return [d.rdd for d in self.deps if isinstance(d, NarrowDependency)]

    @property
    def shuffle_deps(self) -> List[ShuffleDependency]:
        return [d for d in self.deps if isinstance(d, ShuffleDependency)]

    # -- size propagation -----------------------------------------------------

    def partition_size(self, split: int) -> SizeInfo:
        if split not in self._size_cache:
            self._check_split(split)
            self._size_cache[split] = self._compute_size(split)
        return self._size_cache[split]

    def _compute_size(self, split: int) -> SizeInfo:
        raise NotImplementedError

    def total_size(self) -> SizeInfo:
        total = SizeInfo(0.0, 0.0)
        for split in range(self.num_partitions):
            total = total + self.partition_size(split)
        return total

    def _check_split(self, split: int) -> None:
        if not 0 <= split < self.num_partitions:
            raise IndexError(
                f"split {split} out of range for {self.name} "
                f"({self.num_partitions} partitions)"
            )

    # -- CPU cost model ---------------------------------------------------------

    def cpu_cost(self, split: int) -> float:
        """CPU seconds this operator alone spends producing partition ``split``."""
        processed = self._processed_size(split)
        return (
            processed.records * self.cpu_per_record
            + processed.bytes * self.cpu_per_byte
        )

    def _processed_size(self, split: int) -> SizeInfo:
        """The volume this operator iterates over (its input, by default)."""
        parents = self.narrow_parents
        if parents:
            total = SizeInfo(0.0, 0.0)
            for parent in parents:
                total = total + parent.partition_size(split)
            return total
        return self.partition_size(split)

    # -- real computation ------------------------------------------------------

    @property
    def is_materialized(self) -> bool:
        """True when real records can be produced for this lineage."""
        raise NotImplementedError

    def compute(self, split: int) -> List[Any]:
        raise NotImplementedError

    def iterator(self, split: int) -> List[Any]:
        """Compute (or fetch from cache) the records of one partition."""
        if self.cached:
            hit = self.ctx.cache_manager.get(self.id, split)
            if hit is not None:
                return hit
        records = self.compute(split)
        if self.cached:
            self.ctx.cache_manager.put(self.id, split, records)
        return records

    # -- caching -----------------------------------------------------------------

    def cache(self) -> "RDD":
        """Mark this RDD for in-memory persistence after first computation."""
        self.cached = True
        return self

    persist = cache

    # -- transformations -----------------------------------------------------------

    def map(self, f: Callable[[Any], Any], **annotations: float) -> "RDD":
        return MapLikeRDD(
            self,
            lambda records: [f(x) for x in records],
            name="map",
            preserves_partitioning=False,
            **annotations,
        )

    def filter(self, f: Callable[[Any], bool], *, selectivity: float = 0.5,
               **annotations: float) -> "RDD":
        annotations.setdefault("records_factor", selectivity)
        annotations.setdefault("bytes_factor", selectivity)
        return MapLikeRDD(
            self,
            lambda records: [x for x in records if f(x)],
            name="filter",
            preserves_partitioning=True,
            **annotations,
        )

    def flat_map(self, f: Callable[[Any], Sequence[Any]], *, fanout: float = 1.0,
                 **annotations: float) -> "RDD":
        annotations.setdefault("records_factor", fanout)
        annotations.setdefault("bytes_factor", fanout)
        return MapLikeRDD(
            self,
            lambda records: [y for x in records for y in f(x)],
            name="flatMap",
            preserves_partitioning=False,
            **annotations,
        )

    flatMap = flat_map

    def map_values(self, f: Callable[[Any], Any], **annotations: float) -> "RDD":
        return MapLikeRDD(
            self,
            lambda records: [(k, f(v)) for k, v in records],
            name="mapValues",
            preserves_partitioning=True,
            **annotations,
        )

    mapValues = map_values

    def flat_map_values(self, f: Callable[[Any], Sequence[Any]], *,
                        fanout: float = 1.0, **annotations: float) -> "RDD":
        annotations.setdefault("records_factor", fanout)
        annotations.setdefault("bytes_factor", fanout)
        return MapLikeRDD(
            self,
            lambda records: [(k, y) for k, v in records for y in f(v)],
            name="flatMapValues",
            preserves_partitioning=True,
            **annotations,
        )

    def map_partitions(self, f: Callable[[List[Any]], List[Any]],
                       **annotations: float) -> "RDD":
        return MapLikeRDD(
            self, lambda records: list(f(records)), name="mapPartitions",
            preserves_partitioning=False, **annotations,
        )

    def key_by(self, f: Callable[[Any], Any], **annotations: float) -> "RDD":
        return MapLikeRDD(
            self,
            lambda records: [(f(x), x) for x in records],
            name="keyBy",
            preserves_partitioning=False,
            **annotations,
        )

    def sample(self, fraction: float, **annotations: float) -> "RDD":
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = self.ctx.streams.stream(f"sample.{self.id}")
        annotations.setdefault("records_factor", fraction)
        annotations.setdefault("bytes_factor", fraction)
        return MapLikeRDD(
            self,
            lambda records: [x for x in records if rng.random() < fraction],
            name="sample",
            preserves_partitioning=True,
            **annotations,
        )

    # -- shuffling transformations -----------------------------------------------

    def _default_partitions(self, num_partitions: Optional[int]) -> int:
        if num_partitions is not None:
            return num_partitions
        return self.ctx.default_parallelism

    def reduce_by_key(
        self,
        f: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        *,
        map_combine_factor: float = 1.0,
        reduce_factor: float = 1.0,
        **annotations: float,
    ) -> "RDD":
        partitioner = HashPartitioner(self._default_partitions(num_partitions))
        dep = ShuffleDependency(
            self,
            partitioner,
            map_records_factor=map_combine_factor,
            map_bytes_factor=map_combine_factor,
            reduce_records_factor=reduce_factor,
            reduce_bytes_factor=reduce_factor,
            combiner=f,
            map_side_combine=True,
        )
        return ShuffledRDD(self.ctx, dep, name="reduceByKey", **annotations)

    reduceByKey = reduce_by_key

    def group_by_key(
        self,
        num_partitions: Optional[int] = None,
        *,
        reduce_factor: float = 1.0,
        **annotations: float,
    ) -> "RDD":
        partitioner = HashPartitioner(self._default_partitions(num_partitions))
        dep = ShuffleDependency(
            self,
            partitioner,
            reduce_records_factor=reduce_factor,
            group_values=True,
        )
        return ShuffledRDD(self.ctx, dep, name="groupByKey", **annotations)

    groupByKey = group_by_key

    def partition_by(self, partitioner: Partitioner, **annotations: float) -> "RDD":
        if self.partitioner == partitioner:
            return self
        dep = ShuffleDependency(self, partitioner)
        return ShuffledRDD(self.ctx, dep, name="partitionBy", **annotations)

    partitionBy = partition_by

    def sort_by_key(self, num_partitions: Optional[int] = None,
                    **annotations: float) -> "RDD":
        partitioner = RangePartitioner(self._default_partitions(num_partitions))
        dep = ShuffleDependency(self, partitioner, sort_by_key=True)
        return ShuffledRDD(self.ctx, dep, name="sortByKey", **annotations)

    sortByKey = sort_by_key

    def distinct(self, num_partitions: Optional[int] = None, *,
                 distinct_factor: float = 1.0, **annotations: float) -> "RDD":
        keyed = self.map(lambda x: (x, None))
        reduced = keyed.reduce_by_key(
            lambda a, b: a,
            num_partitions,
            map_combine_factor=distinct_factor,
            **annotations,
        )
        return reduced.map(lambda kv: kv[0])

    def cogroup(self, other: "RDD", num_partitions: Optional[int] = None,
                **annotations: float) -> "CoGroupedRDD":
        partitions = (
            num_partitions
            if num_partitions is not None
            else (
                self.partitioner.num_partitions
                if self.partitioner is not None
                else self._default_partitions(None)
            )
        )
        partitioner = (
            self.partitioner
            if self.partitioner is not None
            and self.partitioner.num_partitions == partitions
            else HashPartitioner(partitions)
        )
        return CoGroupedRDD(self.ctx, [self, other], partitioner, **annotations)

    def join(self, other: "RDD", num_partitions: Optional[int] = None, *,
             match_factor: float = 1.0, **annotations: float) -> "RDD":
        grouped = self.cogroup(other, num_partitions, **annotations)

        def emit(groups: Tuple[List[Any], List[Any]]) -> List[Any]:
            left, right = groups
            return [(v, w) for v in left for w in right]

        return grouped.flat_map_values(emit, fanout=match_factor)

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    # -- actions --------------------------------------------------------------

    def collect(self) -> List[Any]:
        from repro.engine.actions import CollectAction

        return self.ctx.run_job(self, CollectAction())

    def count(self) -> float:
        from repro.engine.actions import CountAction

        return self.ctx.run_job(self, CountAction())

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        from repro.engine.actions import ReduceAction

        return self.ctx.run_job(self, ReduceAction(f))

    def save_as_text_file(self, path: str, *, bytes_factor: float = 1.0) -> None:
        from repro.engine.actions import SaveAction

        self.ctx.run_job(self, SaveAction(path, bytes_factor=bytes_factor))

    saveAsTextFile = save_as_text_file

    def save_as_hadoop_file(self, path: str, *, bytes_factor: float = 1.0) -> None:
        self.save_as_text_file(path, bytes_factor=bytes_factor)

    saveAsHadoopFile = save_as_hadoop_file

    def foreach(self, f: Callable[[Any], None]) -> None:
        from repro.engine.actions import ForeachAction

        self.ctx.run_job(self, ForeachAction(f))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}[{self.id}] ({self.num_partitions} partitions)"


class HadoopRDD(RDD):
    """Input read from the DFS (``textFile``); marks the stage as I/O-read."""

    reads_input = True

    def __init__(self, ctx, path: str, num_partitions: Optional[int] = None,
                 **annotations: float) -> None:
        status = ctx.dfs.status(path)
        if num_partitions is None:
            max_bytes = ctx.conf.get("spark.files.maxPartitionBytes")
            num_partitions = max(1, int(-(-status.size // max_bytes)))
        super().__init__(ctx, num_partitions, deps=[], name=f"textFile({path})",
                         **annotations)
        self.path = path
        self._splits = ctx.dfs.split_for_partitions(path, num_partitions)
        self._dataset = ctx.datasets.describe(path)

    @property
    def is_materialized(self) -> bool:
        return self._dataset.records_available

    def preferred_nodes(self, split: int) -> Tuple[int, ...]:
        self._check_split(split)
        return tuple(self._splits[split]["preferred_nodes"])

    def input_bytes(self, split: int) -> float:
        self._check_split(split)
        return self._splits[split]["bytes"]

    def _compute_size(self, split: int) -> SizeInfo:
        bytes_here = self.input_bytes(split)
        records = self._dataset.records / self.num_partitions
        return SizeInfo(records, bytes_here)

    def compute(self, split: int) -> List[Any]:
        records = self._dataset.partition_records(split, self.num_partitions)
        if records is None:
            raise SyntheticDataError(
                f"{self.path} is a synthetic dataset; its records cannot be "
                "materialised"
            )
        return records


class ParallelizedRDD(RDD):
    """Driver-memory data (``parallelize``); no disk read is charged."""

    def __init__(self, ctx, data: Sequence[Any], num_partitions: int,
                 **annotations: float) -> None:
        super().__init__(ctx, num_partitions, deps=[], name="parallelize",
                         **annotations)
        data = list(data)
        self._slices: List[List[Any]] = [
            data[i::num_partitions] for i in range(num_partitions)
        ]

    @property
    def is_materialized(self) -> bool:
        return True

    def _compute_size(self, split: int) -> SizeInfo:
        return estimate_partition(self._slices[split])

    def compute(self, split: int) -> List[Any]:
        self._check_split(split)
        return list(self._slices[split])


class MapLikeRDD(RDD):
    """A narrow one-parent transformation (map/filter/flatMap/...)."""

    def __init__(
        self,
        parent: RDD,
        transform: Callable[[List[Any]], List[Any]],
        name: str,
        preserves_partitioning: bool,
        *,
        records_factor: float = 1.0,
        bytes_factor: float = 1.0,
        **annotations: float,
    ) -> None:
        if records_factor < 0 or bytes_factor < 0:
            raise ValueError("size factors must be non-negative")
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            deps=[NarrowDependency(parent)],
            partitioner=parent.partitioner if preserves_partitioning else None,
            name=name,
            **annotations,
        )
        self.parent = parent
        self.transform = transform
        self.records_factor = records_factor
        self.bytes_factor = bytes_factor

    @property
    def is_materialized(self) -> bool:
        return self.parent.is_materialized

    def _compute_size(self, split: int) -> SizeInfo:
        if self.is_materialized:
            return estimate_partition(self.iterator(split))
        return self.parent.partition_size(split).scaled(
            self.records_factor, self.bytes_factor
        )

    def compute(self, split: int) -> List[Any]:
        return self.transform(self.parent.iterator(split))


class ShuffledRDD(RDD):
    """The reduce side of a shuffle dependency."""

    def __init__(self, ctx, dep: ShuffleDependency, name: str,
                 **annotations: float) -> None:
        super().__init__(
            ctx,
            dep.partitioner.num_partitions,
            deps=[dep],
            partitioner=dep.partitioner,
            name=name,
            **annotations,
        )
        self.dep = dep

    @property
    def is_materialized(self) -> bool:
        return self.dep.rdd.is_materialized

    def fetched_size(self, split: int) -> SizeInfo:
        """Bytes/records this reduce partition pulls over the shuffle."""
        return self.ctx.map_output_tracker.reduce_size(self.dep.shuffle_id, split)

    def _compute_size(self, split: int) -> SizeInfo:
        if self.is_materialized:
            return estimate_partition(self.iterator(split))
        return self.fetched_size(split).scaled(
            self.dep.reduce_records_factor, self.dep.reduce_bytes_factor
        )

    def _processed_size(self, split: int) -> SizeInfo:
        return self.fetched_size(split)

    def compute(self, split: int) -> List[Any]:
        records = self.ctx.map_output_tracker.fetch_real(self.dep.shuffle_id, split)
        dep = self.dep
        if dep.group_values:
            groups: Dict[Any, List[Any]] = {}
            for key, value in records:
                groups.setdefault(key, []).append(value)
            return list(groups.items())
        if dep.combiner is not None:
            combined: Dict[Any, Any] = {}
            for key, value in records:
                if key in combined:
                    combined[key] = dep.combiner(combined[key], value)
                else:
                    combined[key] = value
            records = list(combined.items())
        if dep.sort_by_key:
            records = sorted(records, key=lambda kv: kv[0])
        return records


class CoGroupedRDD(RDD):
    """Groups two keyed parents by key; the building block of ``join``.

    A parent that is already partitioned by the target partitioner
    contributes through a narrow dependency (the optimisation that makes
    PageRank's per-iteration join shuffle-free once ``links`` is hash
    partitioned); any other parent contributes through a shuffle.
    """

    def __init__(self, ctx, parents: Sequence[RDD], partitioner: Partitioner,
                 **annotations: float) -> None:
        deps: List[Dependency] = []
        for parent in parents:
            if parent.partitioner is not None and parent.partitioner == partitioner:
                deps.append(NarrowDependency(parent))
            else:
                deps.append(ShuffleDependency(parent, partitioner))
        super().__init__(
            ctx,
            partitioner.num_partitions,
            deps=deps,
            partitioner=partitioner,
            name="cogroup",
            **annotations,
        )
        self.parents = list(parents)

    @property
    def is_materialized(self) -> bool:
        return all(parent.is_materialized for parent in self.parents)

    def _parent_inputs(self, split: int) -> List[SizeInfo]:
        sizes = []
        for dep in self.deps:
            if isinstance(dep, ShuffleDependency):
                sizes.append(
                    self.ctx.map_output_tracker.reduce_size(dep.shuffle_id, split)
                )
            else:
                sizes.append(dep.rdd.partition_size(split))
        return sizes

    def _compute_size(self, split: int) -> SizeInfo:
        if self.is_materialized:
            return estimate_partition(self.iterator(split))
        total = SizeInfo(0.0, 0.0)
        for size in self._parent_inputs(split):
            total = total + size
        return total

    def _processed_size(self, split: int) -> SizeInfo:
        total = SizeInfo(0.0, 0.0)
        for size in self._parent_inputs(split):
            total = total + size
        return total

    def compute(self, split: int) -> List[Any]:
        groups: Dict[Any, Tuple[List[Any], ...]] = {}
        arity = len(self.deps)
        for index, dep in enumerate(self.deps):
            if isinstance(dep, ShuffleDependency):
                records = self.ctx.map_output_tracker.fetch_real(
                    dep.shuffle_id, split
                )
            else:
                records = dep.rdd.iterator(split)
            for key, value in records:
                if key not in groups:
                    groups[key] = tuple([] for _ in range(arity))
                groups[key][index].append(value)
        return list(groups.items())


class UnionRDD(RDD):
    """Concatenation of parents; partition i maps to one parent partition."""

    def __init__(self, ctx, parents: Sequence[RDD], **annotations: float) -> None:
        total_partitions = sum(p.num_partitions for p in parents)
        super().__init__(
            ctx,
            total_partitions,
            deps=[NarrowDependency(p) for p in parents],
            name="union",
            **annotations,
        )
        self.parents = list(parents)
        self._index: List[Tuple[RDD, int]] = [
            (parent, split)
            for parent in self.parents
            for split in range(parent.num_partitions)
        ]

    @property
    def is_materialized(self) -> bool:
        return all(parent.is_materialized for parent in self.parents)

    def parent_split(self, split: int) -> Tuple[RDD, int]:
        self._check_split(split)
        return self._index[split]

    def _compute_size(self, split: int) -> SizeInfo:
        parent, parent_split = self.parent_split(split)
        return parent.partition_size(parent_split)

    def _processed_size(self, split: int) -> SizeInfo:
        return self._compute_size(split)

    def cpu_cost(self, split: int) -> float:
        return 0.0  # union moves no data and does no work of its own

    def compute(self, split: int) -> List[Any]:
        parent, parent_split = self.parent_split(split)
        return parent.iterator(parent_split)
