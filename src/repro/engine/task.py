"""Task instances and driver<->executor control-plane messages.

The message types mirror the paper's section 5.4: Spark's protocol carries
task launches and status updates; the self-adaptive executor *extends* it
with a pool-resize notification so the scheduler's free-core registry stays
consistent with the executor's actual thread pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.metrics import TaskMetrics
from repro.engine.shuffle import MapStatus
from repro.engine.stage import Stage, TaskPlan


@dataclass
class Task:
    """One schedulable unit: a partition of a stage plus its physical plan."""

    stage: Stage
    partition: int
    plan: TaskPlan

    @property
    def preferred_nodes(self):
        return self.plan.preferred_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(stage={self.stage.stage_id}, partition={self.partition})"


class TaskFailure(Exception):
    """Raised inside a task body when the attempt cannot complete.

    Carries a short machine-readable ``reason`` (``injected-crash``,
    ``input-data-lost``, ...) that travels to the driver in a
    :class:`TaskFailed` message and into the event log.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class TaskAttempt:
    """Driver -> executor: run one attempt of a task.

    ``attempt`` distinguishes retries and speculative duplicates of the same
    partition; fault-free runs only ever see attempt 0.
    """

    task: Task
    attempt: int = 0
    speculative: bool = False


@dataclass
class TaskFinished:
    """Executor -> driver: a task completed (Spark's StatusUpdate)."""

    executor_id: int
    task: Task
    metrics: TaskMetrics
    map_status: Optional[MapStatus] = None
    result: Any = None
    attempt: int = 0
    speculative: bool = False


@dataclass
class TaskFailed:
    """Executor -> driver: an attempt crashed and needs rescheduling."""

    executor_id: int
    task: Task
    attempt: int
    reason: str


@dataclass
class PoolResized:
    """Executor -> driver: the thread pool changed size.

    This is the protocol extension the paper adds: "we had to extend the
    messaging protocol to facilitate a mechanism for executors to notify the
    scheduler about any changes in the size of their thread pool" (5.4).
    """

    executor_id: int
    pool_size: int
