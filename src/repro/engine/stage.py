"""Stages and per-task execution plans.

A stage is a pipeline of narrowly-dependent RDDs executed as one wave of
tasks.  :func:`build_task_plan` walks the stage's pipeline for one partition
and produces the :class:`TaskPlan` the executor turns into simulated I/O and
CPU phases -- the bridge between the logical RDD program and the physical
resource model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.actions import Action
from repro.engine.rdd import (
    HadoopRDD,
    NarrowDependency,
    RDD,
    ShuffleDependency,
    UnionRDD,
)


@dataclass(frozen=True)
class DfsRead:
    """One DFS input read: volume plus the nodes holding replicas."""

    size: float
    preferred_nodes: Tuple[int, ...]


@dataclass
class TaskPlan:
    """Physical resource demands of one task."""

    stage_id: int
    partition: int
    dfs_reads: List[DfsRead] = field(default_factory=list)
    shuffle_fetches: List[Tuple[int, float]] = field(default_factory=list)
    cpu_seconds: float = 0.0
    shuffle_write_bytes: float = 0.0
    output_write_bytes: float = 0.0

    @property
    def read_bytes(self) -> float:
        return sum(r.size for r in self.dfs_reads) + sum(
            size for _node, size in self.shuffle_fetches
        )

    @property
    def write_bytes(self) -> float:
        return self.shuffle_write_bytes + self.output_write_bytes

    @property
    def total_io_bytes(self) -> float:
        return self.read_bytes + self.write_bytes

    @property
    def preferred_nodes(self) -> Tuple[int, ...]:
        preferred: List[int] = []
        for read in self.dfs_reads:
            for node in read.preferred_nodes:
                if node not in preferred:
                    preferred.append(node)
        return tuple(preferred)


class Stage:
    """One stage of a job: either a shuffle-map stage or the result stage."""

    def __init__(
        self,
        stage_id: int,
        rdd: RDD,
        parents: List["Stage"],
        shuffle_dep: Optional[ShuffleDependency] = None,
        action: Optional[Action] = None,
    ) -> None:
        if (shuffle_dep is None) == (action is None):
            raise ValueError("a stage is either a map stage or the result stage")
        self.stage_id = stage_id
        self.rdd = rdd
        self.parents = parents
        self.shuffle_dep = shuffle_dep
        self.action = action
        self.num_tasks = rdd.num_partitions

    @property
    def is_result_stage(self) -> bool:
        return self.action is not None

    def pipeline_rdds(self) -> List[RDD]:
        """Every RDD computed inside this stage (narrow closure of the root)."""
        seen: List[RDD] = []

        def visit(rdd: RDD) -> None:
            if any(existing is rdd for existing in seen):
                return
            seen.append(rdd)
            if rdd.cached and rdd.ctx.cache_manager.has_any(rdd.id):
                return  # served from cache; its lineage is not recomputed
            for dep in rdd.deps:
                if isinstance(dep, NarrowDependency):
                    visit(dep.rdd)

        visit(self.rdd)
        return seen

    @property
    def is_io_marked(self) -> bool:
        """The static solution's stage classification (paper section 4).

        True iff the stage pipeline contains an explicit input read
        (``textFile``) or the stage writes job output (``saveAs*``).  Shuffle
        traffic deliberately does *not* mark a stage -- that blind spot is the
        paper's limitation L2 and the reason the dynamic solution wins on
        PageRank.
        """
        if self.is_result_stage and self.action.writes_output:
            return True
        return any(rdd.reads_input for rdd in self.pipeline_rdds())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "result" if self.is_result_stage else "map"
        return f"Stage({self.stage_id}, {kind}, rdd={self.rdd.name}, tasks={self.num_tasks})"


def build_task_plan(ctx, stage: Stage, split: int) -> TaskPlan:
    """Derive the physical plan for task ``split`` of ``stage``.

    Must run after all parent stages completed (shuffle fetch plans are read
    from the map-output tracker).
    """
    plan = TaskPlan(stage_id=stage.stage_id, partition=split)
    visited = set()

    def visit(rdd: RDD, part: int) -> None:
        if (rdd.id, part) in visited:
            # Reached through two narrow branches (e.g. PageRank's join of
            # ``links`` with ranks derived from ``links``): the first
            # computation is block-cached within the task, so the partition
            # is charged once.
            return
        visited.add((rdd.id, part))
        if rdd.cached and ctx.cache_manager.has(rdd.id, part):
            # Served from executor memory: no I/O, negligible CPU.
            return
        if isinstance(rdd, UnionRDD):
            parent, parent_split = rdd.parent_split(part)
            visit(parent, parent_split)
            return
        plan.cpu_seconds += rdd.cpu_cost(part)
        if isinstance(rdd, HadoopRDD):
            plan.dfs_reads.append(
                DfsRead(rdd.input_bytes(part), rdd.preferred_nodes(part))
            )
        for dep in rdd.deps:
            if isinstance(dep, ShuffleDependency):
                plan.shuffle_fetches.extend(
                    ctx.map_output_tracker.fetch_plan(dep.shuffle_id, part)
                )
            else:
                visit(dep.rdd, part)

    visit(stage.rdd, split)
    if stage.shuffle_dep is not None:
        plan.shuffle_write_bytes = stage.shuffle_dep.map_output_size(split).bytes
        plan.cpu_seconds += plan.shuffle_write_bytes * float(
            ctx.conf.get("repro.cpu.shuffle.write.per.byte")
        )
    if stage.action is not None:
        plan.output_write_bytes = stage.action.output_bytes(stage.rdd, split)
        plan.cpu_seconds += plan.output_write_bytes * float(
            ctx.conf.get("repro.cpu.output.write.per.byte")
        )
    plan.cpu_seconds += sum(size for _node, size in plan.shuffle_fetches) * float(
        ctx.conf.get("repro.cpu.shuffle.read.per.byte")
    )
    return plan
