"""Shuffle bookkeeping: map-output tracking and fetch planning.

Shuffle is the paper's hidden I/O source (limitation L2: "shuffle stages use
the disk for storing intermediate data" even though they never call an I/O
action).  We model it the way Spark's sort shuffle behaves on the cluster:

* each **map task** writes its partitioned output to its node's local disk
  (the spill the paper's Table 2 measures);
* each **reduce task** fetches one bucket from every map output -- a local
  disk read when the map ran on the same node, a source-disk read plus a
  network transfer otherwise.

The :class:`MapOutputTracker` is the driver-side registry of where map
outputs live and how large each reducer's share is; reduce-task profiles are
derived from it after the map stage completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.sizing import SizeInfo


@dataclass
class MapStatus:
    """Where one map task's output lives and how it splits across reducers.

    Synthetic map outputs split uniformly across reducers; those carry one
    ``uniform_size`` (the per-reducer slice) instead of a full per-reducer
    list, which keeps registration O(1) instead of O(reducers) -- shuffles
    here can be ~10^4 x 10^4.
    """

    map_id: int
    node_id: int
    reducer_sizes: Optional[List[SizeInfo]] = None
    real_buckets: Optional[List[List[Any]]] = None
    uniform_size: Optional[SizeInfo] = None
    num_reducers: int = 0

    @classmethod
    def uniform(cls, map_id: int, node_id: int, num_reducers: int,
                total: SizeInfo) -> "MapStatus":
        """A synthetic map output split evenly across ``num_reducers``."""
        per_reducer = SizeInfo(
            total.records / num_reducers, total.bytes / num_reducers
        )
        return cls(
            map_id=map_id,
            node_id=node_id,
            uniform_size=per_reducer,
            num_reducers=num_reducers,
        )

    def __post_init__(self) -> None:
        if (self.reducer_sizes is None) == (self.uniform_size is None):
            raise ValueError(
                "exactly one of reducer_sizes / uniform_size is required"
            )
        if self.reducer_sizes is not None:
            self.num_reducers = len(self.reducer_sizes)
        elif self.num_reducers <= 0:
            raise ValueError("uniform map status requires num_reducers")

    def size_for(self, reducer: int) -> SizeInfo:
        if self.uniform_size is not None:
            return self.uniform_size
        return self.reducer_sizes[reducer]

    @property
    def total_bytes(self) -> float:
        if self.uniform_size is not None:
            return self.uniform_size.bytes * self.num_reducers
        return sum(size.bytes for size in self.reducer_sizes)


@dataclass
class _ShuffleState:
    """Per-shuffle registry with incrementally maintained aggregates.

    ``reducer_records``/``reducer_bytes`` and the per-source-node byte
    arrays are accumulated at registration time so reduce-side queries are
    O(1)/O(nodes) instead of O(maps) -- shuffles here can have ~10^4 maps
    and reducers, making the naive per-query scan quadratic.
    """

    num_maps: int
    num_reducers: int
    statuses: Dict[int, MapStatus] = field(default_factory=dict)
    reducer_records: List[float] = field(default_factory=list)
    reducer_bytes: List[float] = field(default_factory=list)
    node_reducer_bytes: Dict[int, List[float]] = field(default_factory=dict)
    # Uniform (synthetic) contributions, kept as per-reducer scalars.
    uniform_records: float = 0.0
    uniform_bytes: float = 0.0
    node_uniform_bytes: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.reducer_records = [0.0] * self.num_reducers
        self.reducer_bytes = [0.0] * self.num_reducers

    @property
    def complete(self) -> bool:
        return len(self.statuses) == self.num_maps

    def accumulate(self, status: MapStatus) -> None:
        if status.uniform_size is not None:
            self.uniform_records += status.uniform_size.records
            self.uniform_bytes += status.uniform_size.bytes
            self.node_uniform_bytes[status.node_id] = (
                self.node_uniform_bytes.get(status.node_id, 0.0)
                + status.uniform_size.bytes
            )
            return
        per_node = self.node_reducer_bytes.setdefault(
            status.node_id, [0.0] * self.num_reducers
        )
        for reducer, size in enumerate(status.reducer_sizes):
            self.reducer_records[reducer] += size.records
            self.reducer_bytes[reducer] += size.bytes
            per_node[reducer] += size.bytes

    def reduce_size(self, reducer: int) -> SizeInfo:
        return SizeInfo(
            self.reducer_records[reducer] + self.uniform_records,
            self.reducer_bytes[reducer] + self.uniform_bytes,
        )

    def fetch_plan(self, reducer: int) -> List[tuple]:
        per_node: Dict[int, float] = dict(self.node_uniform_bytes)
        for node_id, sizes in self.node_reducer_bytes.items():
            if sizes[reducer] > 0:
                per_node[node_id] = per_node.get(node_id, 0.0) + sizes[reducer]
        return sorted(item for item in per_node.items() if item[1] > 0)


class MapOutputTracker:
    """Driver-side registry of shuffle map outputs."""

    def __init__(self) -> None:
        self._shuffles: Dict[int, _ShuffleState] = {}
        self._next_shuffle_id = 0
        #: Optional span tracer, wired by the owning context.
        self.tracer = None

    def register_shuffle(self, num_maps: int, num_reducers: int) -> int:
        """Allocate a shuffle id for a new shuffle dependency."""
        if num_maps <= 0 or num_reducers <= 0:
            raise ValueError(
                f"shuffle needs positive maps/reducers, got {num_maps}/{num_reducers}"
            )
        shuffle_id = self._next_shuffle_id
        self._next_shuffle_id += 1
        self._shuffles[shuffle_id] = _ShuffleState(num_maps, num_reducers)
        return shuffle_id

    def _state(self, shuffle_id: int) -> _ShuffleState:
        try:
            return self._shuffles[shuffle_id]
        except KeyError:
            raise KeyError(f"unknown shuffle id: {shuffle_id}") from None

    def register_map_output(self, shuffle_id: int, status: MapStatus) -> None:
        state = self._state(shuffle_id)
        if status.num_reducers != state.num_reducers:
            raise ValueError(
                f"map output has {status.num_reducers} reducer slices, "
                f"shuffle {shuffle_id} expects {state.num_reducers}"
            )
        if not 0 <= status.map_id < state.num_maps:
            raise ValueError(f"map_id {status.map_id} out of range")
        if status.map_id in state.statuses:
            raise ValueError(
                f"map output {status.map_id} already registered for "
                f"shuffle {shuffle_id}"
            )
        state.statuses[status.map_id] = status
        state.accumulate(status)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.instant(
                "shuffle", "map-output",
                shuffle_id=shuffle_id,
                map_id=status.map_id,
                node_id=status.node_id,
                bytes=status.total_bytes,
                registered=len(state.statuses),
                expected=state.num_maps,
            )

    def discard_node_outputs(self, node_id: int) -> Dict[int, List[int]]:
        """Forget every map output stored on ``node_id`` (executor loss).

        Mirrors Spark's ``MapOutputTracker`` unregistering a dead block
        manager's outputs: the affected shuffles become incomplete again and
        the scheduler must recompute the lost map tasks through lineage.
        Returns ``{shuffle_id: [lost map ids]}`` for the shuffles touched.
        """
        lost: Dict[int, List[int]] = {}
        for shuffle_id, state in self._shuffles.items():
            dead = sorted(
                map_id for map_id, status in state.statuses.items()
                if status.node_id == node_id
            )
            if not dead:
                continue
            lost[shuffle_id] = dead
            for map_id in dead:
                del state.statuses[map_id]
            # Rebuild the incremental aggregates from the survivors; they
            # have no subtraction path and float drift would accumulate.
            fresh = _ShuffleState(state.num_maps, state.num_reducers)
            for status in state.statuses.values():
                fresh.accumulate(status)
            state.reducer_records = fresh.reducer_records
            state.reducer_bytes = fresh.reducer_bytes
            state.node_reducer_bytes = fresh.node_reducer_bytes
            state.uniform_records = fresh.uniform_records
            state.uniform_bytes = fresh.uniform_bytes
            state.node_uniform_bytes = fresh.node_uniform_bytes
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                tracer.instant(
                    "fault", "shuffle-outputs-lost",
                    shuffle_id=shuffle_id,
                    node_id=node_id,
                    lost_maps=len(dead),
                )
        return lost

    def is_complete(self, shuffle_id: int) -> bool:
        return self._state(shuffle_id).complete

    def missing_map_ids(self, shuffle_id: int) -> List[int]:
        """Map ids with no registered output (lost or never computed)."""
        state = self._state(shuffle_id)
        return [m for m in range(state.num_maps) if m not in state.statuses]

    def has_shuffle(self, shuffle_id: int) -> bool:
        return shuffle_id in self._shuffles

    # -- reduce-side queries (valid once the map stage completed) ------------

    def reduce_size(self, shuffle_id: int, reduce_id: int) -> SizeInfo:
        """Total records/bytes reduce task ``reduce_id`` will fetch."""
        return self._require_complete(shuffle_id).reduce_size(reduce_id)

    def fetch_plan(self, shuffle_id: int, reduce_id: int) -> List[tuple]:
        """``[(source_node_id, bytes), ...]`` aggregated per source node."""
        return self._require_complete(shuffle_id).fetch_plan(reduce_id)

    def fetch_real(self, shuffle_id: int, reduce_id: int) -> List[Any]:
        """Concatenate the materialised bucket contents for a reducer."""
        state = self._require_complete(shuffle_id)
        records: List[Any] = []
        for map_id in sorted(state.statuses):
            status = state.statuses[map_id]
            if status.real_buckets is None:
                raise RuntimeError(
                    f"shuffle {shuffle_id} map {map_id} has no materialised data"
                )
            records.extend(status.real_buckets[reduce_id])
        return records

    def total_shuffle_bytes(self, shuffle_id: int) -> float:
        state = self._state(shuffle_id)
        return sum(status.total_bytes for status in state.statuses.values())

    def _require_complete(self, shuffle_id: int) -> _ShuffleState:
        state = self._state(shuffle_id)
        if not state.complete:
            missing = state.num_maps - len(state.statuses)
            raise RuntimeError(
                f"shuffle {shuffle_id} is incomplete: {missing} map outputs missing"
            )
        return state
