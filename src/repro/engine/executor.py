"""The executor: a resizable worker pool bound to one node.

This is the paper's *managed element*.  The executor runs tasks as simulated
processes that interleave I/O requests (against its node's disk and NIC) and
CPU bursts (against its node's core bank).  It keeps the two sensor counters
the MAPE-K monitor reads -- accumulated I/O wait time (the strace/epoll
analogue, ε) and task I/O bytes (the Spark-metrics analogue behind µ) -- and
applies pool-size decisions from its attached policy, notifying the driver
through the extended message protocol whenever the pool is resized.

Pool-size enforcement is cooperative, exactly as in the paper's
implementation: the driver stops assigning new tasks beyond the pool size;
already-running tasks always finish.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.engine.metrics import PoolEvent, StageRecord, TaskMetrics
from repro.engine.policy import DefaultPolicy, ExecutorPolicy
from repro.engine.shuffle import MapStatus
from repro.engine.sizing import SizeInfo, estimate_partition
from repro.engine.stage import Stage
from repro.engine.task import (
    PoolResized,
    Task,
    TaskAttempt,
    TaskFailed,
    TaskFailure,
    TaskFinished,
)
from repro.simulation.core import Interrupt


def _round_robin(lists: List[List[Tuple]]) -> List[Tuple]:
    """Merge several chunk lists by taking one element from each in turn."""
    merged: List[Tuple] = []
    cursors = [0] * len(lists)
    remaining = sum(len(chunks) for chunks in lists)
    while remaining:
        for index, chunks in enumerate(lists):
            if cursors[index] < len(chunks):
                merged.append(chunks[cursors[index]])
                cursors[index] += 1
                remaining -= 1
    return merged


@dataclass(frozen=True)
class _IoOp:
    """One physical I/O operation of a task, before chunking."""

    kind: str  # dfs_read | shuffle_fetch | shuffle_write | dfs_write
    size: float
    src_node: Optional[int] = None  # for remote reads / fetches


class Executor:
    """One executor per node, as in the paper's deployment."""

    def __init__(self, ctx, node, executor_id: int) -> None:
        self.ctx = ctx
        self.node = node
        self.executor_id = executor_id
        configured = ctx.conf.get("spark.executor.cores")
        self.default_pool_size = int(configured) if configured else node.cores
        self.pool_size = self.default_pool_size
        self.policy: ExecutorPolicy = DefaultPolicy()
        self.running = 0
        #: Flipped to False when fault injection loses this executor.
        self.alive = True
        #: Live task processes keyed (stage_id, partition, attempt) so
        #: individual attempts can be killed (executor loss, speculation).
        self._procs: Dict[Tuple[int, int, int], object] = {}
        # MAPE-K sensor counters (monotonically increasing; the monitor
        # diffs snapshots per interval).
        self.io_wait_accum = 0.0
        self.io_bytes_accum = 0.0
        self.tasks_completed_total = 0
        self.stage_tasks_completed = 0
        self.current_stage: Optional[Stage] = None
        self._record: Optional[StageRecord] = None

    # -- sensors ---------------------------------------------------------------

    def sensor_snapshot(self) -> Tuple[float, float, int]:
        """(accumulated I/O wait, accumulated task I/O bytes, tasks done)."""
        return (self.io_wait_accum, self.io_bytes_accum, self.stage_tasks_completed)

    @property
    def stage_record(self) -> Optional[StageRecord]:
        """The metrics record of the stage currently running, if any."""
        return self._record

    # -- stage lifecycle ----------------------------------------------------------

    def begin_stage(self, stage: Stage, record: StageRecord) -> int:
        """Driver RPC at stage start; returns the chosen initial pool size."""
        self.current_stage = stage
        self._record = record
        self.stage_tasks_completed = 0
        size = self.policy.on_stage_start(self, stage)
        self._apply_pool_size(size, reason="stage-start")
        return self.pool_size

    def _apply_pool_size(self, size: int, reason: str) -> None:
        size = max(1, min(int(size), self.node.cores))
        self.pool_size = size
        inv = self.ctx.invariants
        if inv is not None:
            inv.on_pool_resize(self, size, reason)
        if self._record is not None:
            self._record.pool_events.append(
                PoolEvent(
                    time=self.ctx.sim.now,
                    executor_id=self.executor_id,
                    stage_id=self._record.stage_id,
                    pool_size=size,
                    reason=reason,
                )
            )
            tracer = self.ctx.tracer
            if tracer.enabled:
                tracer.instant(
                    "pool", "resize",
                    executor_id=self.executor_id,
                    stage_id=self._record.stage_id,
                    size=size,
                    reason=reason,
                )
        self.ctx.metrics.gauge(
            f"executor.{self.executor_id}.pool_size"
        ).set(size)

    # -- task execution ------------------------------------------------------------

    def launch_task(self, message) -> None:
        """Driver -> executor: run one task (arrives via the control channel).

        Accepts a bare :class:`Task` (implicitly attempt 0) or a
        :class:`TaskAttempt` carrying a retry/speculative attempt id.
        """
        if isinstance(message, Task):
            message = TaskAttempt(message)
        task = message.task
        attempt = message.attempt
        key = (task.stage.stage_id, task.partition, attempt)
        self.running += 1
        # Attempt 0 keeps the historical process name so fault-free traces
        # stay bit-identical; retries and duplicates are suffixed.
        suffix = f".{attempt}" if attempt else ""
        self._procs[key] = self.ctx.sim.process(
            self._run_task(task, attempt, message.speculative),
            name=f"task-{task.stage.stage_id}.{task.partition}{suffix}"
                 f"@ex{self.executor_id}",
        )

    def kill_task(self, stage_id: int, partition: int, attempt: int,
                  reason: str = "killed") -> bool:
        """Interrupt one live attempt; returns False if it already finished."""
        key = (stage_id, partition, attempt)
        proc = self._procs.get(key)
        if proc is None or not proc.is_alive:
            return False
        self._cleanup(key)
        self.notify_fault(reason)
        proc.interrupt(reason)
        return True

    def kill_all(self, reason: str) -> int:
        """Interrupt every live attempt (executor/node loss)."""
        killed = 0
        for key in list(self._procs):
            if self.kill_task(*key, reason=reason):
                killed += 1
        return killed

    def notify_fault(self, reason: str) -> None:
        """A fault touched this executor: let the policy react.

        The adaptive policy discards the MAPE-K interval in progress -- a
        killed or crashed task's partial I/O wait has already leaked into the
        sensor counters and would corrupt the next ζ reading.
        """
        if not self.alive:
            return
        self.policy.on_fault(self, reason)

    def _cleanup(self, key) -> bool:
        """Retire one attempt's bookkeeping exactly once."""
        if self._procs.pop(key, None) is None:
            return False
        self.running -= 1
        inv = self.ctx.invariants
        if inv is not None:
            inv.on_executor_cleanup(self)
        return True

    def _run_task(self, task: Task, attempt: int = 0, speculative: bool = False):
        key = (task.stage.stage_id, task.partition, attempt)
        try:
            yield from self._task_body(task, attempt, speculative, key)
        except Interrupt:
            # Killed from outside (executor loss, speculation twin lost,
            # recovery): kill_task already retired the bookkeeping.
            self._cleanup(key)
        except TaskFailure as failure:
            self._cleanup(key)
            self.notify_fault(failure.reason)
            tracer = self.ctx.tracer
            if tracer.enabled:
                tracer.instant(
                    "fault", "task-crash",
                    executor_id=self.executor_id,
                    stage_id=task.stage.stage_id,
                    partition=task.partition,
                    attempt=attempt,
                    reason=failure.reason,
                )
            self.ctx.metrics.counter("faults.task_crashes").inc()
            if self.alive:
                self.ctx.scheduler.channel.send(
                    self.ctx.scheduler.handle_message,
                    TaskFailed(self.executor_id, task, attempt, failure.reason),
                )

    def _task_body(self, task: Task, attempt: int, speculative: bool, key):
        sim = self.ctx.sim
        tracer = self.ctx.tracer
        plan = task.plan
        launch_time = sim.now
        io_wait = 0.0
        task_span = -1
        if tracer.enabled:
            extra = {}
            if attempt:
                extra["attempt"] = attempt
            if speculative:
                extra["speculative"] = True
            task_span = tracer.begin(
                "task", f"task {task.stage.stage_id}.{task.partition}",
                executor_id=self.executor_id,
                stage_id=task.stage.stage_id,
                partition=task.partition,
                pool_size=self.pool_size,
                **extra,
            )
        ops = self._build_ops(plan)
        chunks = self._chunk_ops(ops, plan.cpu_seconds,
                                 interleave_offset=task.partition)
        faults = self.ctx.faults
        crash_index = None
        if faults is not None:
            fraction = faults.crash_point(
                task.stage.stage_id, task.partition, attempt
            )
            if fraction is not None:
                crash_index = int(fraction * len(chunks))
        completed_chunks = 0
        for kind, amount, src_node in chunks:
            if crash_index is not None and completed_chunks >= crash_index:
                if task_span >= 0:
                    tracer.end(task_span, crashed=True)
                raise TaskFailure("injected-crash")
            completed_chunks += 1
            if kind == "cpu":
                yield self.node.cpu.submit(amount, tag="task").event
            else:
                chunk_span = -1
                if tracer.enabled:
                    chunk_span = tracer.begin(
                        "io", kind, parent=task_span,
                        executor_id=self.executor_id,
                        bytes=amount, src_node=src_node,
                    )
                start = sim.now
                yield self._io_event(kind, amount, src_node)
                wait = sim.now - start
                io_wait += wait
                self.io_wait_accum += wait
                self.io_bytes_accum += amount
                if chunk_span >= 0:
                    tracer.end(chunk_span, wait=wait)
        if crash_index is not None and crash_index >= len(chunks):
            if task_span >= 0:
                tracer.end(task_span, crashed=True)
            raise TaskFailure("injected-crash")
        metrics = TaskMetrics(
            stage_id=task.stage.stage_id,
            partition=task.partition,
            executor_id=self.executor_id,
            node_id=self.node.node_id,
            launch_time=launch_time,
            finish_time=sim.now,
            cpu_seconds=plan.cpu_seconds,
            io_wait_seconds=io_wait,
            disk_read_bytes=sum(r.size for r in plan.dfs_reads),
            disk_write_bytes=plan.shuffle_write_bytes + plan.output_write_bytes,
            shuffle_read_bytes=sum(s for _n, s in plan.shuffle_fetches),
            shuffle_write_bytes=plan.shuffle_write_bytes,
            output_write_bytes=plan.output_write_bytes,
            pool_size_at_launch=self.pool_size,
        )
        map_status, result = self._finalize_task(task)
        self._cleanup(key)
        self.tasks_completed_total += 1
        self.stage_tasks_completed += 1
        if self._record is not None:
            self._record.tasks.append(metrics)
        if task_span >= 0:
            tracer.end(task_span, io_wait=io_wait,
                       io_bytes=metrics.total_io_bytes)
        registry = self.ctx.metrics
        registry.counter("tasks.completed").inc()
        registry.counter("io.task_bytes").inc(metrics.total_io_bytes)
        registry.counter("io.wait_seconds").inc(io_wait)
        if self.ctx.profiling:
            # Distribution metrics ride the same registry as the counters
            # above, but only when a demand profiler is attached -- the
            # trailing metrics event must stay byte-identical otherwise.
            registry.histogram("tasks.duration").observe(sim.now - launch_time)
            registry.histogram("tasks.io_wait").observe(io_wait)
            if self._record is not None:
                registry.histogram("tasks.queue_delay").observe(
                    launch_time - self._record.start_time
                )
        decision = self.policy.on_task_complete(self, task.stage, metrics)
        if decision is not None and decision != self.pool_size:
            self._apply_pool_size(decision, reason="adapt")
            self.ctx.scheduler.channel.send(
                self.ctx.scheduler.handle_message,
                PoolResized(self.executor_id, self.pool_size),
            )
        self.ctx.scheduler.channel.send(
            self.ctx.scheduler.handle_message,
            TaskFinished(self.executor_id, task, metrics, map_status, result,
                         attempt=attempt, speculative=speculative),
        )

    # -- physical plan --------------------------------------------------------------

    def _build_ops(self, plan) -> List[_IoOp]:
        ops: List[_IoOp] = []
        cluster = self.ctx.cluster
        for read in plan.dfs_reads:
            preferred = read.preferred_nodes
            if preferred and self.ctx.faults is not None:
                # Replica failover: a plan built before a node died may still
                # name it; re-read from any surviving replica holder instead.
                alive = tuple(
                    n for n in preferred if cluster.node(n).alive
                )
                if not alive:
                    raise TaskFailure("input-data-lost")
                preferred = alive
            if not preferred or self.node.node_id in preferred:
                ops.append(_IoOp("dfs_read", read.size))
            else:
                ops.append(_IoOp("dfs_read", read.size, src_node=preferred[0]))
        for src_node, size in plan.shuffle_fetches:
            ops.append(_IoOp("shuffle_fetch", size, src_node=src_node))
        if plan.shuffle_write_bytes > 0:
            ops.append(_IoOp("shuffle_write", plan.shuffle_write_bytes))
        if plan.output_write_bytes > 0:
            ops.append(_IoOp("dfs_write", plan.output_write_bytes))
        return ops

    def _chunk_ops(self, ops: List[_IoOp], cpu_seconds: float,
                   interleave_offset: int = 0) -> List[Tuple]:
        """Interleave chunked I/O with CPU bursts.

        Real tasks stream records: read a buffer, process it, read the next.
        Chunking is what lets other threads use the disk while this task
        computes -- the interleaving from which the thread-count optimum
        emerges (DESIGN.md section 5).

        Read chunks from different sources are merged round-robin starting at
        ``interleave_offset`` (Spark randomises shuffle fetch order for the
        same reason: otherwise every reducer would hit map outputs in the
        same source order and convoy on one disk at a time).  Writes happen
        after reads, as they do in map (read input -> spill) and result
        (fetch -> sort -> save) tasks alike.
        """
        chunk_bytes = float(self.ctx.conf.get("repro.task.chunk.bytes"))
        max_chunks = int(self.ctx.conf.get("repro.task.max.chunks"))
        total_io = sum(op.size for op in ops)
        if total_io <= 0:
            return [("cpu", cpu_seconds, None)] if cpu_seconds > 0 else []
        effective_chunk = max(chunk_bytes, total_io / max_chunks)
        # Chunk sizes are jittered (totals preserved) so that identically
        # shaped tasks launched together drift out of phase, as real threads
        # do.  Without this, same-size tasks alternate I/O and CPU in perfect
        # lockstep and the disk idles during the synchronised CPU bursts.
        jitter = self.ctx.streams.stream("chunk-jitter")

        def chunks_of(op: _IoOp) -> List[Tuple]:
            count = max(1, int(math.ceil(op.size / effective_chunk)))
            weights = [jitter.uniform(0.6, 1.4) for _ in range(count)]
            scale = op.size / sum(weights)
            return [(op.kind, w * scale, op.src_node) for w in weights]

        read_lists = [
            chunks_of(op) for op in ops
            if op.kind in ("dfs_read", "shuffle_fetch")
        ]
        write_lists = [
            chunks_of(op) for op in ops
            if op.kind in ("shuffle_write", "dfs_write")
        ]
        if read_lists:
            offset = interleave_offset % len(read_lists)
            read_lists = read_lists[offset:] + read_lists[:offset]
        io_chunks = _round_robin(read_lists) + _round_robin(write_lists)
        cpu_weights = [jitter.uniform(0.6, 1.4) for _ in io_chunks]
        cpu_scale = cpu_seconds / sum(cpu_weights)
        pieces: List[Tuple] = []
        for chunk, weight in zip(io_chunks, cpu_weights):
            pieces.append(chunk)
            if cpu_seconds > 0:
                pieces.append(("cpu", weight * cpu_scale, None))
        return pieces

    def _io_event(self, kind: str, size: float, src_node: Optional[int]):
        sim = self.ctx.sim
        my_node = self.node
        if kind == "dfs_read":
            if src_node is None:
                return my_node.disk.request(size, "read")
            remote_disk = self.ctx.cluster.node(src_node).disk
            return sim.all_of(
                [
                    remote_disk.request(size, "read"),
                    self.ctx.cluster.fabric.transfer(
                        src_node, my_node.node_id, size, tag="dfs"
                    ),
                ]
            )
        if kind == "shuffle_fetch":
            disk_fraction = float(
                self.ctx.conf.get("repro.shuffle.read.disk.fraction")
            )
            src_disk = self.ctx.cluster.node(src_node).disk
            events = []
            if disk_fraction > 0:
                events.append(src_disk.request(size * disk_fraction, "read"))
            if src_node != my_node.node_id:
                events.append(
                    self.ctx.cluster.fabric.transfer(
                        src_node, my_node.node_id, size, tag="shuffle"
                    )
                )
            if not events:
                done = sim.event()
                done.succeed(size)
                return done
            return sim.all_of(events)
        if kind == "shuffle_write":
            return my_node.disk.request(size, "write")
        if kind == "dfs_write":
            replication = int(self.ctx.conf.get("repro.output.replication"))
            events = [my_node.disk.request(size, "write")]
            num_nodes = self.ctx.cluster.num_nodes
            for offset in range(1, min(replication, num_nodes)):
                replica = (my_node.node_id + offset) % num_nodes
                events.append(
                    self.ctx.cluster.fabric.transfer(
                        my_node.node_id, replica, size, tag="replica"
                    )
                )
                events.append(
                    self.ctx.cluster.node(replica).disk.request(size, "write")
                )
            return sim.all_of(events)
        raise ValueError(f"unknown I/O op kind: {kind!r}")

    # -- data-plane completion work -----------------------------------------------

    def _finalize_task(self, task: Task):
        """Produce the map status (map tasks) or action result (result tasks)."""
        stage = task.stage
        if stage.shuffle_dep is not None:
            return self._map_output(stage, task.partition), None
        records = (
            stage.rdd.iterator(task.partition) if stage.rdd.is_materialized else None
        )
        result = stage.action.process_partition(records, task.partition)
        return None, result

    def _map_output(self, stage: Stage, split: int) -> MapStatus:
        dep = stage.shuffle_dep
        num_reducers = dep.partitioner.num_partitions
        if stage.rdd.is_materialized:
            records = stage.rdd.iterator(split)
            if dep.map_side_combine and dep.combiner is not None:
                combined = {}
                for key, value in records:
                    if key in combined:
                        combined[key] = dep.combiner(combined[key], value)
                    else:
                        combined[key] = value
                records = list(combined.items())
            buckets: List[List] = [[] for _ in range(num_reducers)]
            for key, value in records:
                buckets[dep.partitioner.partition(key)].append((key, value))
            return MapStatus(
                map_id=split,
                node_id=self.node.node_id,
                reducer_sizes=[estimate_partition(bucket) for bucket in buckets],
                real_buckets=buckets,
            )
        return MapStatus.uniform(
            map_id=split,
            node_id=self.node.node_id,
            num_reducers=num_reducers,
            total=dep.map_output_size(split),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Executor(id={self.executor_id}, node={self.node.node_id}, "
            f"pool={self.pool_size}, running={self.running})"
        )
