"""The task scheduler: locality-aware assignment with a free-core registry.

This reproduces the Spark component the paper had to teach about resizable
pools (section 5.3-5.4): "the Spark scheduler keeps track of all the
executors, how many cores they have been launched with and ... their current
number of free cores which controls how many new tasks should be assigned to
each executor."  Our driver keeps exactly that registry (``_pool_view`` and
``_assigned``) and updates it from two executor messages: task completions
and pool-resize notifications.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Set

from repro.engine.metrics import StageRecord
from repro.engine.stage import Stage, build_task_plan
from repro.engine.task import PoolResized, Task, TaskFinished
from repro.simulation.core import Event
from repro.simulation.resources import LatencyChannel


class TaskSetManager:
    """Pending tasks of one stage, indexed for locality-aware dispatch."""

    def __init__(self, tasks: List[Task]) -> None:
        self._unassigned: Set[int] = {task.partition for task in tasks}
        self._by_node: Dict[int, deque] = {}
        self._anywhere: deque = deque(tasks)
        for task in tasks:
            for node_id in task.preferred_nodes:
                self._by_node.setdefault(node_id, deque()).append(task)

    @property
    def pending(self) -> int:
        return len(self._unassigned)

    def next_task(self, node_id: int) -> Optional[Task]:
        """Pop a pending task, preferring one with data local to ``node_id``."""
        local = self._by_node.get(node_id)
        for queue in (local, self._anywhere):
            if queue is None:
                continue
            while queue:
                task = queue.popleft()
                if task.partition in self._unassigned:
                    self._unassigned.discard(task.partition)
                    return task
        return None


class _StageRun:
    """Book-keeping for the stage currently executing."""

    def __init__(self, stage: Stage, tasks: List[Task], record: StageRecord,
                 done: Event) -> None:
        self.stage = stage
        self.manager = TaskSetManager(tasks)
        self.record = record
        self.done = done
        self.completed = 0
        self.results: Dict[int, Any] = {}
        self.trace_span = -1


class TaskScheduler:
    """Driver-side scheduling across all executors."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.channel = LatencyChannel(
            ctx.sim, latency=float(ctx.conf.get("repro.control.latency"))
        )
        self._pool_view: Dict[int, int] = {}
        self._assigned: Dict[int, int] = {}
        self._run: Optional[_StageRun] = None

    @property
    def busy(self) -> bool:
        return self._run is not None

    def registered_pool_size(self, executor_id: int) -> int:
        """The driver's current belief about an executor's pool size."""
        return self._pool_view[executor_id]

    # -- stage execution ---------------------------------------------------------

    def run_stage(self, stage: Stage) -> Event:
        """Execute a stage; the returned event fires with ordered results."""
        if self._run is not None:
            raise RuntimeError("a stage is already running (stages are serial)")
        sim = self.ctx.sim
        record = StageRecord(
            stage_id=stage.stage_id,
            name=stage.rdd.name,
            is_io_marked=stage.is_io_marked,
            num_tasks=stage.num_tasks,
            start_time=sim.now,
        )
        self.ctx.recorder.begin_stage(record)
        tasks = [
            Task(stage, split, build_task_plan(self.ctx, stage, split))
            for split in range(stage.num_tasks)
        ]
        run = _StageRun(stage, tasks, record, sim.event())
        self._run = run
        tracer = self.ctx.tracer
        if tracer.enabled:
            run.trace_span = tracer.begin(
                "stage", stage.rdd.name,
                stage_id=stage.stage_id,
                num_tasks=stage.num_tasks,
                io_marked=stage.is_io_marked,
            )
        self.ctx.metrics.counter("scheduler.stages_submitted").inc()
        # Stage-start RPC: each executor consults its policy and reports the
        # initial pool size back to the driver's registry.
        for executor in self.ctx.executors:
            size = executor.begin_stage(stage, record)
            self._pool_view[executor.executor_id] = size
            self._assigned.setdefault(executor.executor_id, 0)
        self.ctx.monitoring.start_stage(stage, record)
        # First wave of launches goes out after one control-plane hop.
        sim.timeout(self.channel.latency).add_callback(lambda _e: self._assign())
        return run.done

    def _assign(self) -> None:
        run = self._run
        if run is None:
            return
        progress = True
        while progress and run.manager.pending:
            progress = False
            for executor in self.ctx.executors:
                executor_id = executor.executor_id
                free = self._pool_view[executor_id] - self._assigned[executor_id]
                if free <= 0:
                    continue
                task = run.manager.next_task(executor.node.node_id)
                if task is None:
                    break
                self._assigned[executor_id] += 1
                self.channel.send(executor.launch_task, task)
                self.ctx.metrics.counter("scheduler.tasks_launched").inc()
                progress = True

    # -- executor messages ------------------------------------------------------------

    def handle_message(self, message) -> None:
        if isinstance(message, PoolResized):
            self._pool_view[message.executor_id] = message.pool_size
            tracer = self.ctx.tracer
            if tracer.enabled:
                tracer.instant(
                    "scheduler", "pool-resized",
                    executor_id=message.executor_id,
                    pool_size=message.pool_size,
                )
            self.ctx.metrics.counter("scheduler.resize_messages").inc()
            self._assign()
        elif isinstance(message, TaskFinished):
            self._on_task_finished(message)
        else:
            raise TypeError(f"unknown scheduler message: {message!r}")

    def _on_task_finished(self, message: TaskFinished) -> None:
        run = self._run
        if run is None or message.task.stage is not run.stage:
            raise RuntimeError("completion for a task of a stage that is not running")
        self._assigned[message.executor_id] -= 1
        if message.map_status is not None:
            self.ctx.map_output_tracker.register_map_output(
                run.stage.shuffle_dep.shuffle_id, message.map_status
            )
        else:
            run.results[message.task.partition] = message.result
        run.completed += 1
        if run.completed == run.stage.num_tasks:
            self._finish_stage(run)
        else:
            self._assign()

    def _finish_stage(self, run: _StageRun) -> None:
        run.record.close(self.ctx.sim.now)
        if run.trace_span >= 0:
            self.ctx.tracer.end(run.trace_span,
                                duration=run.record.duration)
        self.ctx.metrics.counter("scheduler.stages_completed").inc()
        self.ctx.monitoring.end_stage(run.stage, run.record)
        # Record sizes for RDDs this stage materialised into the cache so
        # later stages plan memory reads instead of recomputation.
        for rdd in run.stage.pipeline_rdds():
            if rdd.cached:
                for split in range(rdd.num_partitions):
                    self.ctx.cache_manager.put_size(
                        rdd.id, split, rdd.partition_size(split)
                    )
        self._run = None
        if run.stage.is_result_stage:
            ordered = [run.results[i] for i in range(run.stage.num_tasks)]
            run.done.succeed(ordered)
        else:
            run.done.succeed(None)
